"""Reshard smoke check: online 4→2 re-sharding under live traffic.

Boots a pooled serving deployment over a 4-shard snapshot, starts a
background thread issuing a continuous query stream, then re-shards the
deployment live to 2 shards (build the new layout in the background,
atomically swap the executor).  Every answer returned before, during and
after the swap must be bit-identical to in-process execution, and the
result digests of the pre- and post-swap runs must match.  Exits non-zero
on any mismatch, so CI can gate on it.

Usage::

    python scripts/reshard_smoke.py [--from-shards 4] [--to-shards 2]
                                    [--workers 2] [--lots 200]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import tempfile
import threading
from pathlib import Path


def digest(rows: list) -> str:
    return hashlib.sha256(
        json.dumps(rows, sort_keys=True, default=str).encode("utf-8")
    ).hexdigest()[:16]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--from-shards", type=int, default=4)
    parser.add_argument("--to-shards", type=int, default=2)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--lots", type=int, default=200)
    args = parser.parse_args()

    from repro.engine import Engine
    from repro.relational.column import Column, DataType
    from repro.relational.relation import Relation
    from repro.relational.schema import Field, Schema
    from repro.serving import ServingConfig
    from repro.workloads import generate_auction_triples

    workload = generate_auction_triples(args.lots, seed=41)
    source = Engine.from_triples(workload.triples)
    schema = Schema([Field("docID", DataType.STRING), Field("data", DataType.STRING)])
    source.create_table(
        "docs",
        Relation(
            schema,
            [
                Column(list(workload.lot_descriptions.keys()), DataType.STRING),
                Column(list(workload.lot_descriptions.values()), DataType.STRING),
            ],
        ),
    )
    queries = [
        " ".join(description.split()[:3])
        for description in list(workload.lot_descriptions.values())[:6]
    ]
    source.search("docs", queries[0]).execute()
    expected = {
        query: [[doc_id, score] for doc_id, score in source.search("docs", query).top(5)]
        for query in queries
    }
    expected_digest = digest([expected[query] for query in queries])

    root = Path(tempfile.mkdtemp(prefix="repro-reshard-smoke-"))
    snapshot = root / "snapshot"
    source.save(snapshot, shards=args.from_shards)
    print(f"sharded snapshot: {snapshot} ({args.from_shards} shards)")

    config = ServingConfig(workers=args.workers, max_concurrent=args.workers)
    engine = Engine.open_sharded(snapshot, executor="pool", config=config)
    print(f"serving: {engine.executor_info()}")

    failures = 0
    answered = 0
    stop = threading.Event()
    lock = threading.Lock()

    def drive() -> None:
        nonlocal failures, answered
        index = 0
        while not stop.is_set():
            query = queries[index % len(queries)]
            index += 1
            pairs = [[doc_id, score] for doc_id, score in
                     engine.search("docs", query).top(5)]
            with lock:
                answered += 1
                if pairs != expected[query]:
                    failures += 1
                    print(f"MISMATCH mid-swap for {query!r}: {pairs}")

    driver = threading.Thread(target=drive, name="reshard-smoke-driver")
    driver.start()
    try:
        summary = engine.reshard(args.to_shards, out=root / "resharded")
        print(f"swap: {summary}")
    finally:
        stop.set()
        driver.join(timeout=60)

    after = engine.executor_info()
    print(f"serving after swap: {after}")
    post_digest = digest(
        [
            [[doc_id, score] for doc_id, score in engine.search("docs", query).top(5)]
            for query in queries
        ]
    )
    engine.close()
    source.close()

    ok = (
        failures == 0
        and after["shards"] == args.to_shards
        and after["epoch"] == 1
        and post_digest == expected_digest
    )
    print(
        f"queries answered under swap: {answered}; "
        f"digest before/after: {expected_digest} / {post_digest}"
    )
    if not ok:
        print(f"FAILED: failures={failures} after={after} digest={post_digest}")
        return 1
    print(
        f"reshard smoke passed: live {args.from_shards}->{args.to_shards} swap, "
        "bit-identical results throughout"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
