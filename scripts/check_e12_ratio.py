"""Gate on the E12 IPC gap: the pool must not regress toward the old ratio.

The committed ``BENCH_E12.json`` baseline predating the pipelined
shared-memory transport put the worker pool at ~0.014x the in-process
engine (a ~70x IPC penalty per query).  This check reads a freshly written
``BENCH_E12.json`` and asserts the best pool mode now clears a floor well
above that baseline, so a transport regression cannot land silently.

The floor is deliberately loose (default 12x the old baseline — ratcheted
up when the micro-batched data plane landed): CI boxes are small and
noisy, and the point is to catch "the optimization fell off", not to
benchmark precisely.

Usage::

    python scripts/check_e12_ratio.py [--artifact BENCH_E12.json]
                                      [--baseline 0.0142] [--min-gain 12.0]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: pool_concurrent_qps / single_process_qps in the pre-optimization artifact
OLD_RATIO = 0.0142


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--artifact",
        type=Path,
        default=Path("BENCH_E12.json"),
        help="E12 artifact to check (written by benchmarks/test_e12_scatter_gather.py)",
    )
    parser.add_argument("--baseline", type=float, default=OLD_RATIO)
    parser.add_argument(
        "--min-gain",
        type=float,
        default=12.0,
        help="required improvement factor over the baseline ratio",
    )
    args = parser.parse_args()

    if not args.artifact.exists():
        print(f"FAILED: artifact {args.artifact} not found — run the E12 benchmark first")
        return 1
    metrics = json.loads(args.artifact.read_text())["metrics"]

    single = metrics.get("single_process_qps")
    ratio = metrics.get("pool_vs_single_ratio")
    if ratio is None:  # artifact predates the metric; derive it
        best = max(
            metrics.get("pool_serial_qps", 0.0),
            metrics.get("pool_concurrent_qps", 0.0),
            metrics.get("pool_batched_qps", 0.0),
        )
        ratio = best / single if single else 0.0

    floor = args.baseline * args.min_gain
    print(
        f"E12 pool/in-process ratio: {ratio:.4f} "
        f"(baseline {args.baseline:.4f}, required >= {floor:.4f}, "
        f"transport={metrics.get('transport')!r}, cores={metrics.get('cores')}, "
        f"batched_qps={metrics.get('pool_batched_qps')}, "
        f"mean_batch_occupancy={metrics.get('mean_batch_occupancy')})"
    )
    if ratio < floor:
        print(
            f"FAILED: ratio {ratio:.4f} is below {floor:.4f} — the serving "
            f"transport has regressed toward the pre-shm baseline"
        )
        return 1
    print(f"ok: the IPC gap improved {ratio / args.baseline:.1f}x over the old baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
