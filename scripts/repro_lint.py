"""Run the repo-invariant lint rules (``repro.analysis.lint``) over the tree.

Checks every Python file under ``src/``, ``benchmarks/`` and ``scripts/``
against the RL-series rules: stable sorts in kernel modules, deterministic
gather merges, lock-guarded cache mutation, no wall-clock in benchmarks, and
length-prefixed wire writes.  Prints one line per violation and exits
non-zero when any are found, so CI can gate on it.

Usage::

    PYTHONPATH=src python scripts/repro_lint.py [paths...]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src benchmarks scripts)",
    )
    args = parser.parse_args()

    from repro.analysis.lint import ALL_RULES, lint_paths

    root = Path(__file__).resolve().parent.parent
    targets = [path.resolve() for path in args.paths] or [
        root / name for name in ("src", "benchmarks", "scripts") if (root / name).is_dir()
    ]
    violations = lint_paths(targets, ALL_RULES, root=root)
    for violation in violations:
        print(violation.render())
    checked = ", ".join(rule.name for rule in ALL_RULES)
    if violations:
        print(f"repro-lint: {len(violations)} violation(s) ({checked})", file=sys.stderr)
        return 1
    print(f"repro-lint: clean ({checked})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
