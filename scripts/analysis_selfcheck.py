"""Analyzer self-check: the static verifier against the real workloads.

Three gates, each of which must hold for the verifier to be trustworthy:

1. **No false alarms** — every SpinQL program the repo actually ships
   (toy/auction example queries, benchmark-shaped plans) verifies with zero
   errors against an engine that can evaluate it, and then evaluates.
2. **No false "ok"s** — deliberately broken variants of those programs
   (unknown table, out-of-range positional, bad weight) are rejected with
   errors, and evaluating them raises.
3. **Executor agreement** — on a sharded snapshot, the shard-safety
   classification (``repro.analysis.locality.classify``) reports exactly
   the scatter segments the scatter-gather executor extracts, shard counts
   1 through 3.

Exits non-zero on the first violated gate, so CI can gate on it.

Usage::

    PYTHONPATH=src python scripts/analysis_selfcheck.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

GOOD_PROGRAMS = [
    'docs = SELECT [$2="category"] (triples);',
    'docs = PROJECT [$1 AS docID, $6 AS data] ( JOIN INDEPENDENT [$1=$1] ('
    ' SELECT [$2="category" and $3="toy"] (triples),'
    ' SELECT [$2="description"] (triples) ) );',
    "weighted = WEIGHT [0.7] (SELECT [$2=\"category\"] (triples));",
    "united = UNITE INDEPENDENT ("
    ' SELECT [$2="category"] (triples), SELECT [$2="description"] (triples) );',
]

BAD_PROGRAMS = [
    'docs = SELECT [$2="category"] (missing_table);',
    'docs = SELECT [$9="category"] (triples);',
    'docs = WEIGHT [1.5] (SELECT [$2="category"] (triples));',
]


def check_programs(engine) -> int:
    from repro.errors import ReproError

    for source in GOOD_PROGRAMS:
        query = engine.spinql(source)
        report = query.check()
        if not report.ok:
            print(f"FALSE ALARM on {source!r}:\n{report.render()}", file=sys.stderr)
            return 1
        query.execute()  # gate 1: check-ok programs must evaluate
    for source in BAD_PROGRAMS:
        query = engine.spinql(source)
        report = query.check()
        if report.ok:
            print(f"FALSE OK on {source!r}", file=sys.stderr)
            return 1
        try:
            query.execute()
        except ReproError:
            pass
        else:
            print(f"verifier flagged {source!r} but evaluation passed", file=sys.stderr)
            return 1
    return 0


def check_executor_agreement() -> int:
    from repro.engine import Engine
    from repro.workloads.products import generate_product_triples

    workload = generate_product_triples(60, seed=11)
    source = 'docs = SELECT [$2="category"] (triples);'
    with tempfile.TemporaryDirectory() as scratch:
        for shards in (1, 2, 3):
            path = Path(scratch) / f"snap-{shards}"
            Engine.from_triples(workload.triples).save(path, shards=shards)
            engine = Engine.open_sharded(path)
            try:
                report = engine.spinql(source).check()
                if report.locality is None:
                    print(f"no locality report on a {shards}-shard engine", file=sys.stderr)
                    return 1
                engine.spinql(source).execute()
                executor = engine._plan_executor
                observed = getattr(executor, "last_scatter", {}).get("segments")
                expected = len(report.locality.segments)
                if observed != expected:
                    print(
                        f"classification disagrees with the executor at {shards} "
                        f"shard(s): classify saw {expected} segment(s), the "
                        f"executor scattered {observed}",
                        file=sys.stderr,
                    )
                    return 1
                if not report.locality.scatterable:
                    print(f"partitioned scan not scatterable at {shards} shard(s)", file=sys.stderr)
                    return 1
            finally:
                engine.close()
    return 0


def main() -> int:
    from repro.engine import Engine
    from repro.workloads.products import generate_product_triples

    engine = Engine.from_triples(generate_product_triples(60, seed=11).triples)
    status = check_programs(engine)
    if status:
        return status
    status = check_executor_agreement()
    if status:
        return status
    print("analysis self-check: ok (programs verified + executor agreement, shards 1-3)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
