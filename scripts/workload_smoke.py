"""Workload smoke check: record → export → replay, numpy-only.

Exercises the whole workload loop the way an operator would: record a log
from a live engine, export it to JSONL, synthesize a schedule from the
export twice and assert the schedule hashes agree (the determinism claim),
replay the schedule against a fresh engine with the result cache on and
off and assert the results digests agree (the bit-identity claim), then
run the ``workload summary`` CLI over the export.  Exits non-zero on any
failure, so CI can gate on it.

Usage::

    python scripts/workload_smoke.py [--lots 200] [--requests 60]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--lots", type=int, default=200)
    parser.add_argument("--requests", type=int, default=60)
    args = parser.parse_args()

    from repro.engine import Engine
    from repro.relational.column import Column, DataType
    from repro.relational.relation import Relation
    from repro.relational.schema import Field, Schema
    from repro.workload import (
        EngineTarget,
        load_records,
        run_schedule,
        synthesize_schedule,
    )
    from repro.workloads import generate_auction_triples

    def build_engine(cached: bool) -> Engine:
        workload = generate_auction_triples(args.lots, seed=37)
        if cached:
            engine = Engine.from_triples(workload.triples)
        else:
            engine = Engine.from_triples(workload.triples, result_cache_size=None)
        schema = Schema(
            [Field("docID", DataType.STRING), Field("data", DataType.STRING)]
        )
        engine.create_table(
            "docs",
            Relation(
                schema,
                [
                    Column(list(workload.lot_descriptions.keys()), DataType.STRING),
                    Column(list(workload.lot_descriptions.values()), DataType.STRING),
                ],
            ),
        )
        return engine

    # 1. record a short mixed stream on a live engine and export it
    recorder = build_engine(cached=True)
    workload = generate_auction_triples(args.lots, seed=37)
    queries = [
        " ".join(description.split()[:3])
        for description in list(workload.lot_descriptions.values())[:6]
    ]
    for source in (
        'out = SELECT [$2="hasAuction"] (triples);',
        'mat = SELECT [$2="material"] (triples);',
    ):
        recorder.spinql(source).execute()
    for query in queries:
        recorder.search("docs", query).top(5)
    log_path = Path(tempfile.mkdtemp(prefix="repro-workload-smoke-")) / "workload.jsonl"
    recorder.workload_log.export(log_path)
    print(f"recorded {recorder.workload_log.statistics()['appended']} records -> {log_path}")

    # 2. determinism: same log + seed + knobs → identical schedule hash
    records = load_records(log_path)
    schedule = synthesize_schedule(
        records, num_requests=args.requests, seed=37, mode="closed", zipf_s=1.1
    )
    again = synthesize_schedule(
        records, num_requests=args.requests, seed=37, mode="closed", zipf_s=1.1
    )
    if schedule.schedule_hash() != again.schedule_hash():
        print("FAILED: schedule hash changed across identical synthesis runs")
        return 1
    print(f"schedule hash stable: {schedule.schedule_hash()[:16]}…")

    # 3. bit identity: cache-on replay digests match cache-off replay
    on_report = run_schedule(schedule, EngineTarget(build_engine(cached=True)), concurrency=4)
    off_report = run_schedule(schedule, EngineTarget(build_engine(cached=False)), concurrency=4)
    if on_report.errors or off_report.errors:
        print(f"FAILED: replay errors (on={on_report.errors}, off={off_report.errors})")
        return 1
    if on_report.results_digest != off_report.results_digest:
        print("FAILED: result cache changed an answer (digest mismatch)")
        return 1
    print(
        f"replay bit-identical: {on_report.completed} requests, "
        f"p95 on/off {on_report.latency['p95_ms']:.2f}/{off_report.latency['p95_ms']:.2f} ms"
    )

    # 4. the CLI reads the same export
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "workload", "summary", "--log", str(log_path), "--json"],
        capture_output=True,
        text=True,
    )
    if completed.returncode != 0:
        print(f"FAILED: workload summary CLI exited {completed.returncode}\n{completed.stderr}")
        return 1
    summary = json.loads(completed.stdout)
    if summary["records"] != len(records):
        print(f"FAILED: CLI summary counted {summary['records']} != {len(records)}")
        return 1
    print(f"CLI summary ok: {summary['records']} records, kinds {summary['by_kind']}")

    print("workload smoke passed: record → export → replay loop is deterministic")
    return 0


if __name__ == "__main__":
    sys.exit(main())
