"""Serving smoke check: router + workers over a sharded toy snapshot.

Boots the full serving stack — partitioned snapshot, worker pool, router,
threaded HTTP front end — runs a stream of queries over the socket, and
asserts the answers are identical to in-process execution.  Exits non-zero
on any mismatch, so CI can gate on it.

Usage::

    python scripts/serving_smoke.py [--shards 2] [--workers 2] [--lots 200]
                                    [--transport auto|shm|inline]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import urllib.request
from pathlib import Path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--lots", type=int, default=200)
    parser.add_argument(
        "--transport",
        choices=("auto", "shm", "inline"),
        default="auto",
        help="worker reply transport (shm forces every reply through shared memory)",
    )
    args = parser.parse_args()

    from repro.engine import Engine
    from repro.relational.column import Column, DataType
    from repro.relational.relation import Relation
    from repro.relational.schema import Field, Schema
    from repro.serving import Router
    from repro.workloads import generate_auction_triples

    workload = generate_auction_triples(args.lots, seed=37)
    source = Engine.from_triples(workload.triples)
    schema = Schema([Field("docID", DataType.STRING), Field("data", DataType.STRING)])
    source.create_table(
        "docs",
        Relation(
            schema,
            [
                Column(list(workload.lot_descriptions.keys()), DataType.STRING),
                Column(list(workload.lot_descriptions.values()), DataType.STRING),
            ],
        ),
    )
    queries = [
        " ".join(description.split()[:3])
        for description in list(workload.lot_descriptions.values())[:8]
    ]
    source.search("docs", queries[0]).execute()

    snapshot = Path(tempfile.mkdtemp(prefix="repro-serving-smoke-")) / "snapshot"
    source.save(snapshot, shards=args.shards)
    print(f"sharded snapshot: {snapshot} ({args.shards} shards)")

    # --transport shm drops the threshold to zero so even the small smoke
    # replies actually exercise the shared-memory path
    engine = Engine.open_sharded(
        snapshot,
        executor="pool",
        workers=args.workers,
        transport=args.transport,
        shm_threshold=0 if args.transport == "shm" else None,
    )
    router = Router(engine, max_concurrent=args.workers)
    server, _thread = router.start(port=0)
    port = server.server_address[1]
    print(f"router: http://127.0.0.1:{port} {engine.executor_info()}")

    failures = 0
    try:
        health = json.loads(
            urllib.request.urlopen(f"http://127.0.0.1:{port}/healthz", timeout=30).read()
        )
        assert health["ok"], health

        for query in queries:
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/query",
                data=json.dumps(
                    {"kind": "search", "table": "docs", "query": query, "top_k": 5}
                ).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            reply = json.loads(urllib.request.urlopen(request, timeout=60).read())
            expected = [
                [doc_id, score] for doc_id, score in source.search("docs", query).top(5)
            ]
            if not reply.get("ok") or reply["results"] != expected:
                failures += 1
                print(f"MISMATCH for {query!r}:\n  served   {reply}\n  expected {expected}")
            else:
                print(f"ok: {query!r} -> {reply['results'][0]}")

        program = 'out = SELECT [$2="hasAuction"] (triples);'
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/query",
            data=json.dumps({"kind": "spinql", "source": program, "top_k": 5}).encode(),
            headers={"Content-Type": "application/json"},
        )
        reply = json.loads(urllib.request.urlopen(request, timeout=60).read())
        expected = [[item, p] for item, p in source.spinql(program).top(5)]
        if not reply.get("ok") or reply["results"] != expected:
            failures += 1
            print(f"MISMATCH for spinql:\n  served   {reply}\n  expected {expected}")
        else:
            print(f"ok: spinql top-5 -> {reply['results'][0]}")

        stats = router.statistics()
        print(f"router statistics: {stats}")
        assert stats["served"] == len(queries) + 1
    finally:
        server.shutdown()
        server.server_close()
        router.close()

    if failures:
        print(f"FAILED: {failures} mismatches")
        return 1
    print("serving smoke passed: socket answers identical to in-process execution")
    return 0


if __name__ == "__main__":
    sys.exit(main())
