"""Serving smoke check: router + workers over a sharded toy snapshot.

Boots the full serving stack — partitioned snapshot, worker pool, router,
asyncio HTTP front end — runs a stream of queries over the socket, and
asserts the answers are identical to in-process execution.  Exits non-zero
on any mismatch, so CI can gate on it.

With ``--replicas 2 --kill-worker`` the check also exercises failover:
one worker is SIGKILLed halfway through the query stream and every
subsequent answer must still come back correct (re-routed to the
surviving replica) with zero client-visible errors.

Usage::

    python scripts/serving_smoke.py [--shards 2] [--workers 2] [--lots 200]
                                    [--transport auto|shm|inline]
                                    [--replicas 2] [--kill-worker]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import tempfile
import urllib.request
from pathlib import Path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--lots", type=int, default=200)
    parser.add_argument(
        "--transport",
        choices=("auto", "shm", "inline"),
        default="auto",
        help="worker reply transport (shm forces every reply through shared memory)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="replicas per shard (2+ enables transparent failover)",
    )
    parser.add_argument(
        "--kill-worker",
        action="store_true",
        help="SIGKILL one worker mid-run; requires --replicas >= 2",
    )
    parser.add_argument(
        "--batching",
        action="store_true",
        help="serve with write coalescing enabled and finish with a burst of "
             "identical concurrent requests (asserts collapse + bit-identity)",
    )
    args = parser.parse_args()
    if args.kill_worker and args.replicas < 2:
        parser.error("--kill-worker requires --replicas >= 2")

    from repro.engine import Engine
    from repro.relational.column import Column, DataType
    from repro.relational.relation import Relation
    from repro.relational.schema import Field, Schema
    from repro.serving import Router, ServingConfig
    from repro.workloads import generate_auction_triples

    workload = generate_auction_triples(args.lots, seed=37)
    source = Engine.from_triples(workload.triples)
    schema = Schema([Field("docID", DataType.STRING), Field("data", DataType.STRING)])
    source.create_table(
        "docs",
        Relation(
            schema,
            [
                Column(list(workload.lot_descriptions.keys()), DataType.STRING),
                Column(list(workload.lot_descriptions.values()), DataType.STRING),
            ],
        ),
    )
    queries = [
        " ".join(description.split()[:3])
        for description in list(workload.lot_descriptions.values())[:8]
    ]
    source.search("docs", queries[0]).execute()

    snapshot = Path(tempfile.mkdtemp(prefix="repro-serving-smoke-")) / "snapshot"
    source.save(snapshot, shards=args.shards)
    print(f"sharded snapshot: {snapshot} ({args.shards} shards)")

    # --transport shm drops the threshold to zero so even the small smoke
    # replies actually exercise the shared-memory path
    config = ServingConfig(
        workers=args.workers,
        replicas=args.replicas,
        transport=args.transport,
        shm_threshold=0 if args.transport == "shm" else None,
        max_concurrent=args.workers,
        max_batch_size=8 if args.batching else 1,
    )
    engine = Engine.open_sharded(snapshot, executor="pool", config=config)
    router = Router(engine)
    server, _thread = router.start(port=0)
    port = server.server_address[1]
    print(f"router: http://127.0.0.1:{port} {engine.executor_info()}")

    def ask_search(query: str) -> dict:
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/query",
            data=json.dumps(
                {"kind": "search", "table": "docs", "query": query, "top_k": 5}
            ).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        return json.loads(urllib.request.urlopen(request, timeout=60).read())

    failures = 0
    killed_pid: int | None = None
    try:
        health = json.loads(
            urllib.request.urlopen(f"http://127.0.0.1:{port}/healthz", timeout=30).read()
        )
        assert health["ok"], health

        for index, query in enumerate(queries):
            if args.kill_worker and index == len(queries) // 2 and killed_pid is None:
                victim = engine._plan_executor._pool._processes[0]
                killed_pid = victim.pid
                os.kill(killed_pid, signal.SIGKILL)
                victim.join(timeout=10)
                print(f"killed worker pid={killed_pid}; continuing the query stream")
            reply = ask_search(query)
            expected = [
                [doc_id, score] for doc_id, score in source.search("docs", query).top(5)
            ]
            if not reply.get("ok") or reply["results"] != expected:
                failures += 1
                print(f"MISMATCH for {query!r}:\n  served   {reply}\n  expected {expected}")
            else:
                print(f"ok: {query!r} -> {reply['results'][0]}")

        program = 'out = SELECT [$2="hasAuction"] (triples);'
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/query",
            data=json.dumps({"kind": "spinql", "source": program, "top_k": 5}).encode(),
            headers={"Content-Type": "application/json"},
        )
        reply = json.loads(urllib.request.urlopen(request, timeout=60).read())
        expected = [[item, p] for item, p in source.spinql(program).top(5)]
        if not reply.get("ok") or reply["results"] != expected:
            failures += 1
            print(f"MISMATCH for spinql:\n  served   {reply}\n  expected {expected}")
        else:
            print(f"ok: spinql top-5 -> {reply['results'][0]}")

        stats = router.statistics()
        print(f"router statistics: {stats}")
        assert stats["served"] == len(queries) + 1

        if args.batching:
            from concurrent.futures import ThreadPoolExecutor

            burst_query = queries[0]
            expected = [
                [doc_id, score]
                for doc_id, score in source.search("docs", burst_query).top(5)
            ]
            with ThreadPoolExecutor(max_workers=16) as burst:
                replies = list(burst.map(ask_search, [burst_query] * 32))
            for reply in replies:
                if not reply.get("ok") or reply["results"] != expected:
                    failures += 1
                    print(f"MISMATCH in burst:\n  served   {reply}\n  expected {expected}")
            stats = router.statistics()
            batching = engine._plan_executor._pool.batching()
            print(
                f"burst of 32 identical requests: collapse_hits={stats['collapse_hits']} "
                f"collapse_leaders={stats['collapse_leaders']} "
                f"mean_batch_occupancy={batching['mean_occupancy']:.2f} "
                f"occupancy_histogram={batching['occupancy_histogram']}"
            )
            if stats["collapse_hits"] < 1:
                failures += 1
                print(
                    "FAILED: a 32-wide identical-request burst produced zero "
                    "collapse hits — in-flight collapsing is not engaging"
                )

        if killed_pid is not None:
            health = json.loads(
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/healthz", timeout=30
                ).read()
            )
            replication = health["executor"].get("replication", {})
            print(
                f"after kill: degraded={health.get('degraded')} "
                f"restarts={replication.get('restarts')}"
            )
    finally:
        server.shutdown()
        server.server_close()
        router.close()

    if failures:
        print(f"FAILED: {failures} mismatches")
        return 1
    if killed_pid is not None:
        print(
            "serving smoke passed: zero client-visible errors with one worker "
            "SIGKILLed mid-run (failover re-routed to the surviving replica)"
        )
    else:
        print("serving smoke passed: socket answers identical to in-process execution")
    return 0


if __name__ == "__main__":
    sys.exit(main())
