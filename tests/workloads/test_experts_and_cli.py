"""Unit tests for the expert-finding workload, its strategy, and the CLI."""

import pytest

from repro.cli import main
from repro.errors import WorkloadError
from repro.strategy import StrategyExecutor
from repro.strategy.prebuilt import build_expert_strategy
from repro.triples import TripleStore
from repro.workloads.experts import generate_expert_triples


@pytest.fixture(scope="module")
def expert_workload():
    return generate_expert_triples(25, 120, num_topics=4, seed=3)


class TestExpertWorkload:
    def test_counts(self, expert_workload):
        assert expert_workload.num_people == 25
        assert expert_workload.num_documents == 120
        assert len(expert_workload.topics) == 4

    def test_every_document_has_authors_and_topic(self, expert_workload):
        about = {t.subject for t in expert_workload.triples if t.property == "about"}
        authored = {t.subject for t in expert_workload.triples if t.property == "authoredBy"}
        assert about == set(expert_workload.document_ids)
        assert authored == set(expert_workload.document_ids)

    def test_ground_truth_consistency(self, expert_workload):
        # a person's topics are exactly the topics of the documents they author
        for document, authors in expert_workload.document_authors.items():
            topic = next(
                t.object for t in expert_workload.triples
                if t.subject == document and t.property == "about"
            )
            for author in authors:
                assert topic in expert_workload.person_topics[author]

    def test_experts_on(self, expert_workload):
        topic = expert_workload.topics[0]
        experts = expert_workload.experts_on(topic)
        assert experts
        assert all(topic in expert_workload.person_topics[person] for person in experts)

    def test_query_for_topic_uses_topic_vocabulary(self, expert_workload):
        topic = expert_workload.topics[1]
        query = expert_workload.query_for_topic(topic)
        assert all(term in expert_workload.topic_terms[topic] for term in query.split())

    def test_topic_vocabularies_are_disjoint(self, expert_workload):
        seen = set()
        for topic, terms in expert_workload.topic_terms.items():
            assert not (seen & set(terms))
            seen.update(terms)

    def test_deterministic(self):
        first = generate_expert_triples(10, 30, seed=9)
        second = generate_expert_triples(10, 30, seed=9)
        assert [t.as_row() for t in first.triples] == [t.as_row() for t in second.triples]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            generate_expert_triples(0, 10)
        with pytest.raises(WorkloadError):
            generate_expert_triples(10, 10, authors_per_document=0)


class TestExpertStrategy:
    def test_returns_people_and_finds_true_experts(self, expert_workload):
        store = TripleStore()
        store.add_all(expert_workload.triples)
        store.load()
        strategy = build_expert_strategy()
        topic = expert_workload.topics[0]
        run = StrategyExecutor(store).run(strategy, query=expert_workload.query_for_topic(topic))
        nodes = [node for node, _ in run.top(10)]
        assert nodes
        assert all(node in expert_workload.person_ids for node in nodes)
        true_experts = set(expert_workload.experts_on(topic))
        assert set(nodes[:5]) & true_experts


class TestCli:
    def test_toy_command(self, capsys):
        exit_code = main(["toy", "--products", "80", "--top", "3", "--seed", "4"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "query:" in output
        assert "p = " in output

    def test_toy_command_with_explicit_query_and_strategy(self, capsys):
        exit_code = main(
            ["toy", "--products", "80", "--query", "wooden train", "--show-strategy"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "rank toy products" in output

    def test_toy_command_unknown_category_fails(self, capsys):
        exit_code = main(["toy", "--products", "40", "--category", "nonexistent"])
        assert exit_code == 1

    def test_auction_command(self, capsys):
        exit_code = main(["auction", "--lots", "150", "--top", "3"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "lot" in output

    def test_experts_command(self, capsys):
        exit_code = main(
            ["experts", "--people", "15", "--documents", "60", "--top", "3"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "person" in output

    def test_spinql_command(self, capsys):
        exit_code = main(["spinql", 'x = SELECT [$2="category"] (triples);'])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "PRA plan" in output
        assert "SQL translation" in output

    def test_unknown_command_raises_system_exit(self):
        with pytest.raises(SystemExit):
            main(["unknown-command"])
