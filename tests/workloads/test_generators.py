"""Unit tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    generate_auction_triples,
    generate_collection,
    generate_product_triples,
    generate_queries,
)
from repro.workloads.vocabulary import ZipfianVocabulary


class TestVocabulary:
    def test_size_and_uniqueness(self):
        vocabulary = ZipfianVocabulary(500, seed=1)
        assert len(vocabulary.words) == 500
        assert len(set(vocabulary.words)) == 500

    def test_deterministic_for_seed(self):
        assert ZipfianVocabulary(100, seed=3).words == ZipfianVocabulary(100, seed=3).words
        assert ZipfianVocabulary(100, seed=3).words != ZipfianVocabulary(100, seed=4).words

    def test_zipf_skew(self):
        vocabulary = ZipfianVocabulary(1000, seed=2)
        rng = np.random.default_rng(0)
        sample = vocabulary.sample(rng, 20_000)
        counts = {word: 0 for word in vocabulary.words[:10]}
        for word in sample:
            if word in counts:
                counts[word] += 1
        frequent = counts[vocabulary.words[0]]
        tenth = counts[vocabulary.words[9]]
        assert frequent > tenth > 0

    def test_probability_of_rank_decreasing(self):
        vocabulary = ZipfianVocabulary(100)
        assert vocabulary.probability_of_rank(1) > vocabulary.probability_of_rank(50)
        with pytest.raises(WorkloadError):
            vocabulary.probability_of_rank(0)

    def test_frequent_and_rare_terms(self):
        vocabulary = ZipfianVocabulary(100)
        assert vocabulary.frequent_terms(3) == vocabulary.words[:3]
        assert vocabulary.rare_terms(3) == vocabulary.words[-3:]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ZipfianVocabulary(5)
        with pytest.raises(WorkloadError):
            ZipfianVocabulary(100, exponent=0)


class TestTextCollection:
    def test_collection_size(self):
        collection = generate_collection(50, seed=1)
        assert collection.num_documents == 50
        assert len({doc_id for doc_id, _ in collection.documents}) == 50

    def test_deterministic(self):
        left = generate_collection(20, seed=9).documents
        assert left == generate_collection(20, seed=9).documents

    def test_average_length_close_to_requested(self):
        collection = generate_collection(200, average_length=40, seed=3)
        assert 25 <= collection.average_length_terms() <= 60

    def test_to_relation(self):
        relation = generate_collection(10, seed=2).to_relation()
        assert relation.schema.names == ["docID", "data"]
        assert relation.num_rows == 10

    def test_raw_size_positive(self):
        assert generate_collection(5, seed=1).raw_size_bytes() > 0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            generate_collection(0)
        with pytest.raises(WorkloadError):
            generate_collection(10, average_length=0)


class TestProductWorkload:
    def test_counts_and_required_properties(self, product_workload):
        assert product_workload.num_products == 120
        properties = {t.property for t in product_workload.triples}
        assert {"type", "category", "description", "price"} <= properties

    def test_products_in_category(self, product_workload):
        toys = product_workload.products_in_category("toy")
        assert toys
        assert all(product in product_workload.product_ids for product in toys)

    def test_descriptions_recorded(self, product_workload):
        product = product_workload.product_ids[0]
        assert product_workload.descriptions[product]

    def test_extra_properties_increase_property_count(self):
        base = generate_product_triples(50, seed=2)
        extended = generate_product_triples(50, seed=2, extra_properties=5)
        base_properties = {t.property for t in base.triples}
        extended_properties = {t.property for t in extended.triples}
        assert len(extended_properties) > len(base_properties)

    def test_price_is_integer_typed(self, product_workload):
        prices = [t.object for t in product_workload.triples if t.property == "price"]
        assert all(isinstance(price, int) for price in prices)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            generate_product_triples(0)


class TestAuctionWorkload:
    def test_counts(self, auction_workload):
        assert auction_workload.num_lots == 150
        assert auction_workload.num_auctions == 4

    def test_every_lot_has_an_auction(self, auction_workload):
        assert set(auction_workload.lot_auction.keys()) == set(auction_workload.lot_ids)
        assert set(auction_workload.lot_auction.values()) <= set(auction_workload.auction_ids)

    def test_default_auction_ratio(self):
        workload = generate_auction_triples(640, seed=1)
        assert workload.num_auctions == 2

    def test_lot_descriptions_share_terms_with_their_auction(self, auction_workload):
        lot = auction_workload.lot_ids[0]
        auction = auction_workload.lot_auction[lot]
        lot_terms = set(auction_workload.lot_descriptions[lot].split())
        auction_terms = set(auction_workload.auction_descriptions[auction].split())
        assert lot_terms & auction_terms

    def test_triples_contain_has_auction_edges(self, auction_workload):
        edges = [t for t in auction_workload.triples if t.property == "hasAuction"]
        assert len(edges) == auction_workload.num_lots

    def test_lots_in_auction(self, auction_workload):
        auction = auction_workload.auction_ids[0]
        lots = auction_workload.lots_in_auction(auction)
        assert all(auction_workload.lot_auction[lot] == auction for lot in lots)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            generate_auction_triples(0)
        with pytest.raises(WorkloadError):
            generate_auction_triples(10, 0)
        with pytest.raises(WorkloadError):
            generate_auction_triples(10, 2, shared_term_fraction=1.5)


class TestQueryWorkload:
    def test_query_count_and_length(self):
        vocabulary = ZipfianVocabulary(200, seed=1)
        workload = generate_queries(vocabulary, 30, terms_per_query=3, seed=5)
        assert len(workload) == 30
        assert all(len(query.split()) == 3 for query in workload)

    def test_deterministic(self):
        vocabulary = ZipfianVocabulary(200, seed=1)
        first = generate_queries(vocabulary, 10, seed=5).queries
        second = generate_queries(vocabulary, 10, seed=5).queries
        assert first == second

    def test_queries_drawn_from_vocabulary(self):
        vocabulary = ZipfianVocabulary(200, seed=1)
        workload = generate_queries(vocabulary, 20, seed=2)
        words = set(vocabulary.words)
        for query in workload:
            assert all(term in words for term in query.split())

    def test_validation(self):
        vocabulary = ZipfianVocabulary(200, seed=1)
        with pytest.raises(WorkloadError):
            generate_queries(vocabulary, 0)
        with pytest.raises(WorkloadError):
            generate_queries(vocabulary, 5, terms_per_query=0)
        with pytest.raises(WorkloadError):
            generate_queries(vocabulary, 5, rare_term_fraction=2.0)
