"""Unit tests for analyzers and stopword lists."""

import pytest

from repro.errors import TextAnalysisError
from repro.text.analyzers import Analyzer, StandardAnalyzer
from repro.text.stemming.porter import PorterStemmer
from repro.text.stopwords import STOPWORDS, is_stopword, stopwords_for
from repro.text.tokenizer import Tokenizer


class TestStopwords:
    def test_english_stopwords(self):
        assert is_stopword("the")
        assert is_stopword("The")
        assert not is_stopword("database")

    def test_other_languages(self):
        assert is_stopword("het", "dutch")
        assert is_stopword("der", "german")
        assert is_stopword("les", "french")

    def test_unknown_language_has_no_stopwords(self):
        assert stopwords_for("klingon") == frozenset()
        assert not is_stopword("the", "klingon")

    def test_all_lists_are_lowercase(self):
        for language, words in STOPWORDS.items():
            assert all(word == word.lower() for word in words), language


class TestAnalyzer:
    def test_default_pipeline_lowercases(self):
        analyzer = Analyzer()
        assert analyzer.analyze("Hello World") == ["hello", "world"]

    def test_stemming_applied_after_lowercasing(self):
        analyzer = Analyzer(stemmer=PorterStemmer())
        assert analyzer.analyze("Running Databases") == ["run", "databas"]

    def test_stopword_removal(self):
        analyzer = Analyzer(remove_stopwords=True)
        assert analyzer.analyze("the cat and the dog") == ["cat", "dog"]

    def test_stopwords_kept_by_default(self):
        analyzer = Analyzer()
        assert "the" in analyzer.analyze("the cat")

    def test_custom_tokenizer(self):
        analyzer = Analyzer(tokenizer=Tokenizer(min_length=4))
        assert analyzer.analyze("an old oak tree") == ["tree"]

    def test_analyze_query_matches_analyze(self):
        analyzer = StandardAnalyzer()
        text = "Wooden Train Sets"
        assert analyzer.analyze_query(text) == analyzer.analyze(text)

    def test_describe(self):
        description = Analyzer(stemmer=PorterStemmer()).describe()
        assert description["stemmer"] == "english"
        assert description["lowercase"] is True


class TestStandardAnalyzer:
    def test_matches_paper_sql_expression(self):
        """StandardAnalyzer must equal stem(lcase(token), 'sb-english') per token."""
        from repro.text.stemming import stem

        analyzer = StandardAnalyzer("english")
        text = "Wooden Trains Running"
        expected = [stem(token.lower(), "sb-english") for token in Tokenizer().tokenize(text)]
        assert analyzer.analyze(text) == expected

    def test_language_none_disables_stemming(self):
        analyzer = StandardAnalyzer("none")
        assert analyzer.analyze("Running") == ["running"]

    def test_dutch_language(self):
        analyzer = StandardAnalyzer("dutch")
        assert analyzer.analyze("Boeken") == analyzer.analyze("boek")

    def test_empty_language_rejected(self):
        with pytest.raises(TextAnalysisError):
            StandardAnalyzer("")

    def test_optional_stopword_removal(self):
        analyzer = StandardAnalyzer("english", remove_stopwords=True)
        assert "the" not in analyzer.analyze("the history of the book")
