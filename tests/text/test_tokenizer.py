"""Unit tests for the tokenizer."""

import pytest

from repro.errors import TextAnalysisError
from repro.text.tokenizer import Tokenizer


class TestDefaults:
    def test_splits_on_punctuation_and_whitespace(self):
        tokenizer = Tokenizer()
        assert tokenizer.tokenize("Hello, world! 2nd try.") == ["Hello", "world", "2nd", "try"]

    def test_preserves_case_by_default(self):
        assert Tokenizer().tokenize("MonetDB SQL") == ["MonetDB", "SQL"]

    def test_empty_string(self):
        assert Tokenizer().tokenize("") == []

    def test_only_punctuation(self):
        assert Tokenizer().tokenize("... --- !!!") == []

    def test_apostrophes_kept_inside_words(self):
        assert Tokenizer().tokenize("o'clock isn't") == ["o'clock", "isn't"]

    def test_positions_are_token_ordinals(self):
        pairs = Tokenizer().tokenize_with_positions("a b c")
        assert pairs == [("a", 0), ("b", 1), ("c", 2)]


class TestConfiguration:
    def test_lowercase_option(self):
        assert Tokenizer(lowercase=True).tokenize("Hello World") == ["hello", "world"]

    def test_drop_numbers(self):
        tokenizer = Tokenizer(keep_numbers=False)
        assert tokenizer.tokenize("route 66 is a road") == ["route", "is", "a", "road"]
        # mixed alphanumerics are kept
        assert "b2b" in Tokenizer(keep_numbers=False).tokenize("b2b sales")

    def test_min_length(self):
        tokenizer = Tokenizer(min_length=3)
        assert tokenizer.tokenize("an old oak") == ["old", "oak"]

    def test_max_length(self):
        tokenizer = Tokenizer(max_length=4)
        assert tokenizer.tokenize("tiny enormous") == ["tiny"]

    def test_invalid_configuration(self):
        with pytest.raises(TextAnalysisError):
            Tokenizer(min_length=0)
        with pytest.raises(TextAnalysisError):
            Tokenizer(min_length=5, max_length=3)

    def test_iter_tokens_is_lazy_equivalent(self):
        tokenizer = Tokenizer()
        text = "one two three"
        assert list(tokenizer.iter_tokens(text)) == tokenizer.tokenize(text)
