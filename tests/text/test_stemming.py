"""Unit tests for the stemmer registry and the individual stemmers."""

import pytest

from repro.errors import UnknownLanguageError
from repro.text.stemming import available_languages, get_stemmer, register_stemmer, stem
from repro.text.stemming.base import IdentityStemmer, Stemmer
from repro.text.stemming.porter import PorterStemmer
from repro.text.stemming.snowball import DutchStemmer, FrenchStemmer, GermanStemmer


class TestRegistry:
    def test_available_languages(self):
        languages = available_languages()
        assert {"english", "dutch", "german", "french", "none"} <= set(languages)

    def test_get_stemmer_plain_and_sb_prefix(self):
        assert isinstance(get_stemmer("english"), PorterStemmer)
        assert isinstance(get_stemmer("sb-english"), PorterStemmer)
        assert isinstance(get_stemmer("SB-Dutch"), DutchStemmer)

    def test_unknown_language(self):
        with pytest.raises(UnknownLanguageError):
            get_stemmer("klingon")

    def test_stem_helper(self):
        assert stem("running") == "run"
        assert stem("running", "none") == "running"

    def test_register_custom_stemmer(self):
        class ReverseStemmer(Stemmer):
            language = "reverse"

            def stem(self, token):
                return token[::-1]

        register_stemmer("reverse", ReverseStemmer())
        assert stem("abc", "reverse") == "cba"


class TestPorterStemmer:
    @pytest.mark.parametrize(
        "word, expected",
        [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("cats", "cat"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("motoring", "motor"),
            ("happy", "happi"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("formalize", "formal"),
            ("electrical", "electr"),
            ("adjustable", "adjust"),
            ("probate", "probat"),
            ("running", "run"),
            ("retrieval", "retriev"),
        ],
    )
    def test_published_examples(self, word, expected):
        assert PorterStemmer().stem(word) == expected

    def test_short_words_unchanged(self):
        stemmer = PorterStemmer()
        assert stemmer.stem("is") == "is"
        assert stemmer.stem("at") == "at"

    def test_lowercases_input(self):
        assert PorterStemmer().stem("Running") == "run"

    def test_deterministic(self):
        stemmer = PorterStemmer()
        assert stemmer.stem("databases") == stemmer.stem("databases")

    def test_conflates_inflections(self):
        stemmer = PorterStemmer()
        assert stemmer.stem("connect") == stemmer.stem("connected") == stemmer.stem("connecting")

    def test_memoizes_repeated_tokens(self):
        stemmer = PorterStemmer()
        stemmer.stem("running")
        before = stemmer.stem.cache_info()
        assert stemmer.stem("running") == "run"
        after = stemmer.stem.cache_info()
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

    def test_caches_are_per_instance(self):
        first, second = PorterStemmer(), PorterStemmer()
        first.stem("jumping")
        assert second.stem.cache_info().currsize == 0
        assert second.stem("jumping") == first.stem("jumping")


class TestOtherStemmers:
    def test_identity(self):
        assert IdentityStemmer().stem("Fietsen") == "Fietsen"

    def test_dutch_plural_stripping(self):
        stemmer = DutchStemmer()
        assert stemmer.stem("boeken") == stemmer.stem("boek") == "boek"

    def test_dutch_undoubles_consonants(self):
        assert DutchStemmer().stem("bakken") == "bak"

    def test_dutch_short_words_unchanged(self):
        assert DutchStemmer().stem("de") == "de"

    def test_german_suffix_stripping(self):
        stemmer = GermanStemmer()
        assert stemmer.stem("häusern") == stemmer.stem("häuser")

    def test_german_eszett_normalisation(self):
        assert "ss" in GermanStemmer().stem("straße")

    def test_french_suffix_stripping(self):
        stemmer = FrenchStemmer()
        assert stemmer.stem("chanteuses") == stemmer.stem("chanteuse")

    def test_stemmers_never_lengthen(self):
        for stemmer in (DutchStemmer(), GermanStemmer(), FrenchStemmer(), PorterStemmer()):
            for word in ("information", "retrieval", "databasesystemen", "wunderbaren"):
                assert len(stemmer.stem(word)) <= len(word)

    def test_stem_all(self):
        assert PorterStemmer().stem_all(["cats", "running"]) == ["cat", "run"]
