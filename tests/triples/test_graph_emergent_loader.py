"""Unit tests for graph traversal, emergent-schema detection and the loader."""

import pytest

from repro.errors import TripleStoreError
from repro.pra.relation import ProbabilisticRelation
from repro.relational.column import DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.triples.emergent_schema import EmergentSchemaDetector
from repro.triples.graph import GraphNavigator
from repro.triples.loader import load_triples, parse_triple_line
from repro.triples.triple_store import Triple, TripleStore


class TestGraphNavigator:
    def test_forward_traversal(self, auction_store):
        navigator = GraphNavigator(auction_store)
        reached = navigator.traverse(["lot1", "lot2"], "hasAuction")
        assert reached.relation.column("node").to_list() == ["auction1"]

    def test_backward_traversal(self, auction_store):
        navigator = GraphNavigator(auction_store)
        reached = navigator.traverse(["auction1"], "hasAuction", backward=True)
        assert set(reached.relation.column("node").to_list()) == {"lot1", "lot2"}

    def test_neighbors(self, auction_store):
        navigator = GraphNavigator(auction_store)
        assert navigator.neighbors("lot3", "hasAuction") == ["auction2"]
        assert set(navigator.neighbors("auction2", "hasAuction", backward=True)) == {
            "lot3",
            "lot4",
        }

    def test_probability_propagation(self, auction_store):
        navigator = GraphNavigator(auction_store)
        schema = Schema([Field("node", DataType.STRING), Field("p", DataType.FLOAT)])
        start = ProbabilisticRelation(
            Relation.from_rows(schema, [("lot1", 0.5), ("lot2", 0.25)])
        )
        reached = navigator.traverse(start, "hasAuction")
        # both lots reach auction1; the merged probability must exceed either path alone
        probability = reached.probabilities()[0]
        assert probability == pytest.approx(1 - (1 - 0.5) * (1 - 0.25))

    def test_round_trip_forward_then_backward(self, auction_store):
        navigator = GraphNavigator(auction_store)
        reached = navigator.traverse_path(["lot1"], [("hasAuction", False), ("hasAuction", True)])
        nodes = set(reached.relation.column("node").to_list())
        assert nodes == {"lot1", "lot2"}  # all lots of auction1

    def test_traverse_requires_single_value_column(self, auction_store):
        navigator = GraphNavigator(auction_store)
        schema = Schema(
            [Field("a", DataType.STRING), Field("b", DataType.STRING), Field("p", DataType.FLOAT)]
        )
        start = ProbabilisticRelation(Relation.from_rows(schema, [("x", "y", 1.0)]))
        with pytest.raises(TripleStoreError):
            navigator.traverse(start, "hasAuction")

    def test_unknown_property_reaches_nothing(self, auction_store):
        navigator = GraphNavigator(auction_store)
        assert navigator.traverse(["lot1"], "ownedBy").num_rows == 0


class TestEmergentSchema:
    def make_triples(self):
        triples = []
        for index in range(6):
            subject = f"lot{index}"
            triples.append(Triple(subject, "type", "lot"))
            triples.append(Triple(subject, "description", f"lot number {index}"))
            triples.append(Triple(subject, "hasAuction", "auction1"))
        for index in range(2):
            subject = f"auction{index}"
            triples.append(Triple(subject, "type", "auction"))
            triples.append(Triple(subject, "description", f"auction number {index}"))
        triples.append(Triple("oddball", "colour", "green"))
        return triples

    def test_characteristic_sets(self):
        detector = EmergentSchemaDetector()
        sets = detector.characteristic_sets(self.make_triples())
        assert sets[0].support == 6
        assert sets[0].properties == frozenset({"type", "description", "hasAuction"})

    def test_detect_produces_wide_tables(self):
        detector = EmergentSchemaDetector()
        tables = detector.detect(self.make_triples())
        lot_table = next(t for t in tables if "hasAuction" in t.properties)
        assert lot_table.relation.num_rows == 6
        assert set(lot_table.relation.schema.names) == {
            "subject",
            "type",
            "description",
            "hasAuction",
            "p",
        }

    def test_rare_sets_merged_into_frequent_superset(self):
        triples = self.make_triples()
        # one lot misses its description: its characteristic set is a subset
        triples = [t for t in triples if not (t.subject == "lot5" and t.property == "description")]
        detector = EmergentSchemaDetector(min_support=2)
        tables = detector.detect(triples)
        lot_table = next(t for t in tables if "hasAuction" in t.properties)
        assert "lot5" in lot_table.subjects

    def test_max_tables_limit(self):
        detector = EmergentSchemaDetector(min_support=1, max_tables=1)
        tables = detector.detect(self.make_triples())
        # one frequent table remains; the auction subjects (whose property set
        # is a subset of the lot set) are folded into it, the oddball subject
        # stays in a leftover table of its own
        assert len(tables) == 2
        assert tables[0].relation.num_rows == 8
        assert set(tables[0].subjects) >= {"lot0", "auction0"}

    def test_coverage_metric(self):
        detector = EmergentSchemaDetector()
        triples = self.make_triples()
        tables = detector.detect(triples)
        assert detector.coverage(triples, tables) == pytest.approx(1.0)

    def test_property_frequencies(self):
        detector = EmergentSchemaDetector()
        frequencies = detector.property_frequencies(self.make_triples())
        assert frequencies["type"] == 8

    def test_invalid_min_support(self):
        with pytest.raises(TripleStoreError):
            EmergentSchemaDetector(min_support=0)


class TestLoader:
    def test_parse_simple_line(self):
        triple = parse_triple_line("lot1 hasAuction auction1")
        assert triple == Triple("lot1", "hasAuction", "auction1")

    def test_parse_typed_literals(self):
        assert parse_triple_line("lot1 estimate 250").object == 250
        assert parse_triple_line("lot1 rating 4.5").object == 4.5

    def test_parse_probability(self):
        triple = parse_triple_line("lot1 category toy 0.75")
        assert triple.probability == pytest.approx(0.75)

    def test_fourth_field_that_is_not_probability_joins_object(self):
        triple = parse_triple_line("lot1 description antique oak table")
        assert triple.object == "antique oak table"
        assert triple.probability == 1.0

    def test_quoted_object(self):
        assert parse_triple_line('lot1 label "Lot One"').object == "Lot One"

    def test_comments_and_blank_lines_skipped(self):
        assert parse_triple_line("# comment") is None
        assert parse_triple_line("   ") is None

    def test_malformed_line(self):
        with pytest.raises(TripleStoreError):
            parse_triple_line("only two")

    def test_load_from_lines_and_file(self, tmp_path):
        lines = ["# products", "p1 category toy", "p1 price 25", "", "p2 category book"]
        triples = load_triples(lines)
        assert len(triples) == 3
        path = tmp_path / "triples.txt"
        path.write_text("\n".join(lines), encoding="utf-8")
        assert load_triples(path) == triples

    def test_separator_override(self):
        triple = parse_triple_line("p1|description|a nice toy", separator="|")
        assert triple.object == "a nice toy"

    def test_loaded_triples_feed_the_store(self):
        triples = load_triples(["p1 category toy", "p1 description wooden train"])
        store = TripleStore()
        store.add_all(triples)
        assert store.match(property_name="category").num_rows == 1
