"""Unit tests for the vertical-partitioning storage strategies."""

import pytest

from repro.errors import PartitioningError
from repro.relational.database import Database
from repro.triples.partitioning import (
    PropertyPartitionedStorage,
    SingleTableStorage,
    TypePartitionedStorage,
    make_storage,
)
from repro.triples.triple_store import Triple, TripleStore

TRIPLES = [
    Triple("p1", "category", "toy"),
    Triple("p1", "description", "wooden train"),
    Triple("p1", "price", 25),
    Triple("p2", "category", "book"),
    Triple("p2", "description", "train history"),
    Triple("p2", "price", 10),
    Triple("p2", "rating", 4.5),
]


@pytest.fixture(params=["single-table", "property-partitioned", "type-partitioned"])
def store(request):
    storage = make_storage(request.param)
    triple_store = TripleStore(storage=storage)
    triple_store.add_all(TRIPLES)
    triple_store.load()
    return triple_store


class TestAllStrategiesBehaveIdentically:
    """Every storage layout must answer the same pattern queries identically."""

    def test_match_by_property(self, store):
        assert store.match(property_name="category").num_rows == 2

    def test_match_by_property_and_object(self, store):
        matched = store.match(property_name="category", obj="toy")
        assert matched.relation.column("subject").to_list() == ["p1"]

    def test_match_by_subject_only(self, store):
        assert store.match(subject="p1").num_rows == 3

    def test_match_everything(self, store):
        assert store.match().num_rows == len(TRIPLES)

    def test_match_numeric_object(self, store):
        matched = store.match(property_name="price", obj=25)
        assert matched.relation.column("subject").to_list() == ["p1"]

    def test_unknown_property(self, store):
        assert store.match(property_name="colour").num_rows == 0


class TestLayoutSpecifics:
    def test_single_table_creates_one_table(self):
        database = Database()
        storage = SingleTableStorage()
        storage.load(database, TRIPLES)
        assert storage.table_names(database) == ["triples"]
        assert database.table("triples").num_rows == len(TRIPLES)

    def test_property_partitioning_creates_one_table_per_property(self):
        database = Database()
        storage = PropertyPartitionedStorage()
        storage.load(database, TRIPLES)
        names = storage.table_names(database)
        assert len(names) == 4  # category, description, price, rating
        assert all(name.startswith("prop_") for name in names)
        assert database.table("prop_category").num_rows == 2

    def test_property_partition_names_are_sanitised(self):
        database = Database()
        storage = PropertyPartitionedStorage()
        storage.load(database, [Triple("a", "has-auction", "b")])
        assert storage.table_names(database) == ["prop_has_auction"]

    def test_type_partitioning_separates_physical_types(self):
        database = Database()
        storage = TypePartitionedStorage()
        storage.load(database, TRIPLES)
        names = set(storage.table_names(database))
        assert names == {"triples_str", "triples_int", "triples_float"}
        assert database.table("triples_int").num_rows == 2
        assert database.table("triples_float").num_rows == 1

    def test_type_partitioned_match_unbound_object_covers_all_partitions(self):
        database = Database()
        storage = TypePartitionedStorage()
        storage.load(database, TRIPLES)
        result = storage.match(database, "p2", None, None)
        assert result.num_rows == 4

    def test_type_partitioned_numeric_lookup_only_touches_numeric_partition(self):
        database = Database()
        storage = TypePartitionedStorage()
        storage.load(database, TRIPLES)
        result = storage.match(database, None, "rating", 4.5)
        assert result.num_rows == 1

    def test_property_partitioned_unknown_property_is_empty(self):
        database = Database()
        storage = PropertyPartitionedStorage()
        storage.load(database, TRIPLES)
        assert storage.match(database, None, "colour", None).num_rows == 0


class TestFactory:
    def test_make_storage(self):
        assert isinstance(make_storage("single-table"), SingleTableStorage)
        assert isinstance(make_storage("property-partitioned"), PropertyPartitionedStorage)
        assert isinstance(make_storage("type-partitioned"), TypePartitionedStorage)

    def test_unknown_strategy(self):
        with pytest.raises(PartitioningError):
            make_storage("columnar-magic")
