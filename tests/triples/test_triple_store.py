"""Unit tests for the triple store."""

import pytest

from repro.errors import TripleStoreError
from repro.triples.triple_store import Triple, TripleStore


class TestLoading:
    def test_add_and_count(self):
        store = TripleStore()
        store.add("s", "p", "o")
        store.add("s", "q", 3, probability=0.5)
        assert store.num_triples == 2

    def test_add_all_accepts_tuples_and_triples(self):
        store = TripleStore()
        store.add_all(
            [
                ("a", "p", "b"),
                ("a", "q", "c", 0.7),
                Triple("d", "p", "e", 0.9),
            ]
        )
        assert store.num_triples == 3

    def test_add_all_rejects_malformed_tuples(self):
        store = TripleStore()
        with pytest.raises(TripleStoreError):
            store.add_all([("only", "two")])

    def test_properties_and_subjects(self, toy_store):
        assert set(toy_store.properties()) == {"type", "category", "description"}
        assert "product1" in toy_store.subjects()

    def test_lazy_loading_on_first_query(self):
        store = TripleStore()
        store.add("a", "p", "b")
        # match() without an explicit load() must trigger loading
        assert store.match(property_name="p").num_rows == 1


class TestMatching:
    def test_match_by_property(self, toy_store):
        matched = toy_store.match(property_name="category")
        assert matched.num_rows == 4

    def test_match_by_property_and_object(self, toy_store):
        matched = toy_store.match(property_name="category", obj="toy")
        subjects = set(matched.relation.column("subject").to_list())
        assert subjects == {"product1", "product3", "product4"}

    def test_match_by_subject(self, toy_store):
        matched = toy_store.match(subject="product2")
        assert matched.num_rows == 3

    def test_match_everything(self, toy_store):
        assert toy_store.match().num_rows == toy_store.num_triples

    def test_match_no_results(self, toy_store):
        assert toy_store.match(property_name="price").num_rows == 0

    def test_probabilities_preserved(self):
        store = TripleStore()
        store.add("a", "extracted", "b", probability=0.6)
        matched = store.match(property_name="extracted")
        assert list(matched.probabilities()) == [0.6]

    def test_select_property(self, toy_store):
        descriptions = toy_store.select_property("description")
        assert descriptions.value_columns == ["subject", "object"]
        assert descriptions.num_rows == 4

    def test_subjects_of_type(self, toy_store):
        products = toy_store.subjects_of_type("product")
        assert products.num_rows == 4
        assert products.value_columns == ["subject"]

    def test_objects_of(self, toy_store):
        assert toy_store.objects_of("product1", "category") == ["toy"]
        assert toy_store.objects_of("product1", "missing") == []


class TestRelationalIntegration:
    def test_as_relation(self, toy_store):
        relation = toy_store.as_relation()
        assert relation.schema.names == ["subject", "property", "object", "p"]
        assert relation.num_rows == toy_store.num_triples

    def test_register_docs_view(self, toy_store):
        toy_store.register_docs_view(
            "docs",
            filter_property="category",
            filter_value="toy",
            text_property="description",
        )
        docs = toy_store.database.table("docs")
        assert docs.schema.names == ["docID", "data", "p"]
        ids = set(docs.column("docID").to_list())
        assert ids == {"product1", "product3", "product4"}

    def test_docs_relation_does_not_leave_table_behind(self, toy_store):
        docs = toy_store.docs_relation(
            filter_property="category", filter_value="toy", text_property="description"
        )
        assert docs.num_rows == 3
        assert "__docs_tmp__" not in toy_store.database.table_names()

    def test_docs_view_propagates_probabilities(self):
        store = TripleStore()
        store.add("item1", "category", "toy", probability=0.5)
        store.add("item1", "description", "uncertain toy", probability=0.8)
        docs = store.docs_relation(
            filter_property="category", filter_value="toy", text_property="description"
        )
        assert docs.probabilities()[0] == pytest.approx(0.4)
