"""The rank-aware TOP kernel: partial sort, deterministic tie-breaking.

Regression coverage for the nondeterministic-tie-break bug: equal-probability
rows used to keep whatever intermediate order evaluation produced, so two
equivalent plans could rank them differently.  Ranked results now break ties
by the value columns, and ``top(k)`` is exactly a deterministic full sort
followed by a slice — computed with ``np.argpartition``, ties at the k-th
boundary included.
"""

import pytest

from repro.pra import operators as ops
from repro.pra.evaluator import PRAEvaluator
from repro.pra.plan import PraTop, PraValues
from repro.pra.relation import ProbabilisticRelation
from repro.errors import PRAError
from repro.relational.column import DataType
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema

SCHEMA = Schema([Field("node", DataType.STRING), Field("p", DataType.FLOAT)])


def prob_relation(rows):
    return ProbabilisticRelation(Relation.from_rows(SCHEMA, rows))


class TestTopKernel:
    def test_top_equals_sort_then_slice(self):
        relation = prob_relation(
            [("d", 0.4), ("a", 0.9), ("c", 0.4), ("b", 0.9), ("e", 0.1)]
        )
        for k in range(7):
            expected = relation.sorted_by_probability().relation.head(k)
            assert list(relation.top(k).rows()) == list(expected.rows())

    def test_ties_at_the_boundary_are_kept_deterministically(self):
        relation = prob_relation([("c", 0.5), ("a", 0.5), ("b", 0.5), ("d", 0.5)])
        assert relation.top(2).value_rows() == [("a",), ("b",)]

    def test_tie_break_is_independent_of_input_order(self):
        rows = [("c", 0.5), ("a", 0.5), ("b", 0.7)]
        forward = prob_relation(rows)
        backward = prob_relation(list(reversed(rows)))
        assert list(forward.top(3).rows()) == list(backward.top(3).rows())
        assert forward.top(3).value_rows() == [("b",), ("a",), ("c",)]

    def test_top_zero_and_oversized_k(self):
        relation = prob_relation([("a", 0.3), ("b", 0.6)])
        assert relation.top(0).num_rows == 0
        assert relation.top(10).value_rows() == [("b",), ("a",)]

    def test_empty_relation(self):
        relation = prob_relation([])
        assert relation.top(3).num_rows == 0

    def test_operator_rejects_negative_k(self):
        with pytest.raises(PRAError, match="non-negative"):
            ops.top(prob_relation([("a", 0.5)]), -1)

    def test_evaluator_runs_top_plans(self):
        plan = PraTop(
            PraValues(prob_relation([("a", 0.2), ("b", 0.8), ("c", 0.5)])), 2
        )
        result = PRAEvaluator(Database()).evaluate(plan)
        assert result.value_rows() == [("b",), ("c",)]


class TestSortedByProbability:
    def test_ties_sorted_by_value_columns(self):
        relation = prob_relation([("z", 0.5), ("m", 0.9), ("a", 0.5)])
        assert relation.sorted_by_probability().value_rows() == [
            ("m",),
            ("a",),
            ("z",),
        ]

    def test_tie_break_can_be_disabled(self):
        relation = prob_relation([("z", 0.5), ("a", 0.5)])
        stable = relation.sorted_by_probability(tie_break=False)
        assert stable.value_rows() == [("z",), ("a",)]  # input order preserved

    def test_ascending_order(self):
        relation = prob_relation([("a", 0.9), ("b", 0.1)])
        ascending = relation.sorted_by_probability(descending=False)
        assert ascending.value_rows() == [("b",), ("a",)]
