"""Unit tests for PRA assumptions and probabilistic relations."""

import numpy as np
import pytest

from repro.errors import ProbabilityError
from repro.pra.assumptions import Assumption
from repro.pra.relation import ProbabilisticRelation
from repro.relational.column import DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema


class TestAssumption:
    def test_parse(self):
        assert Assumption.parse("independent") is Assumption.INDEPENDENT
        assert Assumption.parse("DISJOINT") is Assumption.DISJOINT
        assert Assumption.parse(" subsumed ") is Assumption.SUBSUMED

    def test_parse_unknown(self):
        with pytest.raises(ProbabilityError):
            Assumption.parse("correlated")

    def test_independent_or(self):
        assert Assumption.INDEPENDENT.combine_or(0.5, 0.5) == pytest.approx(0.75)
        assert Assumption.INDEPENDENT.combine_or(1.0, 0.3) == pytest.approx(1.0)
        assert Assumption.INDEPENDENT.combine_or(0.0, 0.3) == pytest.approx(0.3)

    def test_independent_and(self):
        assert Assumption.INDEPENDENT.combine_and(0.5, 0.4) == pytest.approx(0.2)

    def test_disjoint_or_clamps_at_one(self):
        assert Assumption.DISJOINT.combine_or(0.5, 0.3) == pytest.approx(0.8)
        assert Assumption.DISJOINT.combine_or(0.8, 0.7) == pytest.approx(1.0)

    def test_disjoint_and_is_zero(self):
        assert Assumption.DISJOINT.combine_and(0.5, 0.5) == 0.0

    def test_subsumed(self):
        assert Assumption.SUBSUMED.combine_or(0.3, 0.6) == pytest.approx(0.6)
        assert Assumption.SUBSUMED.combine_and(0.3, 0.6) == pytest.approx(0.3)

    def test_combine_or_many(self):
        result = Assumption.INDEPENDENT.combine_or_many([0.5, 0.5, 0.5])
        assert result == pytest.approx(1 - 0.5**3)
        assert Assumption.DISJOINT.combine_or_many([]) == 0.0


def make_prob_relation(rows):
    schema = Schema([Field("node", DataType.STRING), Field("p", DataType.FLOAT)])
    return ProbabilisticRelation(Relation.from_rows(schema, rows))


class TestProbabilisticRelation:
    def test_requires_trailing_p_column(self):
        schema = Schema([Field("p", DataType.FLOAT), Field("node", DataType.STRING)])
        relation = Relation.from_rows(schema, [(1.0, "a")])
        with pytest.raises(ProbabilityError):
            ProbabilisticRelation(relation)

    def test_requires_float_p(self):
        schema = Schema([Field("node", DataType.STRING), Field("p", DataType.INT)])
        relation = Relation.from_rows(schema, [("a", 1)])
        with pytest.raises(ProbabilityError):
            ProbabilisticRelation(relation)

    def test_rejects_probabilities_outside_unit_interval(self):
        with pytest.raises(ProbabilityError):
            make_prob_relation([("a", 1.5)])
        with pytest.raises(ProbabilityError):
            make_prob_relation([("a", -0.1)])

    def test_lift_appends_p_column(self):
        schema = Schema([Field("node", DataType.STRING)])
        relation = Relation.from_rows(schema, [("a",), ("b",)])
        lifted = ProbabilisticRelation.lift(relation)
        assert lifted.schema.names == ["node", "p"]
        assert list(lifted.probabilities()) == [1.0, 1.0]

    def test_lift_with_custom_probability(self):
        schema = Schema([Field("node", DataType.STRING)])
        relation = Relation.from_rows(schema, [("a",)])
        lifted = ProbabilisticRelation.lift(relation, 0.25)
        assert list(lifted.probabilities()) == [0.25]

    def test_lift_invalid_probability(self):
        schema = Schema([Field("node", DataType.STRING)])
        relation = Relation.from_rows(schema, [("a",)])
        with pytest.raises(ProbabilityError):
            ProbabilisticRelation.lift(relation, 2.0)

    def test_lift_is_noop_for_probabilistic_relation(self):
        relation = make_prob_relation([("a", 0.4)]).relation
        lifted = ProbabilisticRelation.lift(relation)
        assert list(lifted.probabilities()) == [0.4]

    def test_from_rows(self):
        relation = ProbabilisticRelation.from_rows(
            ["subject", "object"], [DataType.STRING, DataType.STRING], [("a", "b", 0.5)]
        )
        assert relation.value_columns == ["subject", "object"]
        assert list(relation.probabilities()) == [0.5]

    def test_value_columns_and_rows(self):
        relation = make_prob_relation([("a", 0.5), ("b", 0.7)])
        assert relation.value_columns == ["node"]
        assert relation.value_rows() == [("a",), ("b",)]
        assert relation.num_rows == 2

    def test_with_probabilities(self):
        relation = make_prob_relation([("a", 0.5), ("b", 0.7)])
        updated = relation.with_probabilities(np.array([0.1, 0.2]))
        assert list(updated.probabilities()) == pytest.approx([0.1, 0.2])
        # original is unchanged
        assert list(relation.probabilities()) == pytest.approx([0.5, 0.7])

    def test_scaled(self):
        relation = make_prob_relation([("a", 0.5)])
        assert list(relation.scaled(0.5).probabilities()) == pytest.approx([0.25])

    def test_scaled_negative_rejected(self):
        with pytest.raises(ProbabilityError):
            make_prob_relation([("a", 0.5)]).scaled(-1.0)

    def test_sorted_and_top(self):
        relation = make_prob_relation([("a", 0.2), ("b", 0.9), ("c", 0.5)])
        ordered = relation.sorted_by_probability()
        assert ordered.relation.column("node").to_list() == ["b", "c", "a"]
        assert relation.top(2).relation.column("node").to_list() == ["b", "c"]

    def test_equality(self):
        assert make_prob_relation([("a", 0.5)]) == make_prob_relation([("a", 0.5)])
        assert make_prob_relation([("a", 0.5)]) != make_prob_relation([("a", 0.6)])
