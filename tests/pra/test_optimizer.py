"""The PRA plan optimizer: rewrites fire and preserve probability semantics."""

import pytest

from repro.pra.assumptions import Assumption
from repro.pra.evaluator import PRAEvaluator
from repro.pra.expressions import PositionalRef
from repro.pra.optimizer import optimize_pra
from repro.pra.plan import (
    PraBayes,
    PraJoin,
    PraProject,
    PraScan,
    PraSelect,
    PraSubtract,
    PraTop,
    PraUnite,
    PraWeight,
)
from repro.relational.expressions import BinaryOp, Literal
from repro.triples import TripleStore

TRIPLES = [
    ("lot1", "material", "oak", 0.9),
    ("lot2", "material", "oak", 0.4),
    ("lot3", "material", "bronze", 0.8),
    ("lot1", "style", "antique", 0.7),
    ("lot3", "style", "antique", 0.3),
]


@pytest.fixture
def database():
    store = TripleStore()
    store.add_all(TRIPLES)
    store.load()
    return store.database


def predicate(position, value):
    return BinaryOp("=", PositionalRef(position), Literal(value))


def assert_equivalent(plan, database):
    """The optimized plan must produce exactly the original result."""
    evaluator = PRAEvaluator(database)
    original = evaluator.evaluate(plan)
    optimized_plan = optimize_pra(plan)
    optimized = evaluator.evaluate(optimized_plan)
    assert sorted(optimized.rows()) == sorted(original.rows())
    return optimized_plan


class TestRewrites:
    def test_selection_fusion(self, database):
        plan = PraSelect(
            PraSelect(PraScan("triples"), predicate(2, "material")),
            predicate(3, "oak"),
        )
        optimized = assert_equivalent(plan, database)
        assert isinstance(optimized, PraSelect)
        assert isinstance(optimized.child, PraScan)

    def test_weight_folding(self, database):
        plan = PraWeight(PraWeight(PraScan("triples"), 0.5), 0.4)
        optimized = assert_equivalent(plan, database)
        assert isinstance(optimized, PraWeight)
        assert optimized.factor == pytest.approx(0.2)
        assert isinstance(optimized.child, PraScan)

    def test_identity_weight_removed(self, database):
        plan = PraWeight(PraScan("triples"), 1.0)
        optimized = assert_equivalent(plan, database)
        assert isinstance(optimized, PraScan)

    def test_select_pushed_past_weight(self, database):
        plan = PraSelect(
            PraWeight(PraScan("triples"), 0.5), predicate(2, "material")
        )
        optimized = assert_equivalent(plan, database)
        assert isinstance(optimized, PraWeight)
        assert isinstance(optimized.child, PraSelect)

    def test_select_distributes_into_unite(self, database):
        plan = PraSelect(
            PraUnite(PraScan("triples"), PraScan("triples"), Assumption.INDEPENDENT),
            predicate(2, "style"),
        )
        optimized = assert_equivalent(plan, database)
        assert isinstance(optimized, PraUnite)
        assert isinstance(optimized.left, PraSelect)
        assert isinstance(optimized.right, PraSelect)

    def test_rules_compose_to_fixpoint(self, database):
        # select over weight over select: push + fuse in one pass
        plan = PraSelect(
            PraWeight(
                PraSelect(PraScan("triples"), predicate(2, "material")), 0.5
            ),
            predicate(3, "oak"),
        )
        optimized = assert_equivalent(plan, database)
        assert isinstance(optimized, PraWeight)
        assert isinstance(optimized.child, PraSelect)
        assert isinstance(optimized.child.child, PraScan)


class TestSemanticsPreserved:
    def test_join_subtree_rewritten(self, database):
        left = PraSelect(
            PraSelect(PraScan("triples"), predicate(2, "material")),
            predicate(3, "oak"),
        )
        right = PraSelect(PraScan("triples"), predicate(2, "style"))
        plan = PraProject(
            PraJoin(left, right, [(1, 1)], Assumption.INDEPENDENT),
            [1],
            Assumption.INDEPENDENT,
            output_names=["lot"],
        )
        assert_equivalent(plan, database)

    def test_subtract_preserved(self, database):
        oak = PraProject(
            PraSelect(PraScan("triples"), predicate(3, "oak")),
            [1],
            Assumption.INDEPENDENT,
            output_names=["lot"],
        )
        antique = PraProject(
            PraSelect(PraScan("triples"), predicate(3, "antique")),
            [1],
            Assumption.INDEPENDENT,
            output_names=["lot"],
        )
        assert_equivalent(PraSubtract(oak, antique), database)

    def test_projection_positions_untouched(self, database):
        plan = PraProject(
            PraSelect(
                PraSelect(PraScan("triples"), predicate(2, "material")),
                predicate(3, "oak"),
            ),
            [1, 3],
            Assumption.INDEPENDENT,
        )
        optimized = assert_equivalent(plan, database)
        assert isinstance(optimized, PraProject)
        assert optimized.positions == (1, 3)

    def test_fixpoint_terminates_on_already_optimal_plan(self, database):
        plan = PraSelect(PraScan("triples"), predicate(2, "material"))
        optimized = optimize_pra(plan)
        assert optimized.fingerprint() == plan.fingerprint()

    def test_udf_predicate_is_not_fused(self, database):
        # a UDF can raise value-dependently, so it must only see the rows the
        # inner selection lets through — fusion would evaluate it everywhere
        from repro.relational.expressions import FunctionCall

        udf_predicate = BinaryOp(
            ">", FunctionCall("length", [PositionalRef(3)]), Literal(2)
        )
        plan = PraSelect(
            PraSelect(PraScan("triples"), predicate(2, "material")), udf_predicate
        )
        optimized = optimize_pra(plan)
        assert isinstance(optimized, PraSelect)
        assert isinstance(optimized.child, PraSelect)  # still two selections

    def test_udf_predicate_not_distributed_into_unite(self, database):
        from repro.relational.expressions import FunctionCall

        udf_predicate = BinaryOp(
            ">", FunctionCall("length", [PositionalRef(3)]), Literal(2)
        )
        plan = PraSelect(
            PraUnite(PraScan("triples"), PraScan("triples"), Assumption.INDEPENDENT),
            udf_predicate,
        )
        optimized = optimize_pra(plan)
        assert isinstance(optimized, PraSelect)
        assert isinstance(optimized.child, PraUnite)


def _project_nodes(child):
    """Project onto the subject column — a provably duplicate-free side."""
    return PraProject(child, [1], Assumption.INDEPENDENT, output_names=["node"])


class TestTopPushdown:
    def test_nested_tops_absorb(self, database):
        plan = PraTop(PraTop(PraScan("triples"), 2), 4)
        optimized = assert_equivalent(plan, database)
        assert isinstance(optimized, PraTop)
        assert optimized.k == 2
        assert isinstance(optimized.child, PraScan)

    def test_top_pushed_past_positive_weight(self, database):
        plan = PraTop(PraWeight(PraScan("triples"), 0.5), 2)
        optimized = assert_equivalent(plan, database)
        assert isinstance(optimized, PraWeight)
        assert isinstance(optimized.child, PraTop)
        assert optimized.child.k == 2

    def test_top_not_pushed_past_zero_weight(self, database):
        # f = 0 collapses all probabilities; the original top-k was chosen
        # before the collapse, the pushed one after — they differ
        plan = PraTop(PraWeight(PraScan("triples"), 0.0), 2)
        optimized = assert_equivalent(plan, database)
        assert isinstance(optimized, PraTop)
        assert isinstance(optimized.child, PraWeight)

    def test_top_pushed_into_subsumed_unite_with_distinct_sides(self, database):
        plan = PraTop(
            PraUnite(
                _project_nodes(PraScan("triples")),
                _project_nodes(PraScan("triples")),
                Assumption.SUBSUMED,
            ),
            2,
        )
        optimized = assert_equivalent(plan, database)
        assert isinstance(optimized, PraTop)
        unite = optimized.child
        assert isinstance(unite, PraUnite)
        assert isinstance(unite.left, PraTop) and unite.left.k == 2
        assert isinstance(unite.right, PraTop) and unite.right.k == 2

    @pytest.mark.parametrize(
        "assumption", [Assumption.INDEPENDENT, Assumption.DISJOINT]
    )
    def test_top_not_pushed_into_combining_unites(self, database, assumption):
        # under independent/disjoint merges the combined probability exceeds
        # either input: a tuple below k on both sides can reach the global
        # top-k, so pruning the sides would change the answer
        plan = PraTop(
            PraUnite(
                _project_nodes(PraScan("triples")),
                _project_nodes(PraScan("triples")),
                assumption,
            ),
            2,
        )
        optimized = assert_equivalent(plan, database)
        assert isinstance(optimized, PraTop)
        assert isinstance(optimized.child, PraUnite)
        assert not isinstance(optimized.child.left, PraTop)
        assert not isinstance(optimized.child.right, PraTop)

    def test_top_not_pushed_into_unite_with_multiset_sides(self, database):
        # a scan can emit duplicate value-tuples; k duplicates of one strong
        # tuple would crowd every other group out of the pruned side
        plan = PraTop(
            PraUnite(PraScan("triples"), PraScan("triples"), Assumption.SUBSUMED), 2
        )
        optimized = assert_equivalent(plan, database)
        assert isinstance(optimized, PraTop)
        assert isinstance(optimized.child, PraUnite)
        assert not isinstance(optimized.child.left, PraTop)

    def test_top_stops_above_bayes_subtract_select_project_join(self, database):
        nodes = _project_nodes(PraScan("triples"))
        blocked = [
            PraBayes(PraScan("triples"), [1]),
            PraSubtract(nodes, _project_nodes(PraScan("triples"))),
            PraSelect(PraScan("triples"), predicate(2, "material")),
            nodes,
            PraJoin(nodes, _project_nodes(PraScan("triples")), [(1, 1)]),
        ]
        for child in blocked:
            optimized = assert_equivalent(PraTop(child, 2), database)
            assert isinstance(optimized, PraTop)
            assert type(optimized.child) is type(child)

    def test_independent_unite_counterexample_semantics(self):
        # k=1, a = {u:0.6, t:0.5}, b = {v:0.6, t:0.5}: the independent union
        # ranks t first (0.75) although t is in neither side's top-1 — the
        # exact case the pushdown guard exists for
        from repro.pra.relation import ProbabilisticRelation
        from repro.relational.column import DataType
        from repro.relational.relation import Relation
        from repro.relational.schema import Field, Schema
        from repro.pra.plan import PraValues
        from repro.relational.database import Database

        schema = Schema([Field("node", DataType.STRING), Field("p", DataType.FLOAT)])

        def values(rows):
            return PraValues(ProbabilisticRelation(Relation.from_rows(schema, rows)))

        plan = PraTop(
            PraUnite(
                values([("u", 0.6), ("t", 0.5)]),
                values([("v", 0.6), ("t", 0.5)]),
                Assumption.INDEPENDENT,
            ),
            1,
        )
        evaluator = PRAEvaluator(Database())
        for candidate in (plan, optimize_pra(plan)):
            result = evaluator.evaluate(candidate)
            assert result.value_rows() == [("t",)]
            assert result.probabilities()[0] == pytest.approx(0.75)
