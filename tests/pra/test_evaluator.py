"""Unit tests for PRA plan construction and evaluation."""

import pytest

from repro.errors import PRAError
from repro.pra.assumptions import Assumption
from repro.pra.evaluator import PRAEvaluator
from repro.pra.expressions import PositionalRef, positional
from repro.pra.plan import (
    PraBayes,
    PraJoin,
    PraProject,
    PraScan,
    PraSelect,
    PraSubtract,
    PraUnite,
    PraValues,
    PraWeight,
)
from repro.pra.relation import ProbabilisticRelation
from repro.relational.column import DataType
from repro.relational.database import Database
from repro.relational.expressions import Literal
from repro.relational.schema import Field, Schema


@pytest.fixture
def db():
    database = Database()
    schema = Schema(
        [
            Field("subject", DataType.STRING),
            Field("property", DataType.STRING),
            Field("object", DataType.STRING),
        ]
    )
    database.create_table_from_rows(
        "triples",
        schema,
        [
            ("product1", "category", "toy"),
            ("product1", "description", "wooden train set"),
            ("product2", "category", "book"),
            ("product2", "description", "history of trains"),
            ("product3", "category", "toy"),
            ("product3", "description", "plastic toy car"),
        ],
    )
    prob_schema = Schema(
        [Field("node", DataType.STRING), Field("p", DataType.FLOAT)]
    )
    database.create_table_from_rows(
        "ranked_nodes", prob_schema, [("product1", 0.8), ("product3", 0.4)]
    )
    return database


@pytest.fixture
def evaluator(db):
    return PRAEvaluator(db)


class TestScansAndValues:
    def test_scan_lifts_plain_tables(self, evaluator):
        result = evaluator.evaluate(PraScan("triples"))
        assert result.schema.names[-1] == "p"
        assert set(result.probabilities()) == {1.0}

    def test_scan_preserves_existing_probabilities(self, evaluator):
        result = evaluator.evaluate(PraScan("ranked_nodes"))
        assert sorted(result.probabilities()) == pytest.approx([0.4, 0.8])

    def test_values_node(self, evaluator):
        relation = ProbabilisticRelation.from_rows(
            ["node"], [DataType.STRING], [("x", 0.5)]
        )
        result = evaluator.evaluate(PraValues(relation, label="inline"))
        assert result.num_rows == 1


class TestOperatorsThroughPlans:
    def test_select_project_join(self, evaluator):
        """The paper's docs view: toy products joined with their descriptions."""
        plan = PraProject(
            PraJoin(
                PraSelect(
                    PraScan("triples"),
                    PositionalRef(2).eq(Literal("category")).and_(
                        PositionalRef(3).eq(Literal("toy"))
                    ),
                ),
                PraSelect(PraScan("triples"), PositionalRef(2).eq(Literal("description"))),
                [(1, 1)],
            ),
            [1, 6],
            output_names=["docID", "data"],
        )
        result = evaluator.evaluate(plan)
        docs = dict(
            zip(
                result.relation.column("docID").to_list(),
                result.relation.column("data").to_list(),
            )
        )
        assert docs == {
            "product1": "wooden train set",
            "product3": "plastic toy car",
        }
        assert list(result.probabilities()) == pytest.approx([1.0, 1.0])

    def test_weight_and_unite(self, evaluator):
        left = PraWeight(PraScan("ranked_nodes"), 0.5)
        right = PraWeight(PraScan("ranked_nodes"), 0.5)
        plan = PraUnite(left, right, Assumption.DISJOINT)
        result = evaluator.evaluate(plan)
        values = dict(zip(result.relation.column("node").to_list(), result.probabilities()))
        assert values["product1"] == pytest.approx(0.8)
        assert values["product3"] == pytest.approx(0.4)

    def test_subtract(self, evaluator):
        plan = PraSubtract(PraScan("ranked_nodes"), PraScan("ranked_nodes"))
        result = evaluator.evaluate(plan)
        values = dict(zip(result.relation.column("node").to_list(), result.probabilities()))
        assert values["product1"] == pytest.approx(0.8 * 0.2)

    def test_bayes(self, evaluator):
        plan = PraBayes(PraScan("ranked_nodes"), [])
        result = evaluator.evaluate(plan)
        assert sum(result.probabilities()) == pytest.approx(1.0)

    def test_positional_out_of_range(self, evaluator):
        plan = PraProject(PraScan("ranked_nodes"), [5])
        with pytest.raises(PRAError):
            evaluator.evaluate(plan)

    def test_unknown_node_type(self, evaluator):
        class FakePlan:
            pass

        with pytest.raises(PRAError):
            evaluator.evaluate(FakePlan())


class TestPlanIntrospection:
    def test_describe_mentions_operators(self):
        plan = PraProject(
            PraJoin(PraScan("a"), PraScan("b"), [(1, 1)]),
            [1],
            Assumption.INDEPENDENT,
        )
        description = plan.describe()
        assert "PROJECT" in description
        assert "JOIN" in description
        assert "Scan(a)" in description

    def test_fingerprints_distinguish_plans(self):
        first = PraSelect(PraScan("t"), PositionalRef(1).eq(Literal("a")))
        second = PraSelect(PraScan("t"), PositionalRef(1).eq(Literal("b")))
        assert first.fingerprint() != second.fingerprint()

    def test_projection_requires_positions(self):
        with pytest.raises(PRAError):
            PraProject(PraScan("t"), [])

    def test_join_requires_conditions(self):
        with pytest.raises(PRAError):
            PraJoin(PraScan("a"), PraScan("b"), [])


class TestPositionalExpressions:
    def test_positional_shorthand(self):
        ref = positional(2)
        assert ref.position == 2
        assert ref.to_sql() == "$2"

    def test_positional_must_be_one_based(self):
        from repro.errors import ExpressionError

        with pytest.raises(ExpressionError):
            PositionalRef(0)

    def test_positional_skips_probability_column(self, db):
        relation = db.table("ranked_nodes")
        ref = PositionalRef(1)
        column = ref.evaluate(relation, db.functions)
        assert column.to_list() == ["product1", "product3"]

    def test_positional_out_of_range_error(self, db):
        from repro.errors import ExpressionError

        relation = db.table("ranked_nodes")
        with pytest.raises(ExpressionError):
            PositionalRef(3).evaluate(relation, db.functions)
