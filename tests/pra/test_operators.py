"""Unit tests for the probabilistic relational algebra operators."""

import pytest

from repro.errors import PRAError, ProbabilityError
from repro.pra import operators as ops
from repro.pra.assumptions import Assumption
from repro.pra.expressions import PositionalRef
from repro.pra.relation import ProbabilisticRelation
from repro.relational.column import DataType
from repro.relational.expressions import col, lit
from repro.relational.functions import default_registry
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema


def prob_relation(columns, rows):
    fields = [Field(name, dtype) for name, dtype in columns]
    fields.append(Field("p", DataType.FLOAT))
    return ProbabilisticRelation(Relation.from_rows(Schema(fields), rows))


@pytest.fixture
def functions():
    return default_registry()


@pytest.fixture
def triples():
    return prob_relation(
        [("subject", DataType.STRING), ("property", DataType.STRING), ("object", DataType.STRING)],
        [
            ("p1", "category", "toy", 1.0),
            ("p1", "description", "wooden train", 0.9),
            ("p2", "category", "book", 1.0),
            ("p2", "description", "train history", 0.8),
        ],
    )


class TestSelect:
    def test_keeps_probabilities(self, triples, functions):
        result = ops.select(triples, col("property").eq(lit("description")), functions)
        assert result.num_rows == 2
        assert list(result.probabilities()) == pytest.approx([0.9, 0.8])

    def test_positional_predicate(self, triples, functions):
        predicate = PositionalRef(2).eq(lit("category"))
        result = ops.select(triples, predicate, functions)
        assert result.num_rows == 2

    def test_non_boolean_predicate_rejected(self, triples, functions):
        with pytest.raises(PRAError):
            ops.select(triples, col("subject"), functions)

    def test_empty_input(self, functions):
        empty = prob_relation([("x", DataType.STRING)], [])
        assert ops.select(empty, col("x").eq(lit("a")), functions).num_rows == 0


class TestProject:
    def test_duplicate_merging_independent(self):
        relation = prob_relation(
            [("node", DataType.STRING), ("extra", DataType.STRING)],
            [("a", "x", 0.5), ("a", "y", 0.5), ("b", "z", 0.3)],
        )
        result = ops.project(relation, ["node"], Assumption.INDEPENDENT)
        values = dict(zip(result.relation.column("node").to_list(), result.probabilities()))
        assert values["a"] == pytest.approx(0.75)
        assert values["b"] == pytest.approx(0.3)

    def test_duplicate_merging_disjoint(self):
        relation = prob_relation(
            [("node", DataType.STRING), ("extra", DataType.STRING)],
            [("a", "x", 0.5), ("a", "y", 0.4)],
        )
        result = ops.project(relation, ["node"], Assumption.DISJOINT)
        assert result.probabilities()[0] == pytest.approx(0.9)

    def test_output_renaming(self, triples):
        result = ops.project(
            triples, ["subject", "object"], output_names=["docID", "data"]
        )
        assert result.value_columns == ["docID", "data"]

    def test_projection_of_probability_column_rejected(self, triples):
        with pytest.raises(PRAError):
            ops.project(triples, ["p"])

    def test_output_names_length_mismatch(self, triples):
        with pytest.raises(PRAError):
            ops.project(triples, ["subject"], output_names=["a", "b"])


class TestJoin:
    def test_independent_join_multiplies(self, triples):
        categories = prob_relation(
            [("subject", DataType.STRING)], [("p1", 0.5), ("p2", 1.0)]
        )
        result = ops.join(categories, triples, [("subject", "subject")])
        for row in result.relation.to_dicts():
            assert 0 < row["p"] <= 1.0
        p1_rows = [row for row in result.relation.to_dicts() if row["subject"] == "p1"]
        assert any(row["p"] == pytest.approx(0.5 * 0.9) for row in p1_rows)

    def test_join_renames_clashing_columns(self, triples):
        result = ops.join(triples, triples, [("subject", "subject")])
        assert "subject_right" in result.schema.names

    def test_subsumed_join_takes_minimum(self):
        left = prob_relation([("k", DataType.STRING)], [("a", 0.3)])
        right = prob_relation([("k", DataType.STRING)], [("a", 0.8)])
        result = ops.join(left, right, [("k", "k")], Assumption.SUBSUMED)
        assert result.probabilities()[0] == pytest.approx(0.3)

    def test_disjoint_join_rejected(self):
        left = prob_relation([("k", DataType.STRING)], [("a", 0.3)])
        with pytest.raises(PRAError):
            ops.join(left, left, [("k", "k")], Assumption.DISJOINT)

    def test_no_matches(self):
        left = prob_relation([("k", DataType.STRING)], [("a", 0.3)])
        right = prob_relation([("k", DataType.STRING)], [("b", 0.8)])
        assert ops.join(left, right, [("k", "k")]).num_rows == 0


class TestUnite:
    def test_union_merges_common_tuples(self):
        left = prob_relation([("node", DataType.STRING)], [("a", 0.5), ("b", 0.2)])
        right = prob_relation([("node", DataType.STRING)], [("a", 0.5), ("c", 0.9)])
        result = ops.unite(left, right, Assumption.INDEPENDENT)
        values = dict(zip(result.relation.column("node").to_list(), result.probabilities()))
        assert values["a"] == pytest.approx(0.75)
        assert values["b"] == pytest.approx(0.2)
        assert values["c"] == pytest.approx(0.9)

    def test_disjoint_union_adds(self):
        left = prob_relation([("node", DataType.STRING)], [("a", 0.4)])
        right = prob_relation([("node", DataType.STRING)], [("a", 0.3)])
        result = ops.unite(left, right, Assumption.DISJOINT)
        assert result.probabilities()[0] == pytest.approx(0.7)

    def test_arity_mismatch_rejected(self):
        left = prob_relation([("node", DataType.STRING)], [("a", 0.4)])
        right = prob_relation(
            [("node", DataType.STRING), ("other", DataType.STRING)], [("a", "x", 0.3)]
        )
        with pytest.raises(PRAError):
            ops.unite(left, right)


class TestSubtract:
    def test_complement_weighting(self):
        left = prob_relation([("node", DataType.STRING)], [("a", 0.8), ("b", 0.5)])
        right = prob_relation([("node", DataType.STRING)], [("a", 0.5)])
        result = ops.subtract(left, right)
        values = dict(zip(result.relation.column("node").to_list(), result.probabilities()))
        assert values["a"] == pytest.approx(0.4)
        assert values["b"] == pytest.approx(0.5)

    def test_arity_mismatch_rejected(self):
        left = prob_relation([("node", DataType.STRING)], [("a", 0.8)])
        right = prob_relation(
            [("node", DataType.STRING), ("x", DataType.STRING)], [("a", "y", 0.5)]
        )
        with pytest.raises(PRAError):
            ops.subtract(left, right)


class TestBayes:
    def test_global_normalisation(self):
        relation = prob_relation([("node", DataType.STRING)], [("a", 0.4), ("b", 0.4)])
        result = ops.bayes(relation, [])
        assert list(result.probabilities()) == pytest.approx([0.5, 0.5])

    def test_per_group_normalisation(self):
        relation = prob_relation(
            [("group", DataType.STRING), ("node", DataType.STRING)],
            [("g1", "a", 0.2), ("g1", "b", 0.2), ("g2", "c", 0.5)],
        )
        result = ops.bayes(relation, ["group"])
        assert list(result.probabilities()) == pytest.approx([0.5, 0.5, 1.0])

    def test_zero_total_group(self):
        relation = prob_relation([("node", DataType.STRING)], [("a", 0.0)])
        assert list(ops.bayes(relation, []).probabilities()) == [0.0]

    def test_empty_relation(self):
        relation = prob_relation([("node", DataType.STRING)], [])
        assert ops.bayes(relation, []).num_rows == 0


class TestWeight:
    def test_scaling(self):
        relation = prob_relation([("node", DataType.STRING)], [("a", 0.8)])
        assert ops.weight(relation, 0.5).probabilities()[0] == pytest.approx(0.4)

    def test_weight_outside_unit_interval_rejected(self):
        relation = prob_relation([("node", DataType.STRING)], [("a", 0.8)])
        with pytest.raises(ProbabilityError):
            ops.weight(relation, 1.5)
        with pytest.raises(ProbabilityError):
            ops.weight(relation, -0.1)
