"""Integration tests: the paper's scenarios end to end.

These tests exercise the full stack — workload generators → triple store →
strategies / SpinQL / keyword search — the way the examples and benchmarks
do, but at a miniature scale so they stay fast.
"""

import pytest

from repro.ir import KeywordSearchEngine
from repro.ir.query_expansion import SynonymExpander
from repro.spinql import evaluate
from repro.strategy import StrategyExecutor, build_auction_strategy, build_toy_strategy
from repro.triples import TripleStore
from repro.workloads import (
    generate_collection,
    generate_queries,
)


class TestToyScenarioEndToEnd:
    """Section 2: keyword search restricted to descriptions of 'toy' products."""

    def test_generated_catalog_through_strategy(self, product_workload):
        store = TripleStore()
        store.add_all(product_workload.triples)
        store.load()
        toy_products = set(product_workload.products_in_category("toy"))
        assert toy_products, "the generated catalog must contain toy products"
        query_product = sorted(toy_products)[0]
        query = " ".join(product_workload.descriptions[query_product].split()[:3])

        run = StrategyExecutor(store).run(build_toy_strategy(), query=query)
        result_nodes = [node for node, _ in run.top(10)]
        assert result_nodes, "the strategy must return results"
        assert set(result_nodes) <= toy_products
        assert query_product in result_nodes

    def test_spinql_docs_view_equals_strategy_sub_collection(self, product_workload):
        store = TripleStore()
        store.add_all(product_workload.triples)
        store.load()
        source = """
        docs = PROJECT [$1 AS docID, $6 AS data] (
          JOIN INDEPENDENT [$1=$1] (
            SELECT [$2="category" and $3="toy"] (triples),
            SELECT [$2="description"] (triples) ) );
        """
        docs = evaluate(source, store.database)
        expected = set(product_workload.products_in_category("toy"))
        assert set(docs.relation.column("docID").to_list()) == expected

    def test_keyword_search_on_registered_docs_view(self, product_workload):
        store = TripleStore()
        store.add_all(product_workload.triples)
        store.load()
        store.register_docs_view(
            "toy_docs",
            filter_property="category",
            filter_value="toy",
            text_property="description",
        )
        engine = KeywordSearchEngine(store.database, "toy_docs", id_column="docID")
        toy_products = product_workload.products_in_category("toy")
        query = product_workload.descriptions[toy_products[0]].split()[0]
        result = engine.search(query)
        assert len(result.ranked) >= 1
        assert set(result.ranked.doc_ids) <= set(toy_products)


class TestAuctionScenarioEndToEnd:
    """Section 3: rank auction lots by own and auction descriptions."""

    @pytest.fixture(scope="class")
    def loaded_store(self, auction_workload):
        store = TripleStore()
        store.add_all(auction_workload.triples)
        store.load()
        return store

    def test_full_strategy_returns_lots_only(self, loaded_store, auction_workload):
        query = " ".join(
            auction_workload.lot_descriptions[auction_workload.lot_ids[0]].split()[:2]
        )
        run = StrategyExecutor(loaded_store).run(build_auction_strategy(), query=query)
        nodes = [node for node, _ in run.top(20)]
        assert nodes
        assert all(node in auction_workload.lot_ids for node in nodes)

    def test_auction_branch_recalls_sibling_lots(self, loaded_store, auction_workload):
        # pick terms that occur in this auction's description but in no other
        # auction's, so the right branch clearly prefers this auction's lots
        auction = auction_workload.auction_ids[0]
        own_terms = auction_workload.auction_descriptions[auction].split()
        other_terms = set()
        for other in auction_workload.auction_ids[1:]:
            other_terms.update(auction_workload.auction_descriptions[other].split())
        distinctive = [term for term in own_terms if term not in other_terms]
        assert distinctive, "the synthetic auctions must have distinctive terms"
        query = " ".join(distinctive[:2])
        run = StrategyExecutor(loaded_store).run(
            build_auction_strategy(lot_weight=0.2, auction_weight=0.8), query=query
        )
        returned = {node for node, _ in run.top(50)}
        siblings = set(auction_workload.lots_in_auction(auction))
        assert returned & siblings

    def test_repeated_queries_get_faster_after_warmup(self, loaded_store, auction_workload):
        strategy = build_auction_strategy()
        executor = StrategyExecutor(loaded_store)
        queries = [
            " ".join(auction_workload.lot_descriptions[lot].split()[:2])
            for lot in auction_workload.lot_ids[:4]
        ]
        cold = executor.run(strategy, query=queries[0]).elapsed_seconds
        warm = [executor.run(strategy, query=query).elapsed_seconds for query in queries[1:]]
        # the first run builds both on-demand indexes; later runs reuse them
        assert min(warm) < cold

    def test_query_expansion_increases_or_preserves_recall(self, loaded_store, auction_workload):
        lot = auction_workload.lot_ids[0]
        term = auction_workload.lot_descriptions[lot].split()[0]
        synonym = "zzsynonym"
        expander = SynonymExpander({synonym: [term]})
        plain = StrategyExecutor(loaded_store).run(build_auction_strategy(), query=synonym)
        expanded = StrategyExecutor(loaded_store).run(
            build_auction_strategy(expander=expander), query=synonym
        )
        assert expanded.result.num_rows >= plain.result.num_rows
        assert expanded.result.num_rows > 0


class TestKeywordSearchScaling:
    """Section 2.1: hot (materialised statistics) beats cold, and results agree."""

    def test_hot_vs_cold_and_pipeline_agreement(self):
        collection = generate_collection(150, average_length=30, seed=7)
        database_docs = collection.to_relation()

        from repro.relational.database import Database

        db = Database()
        db.create_table("docs", database_docs)
        queries = generate_queries(collection.vocabulary, 5, terms_per_query=3, seed=3)

        direct = KeywordSearchEngine(db, "docs", pipeline="direct")
        relational = KeywordSearchEngine(db, "docs", pipeline="relational")
        for query in queries:
            direct_top = [doc for doc, _ in direct.search(query).top(10)]
            relational_top = [doc for doc, _ in relational.search(query).top(10)]
            assert direct_top == relational_top

    def test_cache_makes_second_statistics_build_cheap(self):
        import time

        collection = generate_collection(80, average_length=20, seed=11)
        from repro.relational.database import Database

        db = Database()
        db.create_table("docs", collection.to_relation())
        engine = KeywordSearchEngine(db, "docs", pipeline="relational")

        started = time.perf_counter()
        engine.warm_up()
        cold = time.perf_counter() - started

        engine.invalidate()
        started = time.perf_counter()
        engine.warm_up()
        hot = time.perf_counter() - started
        # the second build reuses the database's materialised views
        assert hot < cold


class TestProductCatalogAcrossStorageLayouts:
    def test_same_strategy_results_for_all_layouts(self, product_workload):
        from repro.triples.partitioning import make_storage

        results = {}
        toy_products = product_workload.products_in_category("toy")
        query = product_workload.descriptions[toy_products[0]].split()[0]
        for layout in ("single-table", "property-partitioned", "type-partitioned"):
            store = TripleStore(storage=make_storage(layout))
            store.add_all(product_workload.triples)
            store.load()
            run = StrategyExecutor(store).run(build_toy_strategy(), query=query)
            results[layout] = [node for node, _ in run.top(10)]
        assert results["single-table"] == results["property-partitioned"]
        assert results["single-table"] == results["type-partitioned"]
