"""Unit tests for collection statistics (fast builder and relational builder)."""

import numpy as np
import pytest

from repro.errors import IndexingError
from repro.ir.statistics import (
    RelationalStatisticsBuilder,
    build_statistics,
    statistics_from_relation,
)
from repro.relational.column import DataType
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.text.analyzers import StandardAnalyzer

DOCS = [
    (1, "a book about history"),
    (2, "a cake recipe book"),
    (3, "history of cakes and baking"),
]


class TestFastBuilder:
    def test_basic_counts(self):
        stats = build_statistics(DOCS)
        assert stats.num_docs == 3
        assert stats.total_terms == sum(len(text.split()) for _, text in DOCS)
        assert stats.average_doc_length == pytest.approx(stats.total_terms / 3)

    def test_doc_ids_preserved(self):
        stats = build_statistics(DOCS)
        assert stats.doc_ids == [1, 2, 3]

    def test_document_frequency(self):
        stats = build_statistics(DOCS)
        # statistics store analyzed (stemmed) terms: history -> histori, recipe -> recip
        assert stats.df("book") == 2
        assert stats.df("histori") == 2
        assert stats.df("recip") == 1
        assert stats.df("unknown") == 0

    def test_stemming_conflates_cake_and_cakes(self):
        stats = build_statistics(DOCS)
        # 'cake' (doc 2) and 'cakes' (doc 3) share the stem 'cake'
        assert stats.df("cake") == 2

    def test_postings_are_sorted_by_document(self):
        stats = build_statistics(DOCS)
        doc_indices, frequencies = stats.postings_for("book")
        assert list(doc_indices) == sorted(doc_indices)
        assert len(doc_indices) == len(frequencies) == 2

    def test_postings_for_unknown_term_is_empty(self):
        stats = build_statistics(DOCS)
        doc_indices, frequencies = stats.postings_for("zzz")
        assert len(doc_indices) == 0 and len(frequencies) == 0

    def test_term_frequencies(self):
        stats = build_statistics([(1, "train train train car")])
        _, frequencies = stats.postings_for("train")
        assert list(frequencies) == [3]

    def test_robertson_idf_matches_formula(self):
        stats = build_statistics(DOCS)
        df = stats.df("book")
        expected = np.log((3 - df + 0.5) / (df + 0.5))
        assert stats.robertson_idf("book") == pytest.approx(expected)

    def test_robertson_idf_can_be_negative(self):
        # a term present in more than half the documents gets a negative IDF,
        # exactly as the paper's SQL formula computes it
        stats = build_statistics([(1, "common"), (2, "common"), (3, "rare")])
        assert stats.robertson_idf("common") < 0

    def test_smoothed_idf_is_positive(self):
        stats = build_statistics(DOCS)
        assert stats.smoothed_idf("book") > 0
        assert stats.smoothed_idf("missing") == 0.0

    def test_collection_frequency(self):
        stats = build_statistics([(1, "train train"), (2, "train")])
        assert stats.collection_frequency("train") == 3

    def test_custom_analyzer(self):
        analyzer = StandardAnalyzer("none")
        stats = build_statistics([(1, "Running runs")], analyzer)
        assert stats.df("running") == 1
        assert stats.df("run") == 0

    def test_empty_document_contributes_zero_length(self):
        stats = build_statistics([(1, ""), (2, "one term here")])
        assert stats.num_docs == 2
        assert stats.doc_lengths[0] == 0


class TestRelationViews:
    def test_doc_len_relation(self):
        stats = build_statistics(DOCS)
        relation = stats.doc_len_relation()
        assert relation.schema.names == ["docID", "len"]
        lengths = {row["docID"]: row["len"] for row in relation.to_dicts()}
        assert lengths[1] == 4

    def test_termdict_relation_has_unique_terms(self):
        stats = build_statistics(DOCS)
        relation = stats.termdict_relation()
        terms = relation.column("term").to_list()
        assert len(terms) == len(set(terms)) == stats.num_terms

    def test_tf_relation_row_count(self):
        stats = build_statistics(DOCS)
        relation = stats.tf_relation()
        expected_rows = sum(len(postings[0]) for postings in stats.postings.values())
        assert relation.num_rows == expected_rows
        assert relation.schema.names == ["termID", "docID", "tf"]

    def test_idf_relation_matches_robertson_idf(self):
        stats = build_statistics(DOCS)
        relation = stats.idf_relation()
        term_by_id = {term_id: term for term, term_id in stats.term_ids.items()}
        for row in relation.to_dicts():
            assert row["idf"] == pytest.approx(stats.robertson_idf(term_by_id[row["termID"]]))


class TestStatisticsFromRelation:
    def test_from_relation(self):
        schema = Schema([Field("docID", DataType.INT), Field("data", DataType.STRING)])
        docs = Relation.from_rows(schema, DOCS)
        stats = statistics_from_relation(docs)
        assert stats.num_docs == 3

    def test_missing_columns_rejected(self):
        schema = Schema([Field("id", DataType.INT), Field("text", DataType.STRING)])
        docs = Relation.from_rows(schema, DOCS)
        with pytest.raises(IndexingError):
            statistics_from_relation(docs)

    def test_custom_column_names(self):
        schema = Schema([Field("id", DataType.INT), Field("text", DataType.STRING)])
        docs = Relation.from_rows(schema, DOCS)
        stats = statistics_from_relation(docs, id_column="id", text_column="text")
        assert stats.num_docs == 3


class TestRelationalBuilder:
    @pytest.fixture
    def db(self):
        database = Database()
        schema = Schema([Field("docID", DataType.INT), Field("data", DataType.STRING)])
        database.create_table_from_rows("docs", schema, DOCS)
        return database

    def test_matches_fast_builder(self, db):
        builder = RelationalStatisticsBuilder(db, "docs")
        relational = builder.materialize()
        fast = build_statistics(DOCS)
        assert relational.num_docs == fast.num_docs
        assert set(relational.term_ids) == set(fast.term_ids)
        for term in fast.term_ids:
            assert relational.df(term) == fast.df(term)
            assert relational.robertson_idf(term) == pytest.approx(fast.robertson_idf(term))
        assert sorted(relational.doc_lengths) == sorted(fast.doc_lengths)

    def test_views_are_registered(self, db):
        builder = RelationalStatisticsBuilder(db, "docs", prefix="docs_")
        builder.materialize()
        assert "docs_term_doc" in db.view_names()
        assert "docs_doc_len" in db.view_names()
        assert "docs_termdict" in db.view_names()

    def test_materialization_is_cached(self, db):
        builder = RelationalStatisticsBuilder(db, "docs")
        builder.materialize()
        hits_before = db.cache.statistics.hits
        builder.materialize()
        assert db.cache.statistics.hits > hits_before

    def test_view_sql_contains_paper_elements(self, db):
        builder = RelationalStatisticsBuilder(db, "docs")
        sql = builder.view_sql()
        assert "tokenize((" in sql["term_doc"]
        assert "stem(lcase(token), 'sb-english')" in sql["term_doc"]
        assert "count(*) AS len" in sql["doc_len"]
        assert "GROUP BY termID, docID" in sql["tf"].replace("\n", " ")

    def test_language_parameter_flows_into_sql(self, db):
        builder = RelationalStatisticsBuilder(db, "docs", language="dutch")
        assert "sb-dutch" in builder.view_sql()["term_doc"]
