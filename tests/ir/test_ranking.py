"""Unit tests for the ranking models."""

import numpy as np
import pytest

from repro.errors import RankingError
from repro.ir.ranking import BM25Model, BooleanModel, LanguageModel, TfIdfModel, get_model
from repro.ir.statistics import build_statistics

DOCS = [
    (1, "wooden train set for children"),
    (2, "history of trains and railways"),
    (3, "plastic toy car with remote control"),
    (4, "wooden toy blocks for toddlers, wooden craftsmanship"),
    (5, "cookbook with cake recipes"),
]


@pytest.fixture
def stats():
    return build_statistics(DOCS)


class TestBM25:
    def test_parameter_validation(self):
        with pytest.raises(RankingError):
            BM25Model(k1=-1)
        with pytest.raises(RankingError):
            BM25Model(b=1.5)

    def test_matching_documents_only(self, stats):
        ranked = BM25Model().rank(stats, ["wooden"])
        assert set(ranked.doc_ids) == {1, 4}

    def test_repeated_term_increases_score(self, stats):
        ranked = BM25Model(b=0.0).rank(stats, ["wooden"])
        scores = dict(ranked.as_pairs())
        # doc 4 contains 'wooden' twice, doc 1 once; with b=0 there is no
        # length normalisation so doc 4 must score higher
        assert scores[4] > scores[1]

    def test_saturation_bounds_tf_contribution(self, stats):
        # the saturated tf component is bounded by 1, so the score of a doc
        # for a single term is bounded by its idf
        model = BM25Model()
        ranked = model.rank(stats, ["wooden"])
        idf = abs(stats.robertson_idf("wooden"))
        assert all(abs(score) <= idf + 1e-9 for _, score in ranked.as_pairs())

    def test_length_normalisation_prefers_short_docs(self):
        # extra documents keep df below half the collection so the Robertson
        # IDF stays positive and length normalisation is the deciding factor
        docs = [
            (1, "train"),
            (2, "train " + "filler " * 30),
            (3, "other words entirely"),
            (4, "more unrelated text"),
            (5, "yet another document"),
        ]
        stats = build_statistics(docs)
        ranked = BM25Model(b=0.75).rank(stats, ["train"])
        scores = dict(ranked.as_pairs())
        assert scores[1] > scores[2]

    def test_multi_term_scores_are_summed(self, stats):
        single = dict(BM25Model().rank(stats, ["wooden"]).as_pairs())
        double = dict(BM25Model().rank(stats, ["wooden", "wooden"]).as_pairs())
        for doc_id, score in single.items():
            assert double[doc_id] == pytest.approx(2 * score)

    def test_top_k(self, stats):
        ranked = BM25Model().rank(stats, ["wooden", "toy", "train"], top_k=2)
        assert len(ranked) == 2

    def test_empty_query_or_collection(self, stats):
        assert len(BM25Model().rank(stats, [])) == 0
        empty = build_statistics([(1, "x")])
        assert len(BM25Model().rank(empty, ["missing"])) == 0

    def test_non_negative_idf_option(self):
        docs = [(1, "common"), (2, "common"), (3, "common rare")]
        stats = build_statistics(docs)
        default_scores = BM25Model().rank(stats, ["common"])
        clamped_scores = BM25Model(non_negative_idf=True).rank(stats, ["common"])
        assert all(score <= 0 for _, score in default_scores.as_pairs())
        assert all(score >= 0 for _, score in clamped_scores.as_pairs())

    def test_describe(self):
        description = BM25Model(k1=2.0, b=0.5).describe()
        assert description == {"model": "bm25", "k1": 2.0, "b": 0.5}


class TestTfIdf:
    def test_rare_term_scores_higher_than_common(self, stats):
        model = TfIdfModel()
        rare = dict(model.rank(stats, ["cookbook"]).as_pairs())
        common = dict(model.rank(stats, ["wooden"]).as_pairs())
        assert max(rare.values()) > max(common.values())

    def test_length_normalisation_toggle(self):
        docs = [(1, "train"), (2, "train " + "pad " * 20)]
        stats = build_statistics(docs)
        normalized = dict(TfIdfModel(length_normalized=True).rank(stats, ["train"]).as_pairs())
        raw = dict(TfIdfModel(length_normalized=False).rank(stats, ["train"]).as_pairs())
        assert normalized[1] > normalized[2]
        assert raw[1] == pytest.approx(raw[2])

    def test_scores_positive(self, stats):
        ranked = TfIdfModel().rank(stats, ["wooden", "train"])
        assert all(score > 0 for _, score in ranked.as_pairs())


class TestLanguageModel:
    def test_parameter_validation(self):
        with pytest.raises(RankingError):
            LanguageModel(smoothing="laplace")
        with pytest.raises(RankingError):
            LanguageModel(mu=0)
        with pytest.raises(RankingError):
            LanguageModel(smoothing="jelinek-mercer", lam=1.5)

    def test_dirichlet_prefers_doc_with_term(self, stats):
        ranked = LanguageModel().rank(stats, ["wooden"])
        assert set(ranked.doc_ids) == {1, 4}
        assert all(score > 0 for _, score in ranked.as_pairs())

    def test_jelinek_mercer(self, stats):
        ranked = LanguageModel(smoothing="jelinek-mercer", lam=0.3).rank(stats, ["train"])
        assert len(ranked) >= 1

    def test_higher_tf_scores_higher(self):
        docs = [(1, "train train train other"), (2, "train other filler words")]
        stats = build_statistics(docs)
        ranked = LanguageModel().rank(stats, ["train"])
        scores = dict(ranked.as_pairs())
        assert scores[1] > scores[2]


class TestBooleanModel:
    def test_counts_distinct_matching_terms(self, stats):
        ranked = BooleanModel().rank(stats, ["wooden", "train", "cookbook"])
        scores = dict(ranked.as_pairs())
        assert scores[1] == 2.0  # wooden + train
        assert scores[5] == 1.0  # cookbook only

    def test_term_repetition_in_doc_does_not_matter(self, stats):
        scores = dict(BooleanModel().rank(stats, ["wooden"]).as_pairs())
        assert scores[1] == scores[4] == 1.0


class TestRankAwareTopK:
    """top_k rank() — partial selection and threshold pruning — is exact."""

    MODELS = [
        BM25Model(),
        BM25Model(non_negative_idf=True),
        BooleanModel(),
        TfIdfModel(),
        LanguageModel(),
    ]
    QUERIES = [
        ["wooden"],
        ["wooden", "toy"],
        ["wooden", "train", "toy", "cake"],
        ["trains", "railways", "wooden", "wooden"],
    ]

    def test_top_k_matches_full_rank_slice_bitwise(self, stats):
        for model in self.MODELS:
            for terms in self.QUERIES:
                full = model.rank(stats, terms)
                for k in (1, 2, 3, 10):
                    pruned = model.rank(stats, terms, top_k=k)
                    assert pruned.doc_ids == full.doc_ids[:k], (model.name, terms, k)
                    # exactness contract: identical floats, not approximately
                    assert list(pruned.scores) == list(full.scores[:k])

    def test_boolean_upper_bound_enables_pruning(self, stats):
        assert BooleanModel().term_upper_bound(stats, "wooden") == 1.0

    def test_bm25_upper_bound_is_idf_or_disabled(self, stats):
        model = BM25Model()
        # 'wooden' is rare: positive idf bounds the contribution
        assert model.term_upper_bound(stats, "wooden") == pytest.approx(
            stats.robertson_idf("wooden")
        )
        # a term in most documents has negative Robertson idf: contributions
        # can be negative, so pruning must be disabled for it
        common = BM25Model()
        from repro.ir.statistics import build_statistics as _build

        dense = _build([(i, "wooden thing") for i in range(1, 6)])
        assert dense.robertson_idf("wooden") < 0
        assert common.term_upper_bound(dense, "wooden") is None
        assert BM25Model(non_negative_idf=True).term_upper_bound(dense, "wooden") == 0.0

    def test_top_k_zero_returns_empty(self, stats):
        ranked = BM25Model().rank(stats, ["wooden", "toy"], top_k=0)
        assert len(ranked) == 0


class TestRankedList:
    def test_sorted_descending(self, stats):
        ranked = BM25Model().rank(stats, ["wooden", "toy"])
        scores = [score for _, score in ranked.as_pairs()]
        assert scores == sorted(scores, reverse=True)

    def test_to_relation(self, stats):
        relation = BM25Model().rank(stats, ["wooden"]).to_relation()
        assert relation.schema.names == ["docID", "score"]

    def test_to_probabilities_max(self, stats):
        probabilities = TfIdfModel().rank(stats, ["wooden", "toy"]).to_probabilities()
        values = probabilities.scores
        assert values.max() == pytest.approx(1.0)
        assert np.all(values > 0) and np.all(values <= 1.0)

    def test_to_probabilities_sum(self, stats):
        probabilities = TfIdfModel().rank(stats, ["wooden", "toy"]).to_probabilities(method="sum")
        assert probabilities.scores.sum() == pytest.approx(1.0)

    def test_to_probabilities_handles_negative_scores(self):
        docs = [(1, "common"), (2, "common"), (3, "rare")]
        stats = build_statistics(docs)
        ranked = BM25Model().rank(stats, ["common"])
        probabilities = ranked.to_probabilities()
        assert np.all(probabilities.scores > 0)
        assert np.all(probabilities.scores <= 1.0)

    def test_to_probabilities_unknown_method(self, stats):
        ranked = BM25Model().rank(stats, ["wooden"])
        with pytest.raises(RankingError):
            ranked.to_probabilities(method="softmax")

    def test_empty_ranked_list_probabilities(self, stats):
        ranked = BM25Model().rank(stats, ["doesnotoccur"])
        assert len(ranked.to_probabilities()) == 0


class TestModelRegistry:
    def test_get_model_by_name(self):
        assert get_model("bm25").name == "bm25"
        assert get_model("tfidf").name == "tfidf"
        assert get_model("lm").name == "lm"
        assert get_model("boolean").name == "boolean"

    def test_get_model_passes_parameters(self):
        model = get_model("bm25", k1=2.0)
        assert model.k1 == 2.0

    def test_unknown_model(self):
        with pytest.raises(RankingError):
            get_model("pagerank")
