"""Unit tests for snippet generation and highlighting."""

import pytest

from repro.ir.snippets import SnippetGenerator
from repro.text.analyzers import StandardAnalyzer


@pytest.fixture
def generator():
    return SnippetGenerator(window_size=8)


class TestHighlighting:
    def test_query_terms_are_highlighted(self, generator):
        snippet = generator.snippet("wooden train", "a wooden train set for children")
        assert "**wooden**" in snippet.text
        assert "**train**" in snippet.text
        assert snippet.num_matches == 2

    def test_stemmed_matching_highlights_inflections(self, generator):
        # the query 'train' must highlight 'trains' because both stem to 'train'
        snippet = generator.snippet("train", "a history of trains and railways")
        assert "**trains**" in snippet.text

    def test_case_insensitive(self, generator):
        snippet = generator.snippet("wooden", "Wooden toys for everyone")
        assert "**Wooden**" in snippet.text

    def test_no_match_returns_document_prefix(self, generator):
        snippet = generator.snippet("zebra", "a wooden train set for children")
        assert snippet.num_matches == 0
        assert snippet.text.startswith("a wooden train")

    def test_custom_markers(self):
        generator = SnippetGenerator(highlight_prefix="<em>", highlight_suffix="</em>")
        snippet = generator.snippet("train", "a train ride")
        assert "<em>train</em>" in snippet.text

    def test_matched_terms_recorded_in_surface_form(self, generator):
        snippet = generator.snippet("train", "many trains run today")
        assert snippet.matched_terms == ["trains"]


class TestWindows:
    def test_window_centres_on_dense_match_region(self):
        generator = SnippetGenerator(window_size=6)
        filler = "filler " * 30
        text = filler + "antique clock in working order " + filler
        snippet = generator.snippet("antique clock", text)
        assert "**antique**" in snippet.text and "**clock**" in snippet.text
        # both ellipses present because the window sits in the middle
        assert snippet.text.startswith("...")
        assert snippet.text.endswith("...")

    def test_window_bounds_respected(self):
        generator = SnippetGenerator(window_size=5)
        snippet = generator.snippet("one", "one two three four five six seven eight")
        assert snippet.window_end - snippet.window_start <= 5

    def test_short_document_has_no_ellipsis(self, generator):
        snippet = generator.snippet("train", "a train")
        assert "..." not in snippet.text


class TestResultLists:
    def test_snippets_for_results(self, generator):
        documents = {
            1: "a wooden train set",
            2: "history of trains",
            3: "unrelated text entirely",
        }
        snippets = generator.snippets_for_results("train", documents, [1, 2, 4])
        assert set(snippets) == {1, 2}
        assert snippets[1].num_matches == 1

    def test_analyzer_consistency_with_search(self, docs_database):
        """Snippets highlight exactly the terms the engine matched on."""
        from repro.ir import KeywordSearchEngine

        engine = KeywordSearchEngine(docs_database, "docs")
        result = engine.search("history of trains")
        documents = {
            row["docID"]: row["data"] for row in docs_database.table("docs").to_dicts()
        }
        generator = SnippetGenerator(analyzer=StandardAnalyzer())
        snippets = generator.snippets_for_results(
            result.query, documents, [doc for doc, _ in result.top(5)]
        )
        assert snippets
        assert all(snippet.num_matches >= 1 for snippet in snippets.values())
