"""Unit tests for the effectiveness-evaluation package."""

import pytest

from repro.errors import WorkloadError
from repro.eval import (
    Qrels,
    average_precision,
    evaluate_ranking,
    evaluate_strategy,
    judgments_from_auctions,
    mean_metric,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)
from repro.eval.qrels import judgments_from_mapping


class TestMetrics:
    def test_precision_at_k(self):
        ranked = ["a", "b", "c", "d"]
        assert precision_at_k(ranked, {"a", "c"}, 2) == pytest.approx(0.5)
        assert precision_at_k(ranked, {"a", "c"}, 4) == pytest.approx(0.5)
        assert precision_at_k(ranked, {"x"}, 4) == 0.0
        assert precision_at_k(ranked, {"a"}, 0) == 0.0

    def test_precision_counts_missing_positions_against_the_system(self):
        # fewer results than k: the empty tail counts as non-relevant
        assert precision_at_k(["a"], {"a"}, 5) == pytest.approx(0.2)

    def test_recall_at_k(self):
        ranked = ["a", "b", "c"]
        assert recall_at_k(ranked, {"a", "z"}, 3) == pytest.approx(0.5)
        assert recall_at_k(ranked, {"a", "b"}, 1) == pytest.approx(0.5)
        assert recall_at_k(ranked, set(), 3) == 0.0

    def test_average_precision(self):
        ranked = ["a", "x", "b", "y"]
        # relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2
        assert average_precision(ranked, {"a", "b"}) == pytest.approx((1.0 + 2.0 / 3.0) / 2.0)
        assert average_precision(ranked, set()) == 0.0
        # missing relevant documents lower AP
        assert average_precision(ranked, {"a", "b", "missing"}) < average_precision(
            ranked, {"a", "b"}
        )

    def test_reciprocal_rank(self):
        assert reciprocal_rank(["x", "a"], {"a"}) == pytest.approx(0.5)
        assert reciprocal_rank(["a"], {"a"}) == 1.0
        assert reciprocal_rank(["x", "y"], {"a"}) == 0.0

    def test_ndcg_binary_perfect_and_worst(self):
        assert ndcg_at_k(["a", "b", "x"], {"a", "b"}, 3) == pytest.approx(1.0)
        assert ndcg_at_k(["x", "y", "z"], {"a"}, 3) == 0.0

    def test_ndcg_graded_prefers_high_grades_first(self):
        graded = {"a": 3.0, "b": 1.0}
        best = ndcg_at_k(["a", "b"], graded, 2)
        worse = ndcg_at_k(["b", "a"], graded, 2)
        assert best == pytest.approx(1.0)
        assert worse < best

    def test_ndcg_empty_cases(self):
        assert ndcg_at_k(["a"], {}, 3) == 0.0
        assert ndcg_at_k(["a"], {"a"}, 0) == 0.0

    def test_mean_metric(self):
        assert mean_metric([0.5, 1.0]) == pytest.approx(0.75)
        assert mean_metric([]) == 0.0


class TestQrels:
    def test_add_and_lookup(self):
        qrels = Qrels()
        qrels.add("q1", "doc1")
        qrels.add("q1", "doc2", 2.0)
        qrels.add("q2", "doc3")
        assert qrels.relevant_for("q1") == {"doc1": 1.0, "doc2": 2.0}
        assert qrels.relevant_for("missing") == {}
        assert len(qrels) == 2
        assert qrels.num_judgments() == 3
        assert "q1" in qrels

    def test_negative_grade_rejected(self):
        with pytest.raises(WorkloadError):
            Qrels().add("q", "doc", -1.0)

    def test_from_mapping(self):
        qrels = judgments_from_mapping({"q": ["a", "b"]})
        assert qrels.relevant_for("q") == {"a": 1.0, "b": 1.0}

    def test_judgments_from_auctions(self, auction_workload):
        qrels = judgments_from_auctions(auction_workload, terms_per_query=2)
        assert len(qrels) >= 1
        for query in qrels.queries():
            relevant = qrels.relevant_for(query)
            # every judged document is a lot, and all lots of one auction
            auctions = {auction_workload.lot_auction[lot] for lot in relevant}
            assert len(auctions) == 1
            auction = auctions.pop()
            assert set(relevant) == set(auction_workload.lots_in_auction(auction))

    def test_judgments_from_auctions_validation(self, auction_workload):
        with pytest.raises(WorkloadError):
            judgments_from_auctions(auction_workload, queries_per_auction=0)


class TestRunner:
    def test_evaluate_ranking_with_perfect_system(self):
        qrels = judgments_from_mapping({"q1": ["a"], "q2": ["b"]})
        report = evaluate_ranking(lambda query: ["a"] if query == "q1" else ["b"], qrels, cutoff=5)
        assert report.num_queries == 2
        means = report.means()
        assert means["precision@5"] == pytest.approx(0.2)
        assert means["recall@5"] == pytest.approx(1.0)
        assert means["average_precision"] == pytest.approx(1.0)
        assert means["reciprocal_rank"] == pytest.approx(1.0)

    def test_report_rows(self):
        qrels = judgments_from_mapping({"q": ["a"]})
        report = evaluate_ranking(lambda query: ["a"], qrels, cutoff=3)
        rows = report.to_rows()
        assert len(rows) == 1
        assert rows[0][0] == "q"

    def test_evaluate_strategy_on_auction_workload(self, auction_workload):
        from repro.strategy import StrategyExecutor, build_auction_strategy
        from repro.triples import TripleStore

        store = TripleStore()
        store.add_all(auction_workload.triples)
        store.load()
        qrels = judgments_from_auctions(auction_workload, terms_per_query=2, max_auctions=2)
        assert len(qrels) >= 1
        executor = StrategyExecutor(store)
        report = evaluate_strategy(executor, build_auction_strategy(), qrels, cutoff=10, top_k=100)
        means = report.means()
        # queries use each auction's distinctive vocabulary, so the relevant
        # lots must be retrievable: recall and MRR well above zero
        assert means["reciprocal_rank"] > 0.3
        assert means["recall@10"] > 0.0

    def test_empty_report(self):
        report = evaluate_ranking(lambda query: [], Qrels(), cutoff=5)
        assert report.means() == {}
        assert report.num_queries == 0
