"""Unit tests for the on-demand inverted index and the Figure 1 reproduction."""

import pytest

from repro.errors import IndexingError
from repro.ir.inverted_index import InvertedIndex, query_terms_relation, term_lookup_join
from repro.relational.column import DataType
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.text.analyzers import StandardAnalyzer


@pytest.fixture
def figure1_index(figure1_docs):
    # Use the un-stemmed analyzer so the terms match Figure 1 literally.
    return InvertedIndex.from_documents(figure1_docs, StandardAnalyzer("none"))


class TestConstruction:
    def test_from_documents(self, figure1_docs):
        index = InvertedIndex.from_documents(figure1_docs)
        assert index.num_documents == 2

    def test_from_relation(self, figure1_docs):
        schema = Schema([Field("docID", DataType.INT), Field("data", DataType.STRING)])
        docs = Relation.from_rows(schema, figure1_docs)
        index = InvertedIndex.from_relation(docs)
        assert index.num_documents == 2

    def test_from_relation_missing_columns(self):
        schema = Schema([Field("x", DataType.INT), Field("y", DataType.STRING)])
        docs = Relation.from_rows(schema, [(1, "text")])
        with pytest.raises(IndexingError):
            InvertedIndex.from_relation(docs)

    def test_duplicate_document_rejected(self):
        index = InvertedIndex()
        index.add_document(1, "some text")
        with pytest.raises(IndexingError):
            index.add_document(1, "other text")


class TestLookup:
    def test_posting_list_figure1(self, figure1_index):
        # 'book' occurs in both documents, 'cake' only in document 10,
        # 'history' only in document 3 — the pattern of Figure 1a.
        assert {doc for doc, _ in figure1_index.posting_list("book")} == {3, 10}
        assert {doc for doc, _ in figure1_index.posting_list("cake")} == {10}
        assert {doc for doc, _ in figure1_index.posting_list("history")} == {3}

    def test_document_frequency(self, figure1_index):
        assert figure1_index.document_frequency("book") == 2
        assert figure1_index.document_frequency("cake") == 1
        assert figure1_index.document_frequency("missing") == 0

    def test_term_frequency(self, figure1_index):
        assert figure1_index.term_frequency("book", 3) == 1
        assert figure1_index.term_frequency("book", 99) == 0

    def test_doc_length(self, figure1_docs, figure1_index):
        assert figure1_index.doc_length(3) == len(figure1_docs[0][1].split())
        assert figure1_index.doc_length(42) == 0

    def test_matching_documents_disjunctive(self, figure1_index):
        assert figure1_index.matching_documents(["cake", "history"]) == {3, 10}

    def test_vocabulary_sorted(self, figure1_index):
        vocabulary = figure1_index.vocabulary
        assert vocabulary == sorted(vocabulary)

    def test_lookup_normalises_via_analyzer(self, figure1_docs):
        index = InvertedIndex.from_documents(figure1_docs)  # stemming analyzer
        # 'books' stems to 'book' so lookup matches indexed occurrences
        assert index.document_frequency("books") == 2

    def test_positions_are_document_order(self, figure1_index):
        positions = [pos for _, pos in figure1_index.posting_list("book")]
        assert all(position >= 0 for position in positions)


class TestNonIdempotentStems:
    """Porter stemming is not idempotent: "agreed" stems to "agre", but
    re-stemming "agre" yields "agr".  Vocabulary terms (already stemmed) must
    therefore be looked up raw, never re-analyzed, or their postings vanish.
    """

    @pytest.fixture
    def stemmed_index(self):
        analyzer = StandardAnalyzer("english")
        # sanity-check the premise before relying on it
        stemmed = analyzer.analyze("agreed")[0]
        assert stemmed == "agre"
        assert analyzer.analyze(stemmed)[0] != stemmed
        return InvertedIndex.from_documents(
            [(1, "they agreed to the plan"), (2, "everyone agreed loudly")],
            analyzer,
        )

    def test_posting_list_accepts_vocabulary_terms(self, stemmed_index):
        assert "agre" in stemmed_index.vocabulary
        assert {doc for doc, _ in stemmed_index.posting_list("agre")} == {1, 2}

    def test_posting_list_still_normalizes_raw_terms(self, stemmed_index):
        assert {doc for doc, _ in stemmed_index.posting_list("agreed")} == {1, 2}

    def test_document_frequency_of_vocabulary_term(self, stemmed_index):
        assert stemmed_index.document_frequency("agre") == 2
        assert stemmed_index.document_frequency("agreed") == 2

    def test_term_frequency_of_vocabulary_term(self, stemmed_index):
        assert stemmed_index.term_frequency("agre", 1) == 1
        assert stemmed_index.term_frequency("agreed", 2) == 1

    def test_posting_lists_cover_relation(self, stemmed_index):
        """Summing posting lists over the vocabulary reconstructs the relation."""
        relation = stemmed_index.to_relation()
        assert relation.num_rows == sum(
            len(stemmed_index.posting_list(term)) for term in stemmed_index.vocabulary
        )


class TestRelationalForm:
    def test_to_relation_schema(self, figure1_index):
        relation = figure1_index.to_relation()
        assert relation.schema.names == ["term", "doc", "pos"]
        assert relation.num_rows > 0

    def test_term_lookup_join_matches_figure1(self, figure1_index):
        """Figure 1b: joining query terms against the term-doc table."""
        database = Database()
        index_relation = figure1_index.to_relation()
        result = term_lookup_join(database, index_relation, ["book", "history"])
        matched = {(row["term"], row["doc"]) for row in result.to_dicts()}
        assert ("book", 3) in matched
        assert ("book", 10) in matched
        assert ("history", 3) in matched
        assert all(term in ("book", "history") for term, _ in matched)

    def test_term_lookup_join_empty_for_unknown_terms(self, figure1_index):
        database = Database()
        result = term_lookup_join(database, figure1_index.to_relation(), ["zebra"])
        assert result.num_rows == 0

    def test_query_terms_relation(self):
        relation = query_terms_relation(["book", "about", "history"])
        assert relation.num_rows == 3
        assert relation.schema.names == ["term"]
