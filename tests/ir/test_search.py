"""Unit tests for the keyword search engine."""

import pytest

from repro.errors import IndexingError, RankingError
from repro.ir.query_expansion import SynonymExpander
from repro.ir.ranking import TfIdfModel
from repro.ir.search import KeywordSearchEngine
from repro.relational.column import DataType
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema


class TestSearchEngine:
    def test_direct_pipeline_basic_search(self, docs_database):
        engine = KeywordSearchEngine(docs_database, "docs")
        result = engine.search("history of trains")
        assert len(result.ranked) > 0
        assert result.query_terms == ["histori", "of", "train"]

    def test_relational_pipeline_matches_direct(self, docs_database):
        direct = KeywordSearchEngine(docs_database, "docs", pipeline="direct")
        relational = KeywordSearchEngine(docs_database, "docs", pipeline="relational")
        for query in ("book about history", "model trains", "cake recipe"):
            direct_pairs = direct.search(query).top(5)
            relational_pairs = relational.search(query).top(5)
            assert [doc for doc, _ in direct_pairs] == [doc for doc, _ in relational_pairs]
            for (_, a), (_, b) in zip(direct_pairs, relational_pairs):
                assert a == pytest.approx(b)

    def test_unknown_pipeline_rejected(self, docs_database):
        with pytest.raises(RankingError):
            KeywordSearchEngine(docs_database, "docs", pipeline="magic")

    def test_statistics_cached_between_queries(self, docs_database):
        engine = KeywordSearchEngine(docs_database, "docs")
        first = engine.search("history")
        second = engine.search("trains")
        assert first.statistics_were_cached is False
        assert second.statistics_were_cached is True

    def test_warm_up_and_invalidate(self, docs_database):
        engine = KeywordSearchEngine(docs_database, "docs")
        engine.warm_up()
        assert engine.search("history").statistics_were_cached is True
        engine.invalidate()
        assert engine.search("history").statistics_were_cached is False

    def test_empty_docs_source_rejected(self):
        db = Database()
        schema = Schema([Field("docID", DataType.INT), Field("data", DataType.STRING)])
        db.create_table("docs", Relation.empty(schema))
        engine = KeywordSearchEngine(db, "docs")
        with pytest.raises(IndexingError):
            engine.search("anything")

    def test_top_k_limits_results(self, docs_database):
        engine = KeywordSearchEngine(docs_database, "docs")
        result = engine.search("history book cake trains", top_k=2)
        assert len(result.ranked) == 2

    def test_alternative_model(self, docs_database):
        engine = KeywordSearchEngine(docs_database, "docs", model=TfIdfModel())
        result = engine.search("cake recipe")
        assert result.top(1)[0][0] == 2

    def test_result_relation_has_probability_column(self, docs_database):
        engine = KeywordSearchEngine(docs_database, "docs")
        relation = engine.search("history").to_relation()
        assert relation.schema.names == ["docID", "score", "p"]
        probabilities = relation.column("p").to_list()
        assert max(probabilities) == pytest.approx(1.0)
        assert all(0 < value <= 1 for value in probabilities)

    def test_search_over_view(self, docs_database):
        from repro.relational.algebra import Scan, Select
        from repro.relational.expressions import col, lit

        docs_database.create_view(
            "history_docs",
            Select(Scan("docs"), col("docID").lt(lit(4))),
        )
        engine = KeywordSearchEngine(docs_database, "history_docs")
        result = engine.search("history")
        assert all(doc < 4 for doc, _ in result.top(10))

    def test_query_expansion_adds_terms(self, docs_database):
        expander = SynonymExpander({"railway": ["train"]})
        engine = KeywordSearchEngine(docs_database, "docs", expander=expander)
        result = engine.search("railway")
        # 'railway' stems to 'railwai'; the synonym 'train' must contribute matches
        assert "train" in result.expanded_terms
        assert len(result.ranked) > 0

    def test_search_terms_bypasses_analysis(self, docs_database):
        engine = KeywordSearchEngine(docs_database, "docs")
        ranked = engine.search_terms(["histori"])
        assert len(ranked) > 0

    def test_describe(self, docs_database):
        engine = KeywordSearchEngine(docs_database, "docs")
        description = engine.describe()
        assert description["docs_source"] == "docs"
        assert description["model"]["model"] == "bm25"

    def test_elapsed_time_recorded(self, docs_database):
        engine = KeywordSearchEngine(docs_database, "docs")
        result = engine.search("history")
        assert result.elapsed_seconds >= 0.0
