"""Unit tests for query expansion."""

import pytest

from repro.errors import RankingError
from repro.ir.query_expansion import ChainedExpander, CompoundExpander, SynonymExpander


class TestSynonymExpander:
    def test_basic_expansion(self):
        expander = SynonymExpander({"car": ["automobile", "vehicle"]})
        assert expander.expand(["car"]) == ["automobile", "vehicle"]

    def test_symmetric_by_default(self):
        expander = SynonymExpander({"car": ["automobile"]})
        assert expander.expand(["automobile"]) == ["car"]

    def test_asymmetric_option(self):
        expander = SynonymExpander({"car": ["automobile"]}, symmetric=False)
        assert expander.expand(["automobile"]) == []

    def test_no_duplicates_of_original_terms(self):
        expander = SynonymExpander({"car": ["car", "auto"]})
        assert expander.expand(["car"]) == ["auto"]

    def test_case_insensitive(self):
        expander = SynonymExpander({"Car": ["Automobile"]})
        assert expander.expand(["car"]) == ["automobile"]

    def test_terms_without_synonyms(self):
        expander = SynonymExpander({"car": ["auto"]})
        assert expander.expand(["bicycle"]) == []

    def test_describe(self):
        description = SynonymExpander({"a": ["b"]}).describe()
        assert description["expander"] == "synonyms"
        assert description["entries"] == 2


class TestCompoundExpander:
    def test_adjacent_terms_joined(self):
        expander = CompoundExpander()
        assert expander.expand(["antique", "clock"]) == ["antiqueclock"]

    def test_multiple_joiners(self):
        expander = CompoundExpander(joiners=["", "-"])
        assert expander.expand(["book", "case"]) == ["bookcase", "book-case"]

    def test_vocabulary_restriction(self):
        expander = CompoundExpander(vocabulary={"bookcase"})
        assert expander.expand(["book", "case"]) == ["bookcase"]
        assert expander.expand(["antique", "clock"]) == []

    def test_span_of_three(self):
        expander = CompoundExpander(max_span=3)
        additions = expander.expand(["a", "b", "c"])
        assert "abc" in additions
        assert "ab" in additions and "bc" in additions

    def test_invalid_span(self):
        with pytest.raises(RankingError):
            CompoundExpander(max_span=1)

    def test_single_term_produces_nothing(self):
        assert CompoundExpander().expand(["alone"]) == []

    def test_describe(self):
        description = CompoundExpander(vocabulary={"x"}).describe()
        assert description["vocabulary_restricted"] is True


class TestChainedExpander:
    def test_chains_both_expanders(self):
        chained = ChainedExpander(
            [SynonymExpander({"clock": ["timepiece"]}), CompoundExpander()]
        )
        additions = chained.expand(["antique", "clock"])
        assert "timepiece" in additions
        assert "antiqueclock" in additions

    def test_no_duplicate_additions(self):
        chained = ChainedExpander(
            [SynonymExpander({"a": ["b"]}), SynonymExpander({"a": ["b"]})]
        )
        assert chained.expand(["a"]) == ["b"]

    def test_describe_lists_parts(self):
        chained = ChainedExpander([SynonymExpander({"a": ["b"]})])
        assert chained.describe()["expander"] == "chain"
        assert len(chained.describe()["parts"]) == 1
