"""Plan-cache behaviour: hits on repeated parameterized queries, invalidation.

The acceptance criterion of the facade is that repeated parameterized
``Query`` executions skip compile+optimize entirely — observable through the
cache-stats counters asserted here.
"""

import pytest

from repro.engine import Engine
from repro.engine.plan_cache import PlanCache
from repro.errors import PRAError

TRIPLES = [
    ("lot1", "type", "lot"),
    ("lot2", "type", "lot"),
    ("lot1", "hasAuction", "auction1"),
    ("lot2", "hasAuction", "auction2"),
    ("lot1", "material", "oak", 0.9),
]

TRAVERSE = "auctions = TRAVERSE ['hasAuction'] (seeds);"


@pytest.fixture
def engine():
    return Engine.from_triples(TRIPLES)


class TestParameterizedReuse:
    def test_same_source_different_bindings_hits_cache(self, engine):
        first = engine.spinql(TRAVERSE, seeds=["lot1"])
        assert first.execute().value_rows() == [("auction1",)]
        stats = engine.plan_cache.statistics
        hits, misses = stats.hits, stats.misses

        second = engine.spinql(TRAVERSE, seeds=["lot2"])
        assert second.execute().value_rows() == [("auction2",)]
        assert stats.hits == hits + 1
        assert stats.misses == misses  # no recompilation

    def test_execute_many_compiles_once(self, engine):
        query = engine.spinql(TRAVERSE, seeds=[])
        stats = engine.plan_cache.statistics
        misses_before = stats.misses
        results = query.execute_many(
            [{"seeds": ["lot1"]}, {"seeds": ["lot2"]}, {"seeds": ["lot1", "lot2"]}]
        )
        assert [result.num_rows for result in results] == [1, 1, 2]
        # one miss for the initial compile; every further execution hits
        assert stats.misses == misses_before + 1
        assert stats.hits >= 2

    def test_plan_fingerprint_independent_of_binding_values(self, engine):
        a = engine.spinql(TRAVERSE, seeds=["lot1"])
        b = engine.spinql(TRAVERSE, seeds=[("lot2", 0.5)])
        assert a.plan.fingerprint() == b.plan.fingerprint()

    def test_unbound_parameter_raises(self, engine):
        query = engine.spinql(TRAVERSE, seeds=["lot1"])
        bare = engine.spinql(TRAVERSE)  # no binding: 'seeds' scans a table
        with pytest.raises(Exception):
            bare.execute()
        # the parameterized plan without a binding at execute time is an error
        program = engine._compile_spinql(TRAVERSE, frozenset({"seeds"}))
        with pytest.raises(PRAError, match="unbound plan parameter"):
            engine._evaluate(program.optimized, {})
        assert query.execute(seeds=["lot2"]).num_rows == 1

    def test_builder_plans_share_optimizer_cache(self, engine):
        chain = engine.table("triples").where(property="type", object="lot").select("subject")
        chain.execute()
        stats = engine.plan_cache.statistics
        hits_before = stats.hits
        chain.execute()
        assert stats.hits == hits_before + 1  # optimized plan reused


class TestInvalidation:
    def test_reload_invalidates_dependent_plans(self, engine):
        query = engine.spinql(TRAVERSE, seeds=["lot1"])
        query.execute()
        stats = engine.plan_cache.statistics
        assert stats.entries > 0
        invalidations_before = stats.invalidations
        engine.load_triples([("lot3", "hasAuction", "auction3")])
        assert stats.invalidations > invalidations_before
        # the query transparently recompiles and sees the new data
        assert query.execute(seeds=["lot3"]).value_rows() == [("auction3",)]

    def test_unrelated_table_does_not_invalidate(self, engine):
        query = engine.spinql(TRAVERSE, seeds=["lot1"])
        query.execute()
        stats = engine.plan_cache.statistics
        invalidations_before = stats.invalidations
        entries_before = stats.entries
        from repro.relational.column import DataType
        from repro.relational.relation import Relation
        from repro.relational.schema import Field, Schema

        unrelated = Relation.from_rows(
            Schema([Field("x", DataType.STRING)]), [("a",), ("b",)]
        )
        engine.create_table("unrelated", unrelated)
        assert stats.invalidations == invalidations_before
        assert stats.entries == entries_before

    def test_search_statistics_invalidate_on_reload(self, engine):
        engine.store.register_docs_view(
            "docs",
            filter_property="type",
            filter_value="lot",
            text_property="material",
        )
        warm = engine.search("docs", "oak").execute()
        assert not warm.statistics_were_cached
        hot = engine.search("docs", "oak").execute()
        assert hot.statistics_were_cached
        engine.load_triples([("lot3", "type", "lot"), ("lot3", "material", "oak", 0.5)])
        cold_again = engine.search("docs", "oak").execute()
        assert not cold_again.statistics_were_cached


class TestPlanCacheUnit:
    def test_lru_bound(self):
        cache = PlanCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert len(cache) == 2
        assert cache.get("a") is None
        assert cache.get("c") == 3

    def test_hit_rate_and_counters(self):
        cache = PlanCache()
        assert cache.statistics.hit_rate == 0.0
        cache.put("k", "v", dependencies=frozenset({"t"}))
        assert cache.get("k") == "v"
        assert cache.get("missing") is None
        assert cache.statistics.hits == 1
        assert cache.statistics.misses == 1
        assert cache.statistics.hit_rate == 0.5

    def test_invalidate_by_dependency(self):
        cache = PlanCache()
        cache.put("k1", 1, dependencies=frozenset({"triples"}))
        cache.put("k2", 2, dependencies=frozenset({"docs"}))
        assert cache.invalidate_table("triples") == 1
        assert "k1" not in cache
        assert "k2" in cache
        assert cache.statistics.invalidations == 1

    def test_clear(self):
        cache = PlanCache()
        cache.put("k", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.statistics.entries == 0
