"""Facade parity: Engine-built results are identical to the hand-wired pipeline.

For each scenario of the paper (toy, auction, experts) the same workload is
queried twice — once through :class:`~repro.engine.Engine` and once by
hand-wiring ``TripleStore`` + ``StrategyExecutor`` + the layer entry points
the examples used before the facade existed — and the results must agree
exactly, probabilities included.
"""

import pytest

from repro.engine import Engine
from repro.ir import KeywordSearchEngine
from repro.spinql import evaluate
from repro.strategy import StrategyExecutor, build_auction_strategy, build_toy_strategy
from repro.strategy.prebuilt import build_expert_strategy
from repro.triples import TripleStore
from repro.workloads import generate_expert_triples

SPINQL_DOCS = """
docs = PROJECT [$1 AS docID, $6 AS data] (
  JOIN INDEPENDENT [$1=$1] (
    SELECT [$2="category" and $3="toy"] (triples),
    SELECT [$2="description"] (triples) ) );
"""


def _hand_wired_store(workload) -> TripleStore:
    store = TripleStore()
    store.add_all(workload.triples)
    store.load()
    return store


class TestStrategyParity:
    def test_toy_scenario(self, product_workload):
        toy_products = product_workload.products_in_category("toy")
        query = " ".join(product_workload.descriptions[toy_products[0]].split()[:3])

        hand_wired = StrategyExecutor(_hand_wired_store(product_workload)).run(
            build_toy_strategy(category="toy"), query=query
        )
        engine = Engine.from_triples(product_workload.triples)
        facade = engine.strategy("toy", query=query, category="toy").execute()

        assert facade.top(20) == hand_wired.top(20)
        assert facade.result == hand_wired.result

    def test_auction_scenario(self, auction_workload):
        query = " ".join(
            auction_workload.lot_descriptions[auction_workload.lot_ids[0]].split()[:3]
        )
        hand_wired = StrategyExecutor(_hand_wired_store(auction_workload)).run(
            build_auction_strategy(lot_weight=0.6, auction_weight=0.4), query=query
        )
        engine = Engine.from_triples(auction_workload.triples)
        facade = engine.strategy(
            "auction", query=query, lot_weight=0.6, auction_weight=0.4
        ).execute()

        assert facade.top(20) == hand_wired.top(20)
        assert facade.result == hand_wired.result

    def test_experts_scenario(self):
        workload = generate_expert_triples(15, 60, seed=5)
        query = workload.query_for_topic(workload.topics[0])

        hand_wired = StrategyExecutor(_hand_wired_store(workload)).run(
            build_expert_strategy(), query=query
        )
        engine = Engine.from_triples(workload.triples)
        facade = engine.strategy("experts", query=query).execute()

        assert facade.top(10) == hand_wired.top(10)
        assert facade.result == hand_wired.result


class TestSpinQLParity:
    def test_spinql_front_end_matches_evaluate(self, product_workload):
        store = _hand_wired_store(product_workload)
        hand_wired = evaluate(SPINQL_DOCS, store.database)

        engine = Engine.from_triples(product_workload.triples)
        facade = engine.spinql(SPINQL_DOCS).execute()

        assert facade == hand_wired

    def test_builder_matches_spinql(self, product_workload):
        engine = Engine.from_triples(product_workload.triples)
        via_spinql = engine.spinql(SPINQL_DOCS).execute()
        via_builder = (
            engine.table("triples")
            .where(property="category", object="toy")
            .select("subject")
            .traverse("description")
            .execute()
        )
        # the builder chain traverses to the description texts themselves
        assert sorted(row[0] for row in via_builder.value_rows()) == sorted(
            data for _, data in via_spinql.value_rows()
        )

    def test_traverse_front_end_matches_spinql_traverse(self, auction_workload):
        engine = Engine.from_triples(auction_workload.triples)
        seeds = auction_workload.lot_ids[:5]
        via_spinql = engine.spinql(
            "auctions = TRAVERSE ['hasAuction'] (seeds);", seeds=seeds
        ).execute()
        via_traverse = engine.traverse("hasAuction", seeds=seeds).execute()
        assert via_traverse == via_spinql


class TestSearchParity:
    def test_search_front_end_matches_keyword_engine(self, product_workload):
        engine = Engine.from_triples(product_workload.triples)
        engine.store.register_docs_view(
            "toy_docs",
            filter_property="category",
            filter_value="toy",
            text_property="description",
        )
        toy_products = product_workload.products_in_category("toy")
        query = product_workload.descriptions[toy_products[0]].split()[0]

        hand_wired = KeywordSearchEngine(engine.database, "toy_docs").search(query)
        facade = engine.search("toy_docs", query).execute()

        assert facade.top(10) == hand_wired.top(10)
        assert facade.query_terms == hand_wired.query_terms

    def test_search_statistics_stay_warm_across_queries(self, product_workload):
        engine = Engine.from_triples(product_workload.triples)
        engine.store.register_docs_view(
            "toy_docs",
            filter_property="category",
            filter_value="toy",
            text_property="description",
        )
        toy_products = product_workload.products_in_category("toy")
        first = product_workload.descriptions[toy_products[0]].split()[0]
        second = product_workload.descriptions[toy_products[1]].split()[0]

        cold = engine.search("toy_docs", first).execute()
        hot = engine.search("toy_docs", second).execute()
        assert not cold.statistics_were_cached
        assert hot.statistics_were_cached  # same session, shared warm statistics


class TestStorageLayoutParity:
    @pytest.mark.parametrize(
        "layout", ["single-table", "property-partitioned", "type-partitioned"]
    )
    def test_engine_strategy_identical_across_layouts(self, product_workload, layout):
        from repro.triples.partitioning import make_storage

        toy_products = product_workload.products_in_category("toy")
        query = product_workload.descriptions[toy_products[0]].split()[0]

        baseline = Engine.from_triples(product_workload.triples)
        engine = Engine.from_triples(
            product_workload.triples, storage=make_storage(layout)
        )
        assert (
            engine.strategy("toy", query=query).execute().top(10)
            == baseline.strategy("toy", query=query).execute().top(10)
        )
