"""CLI smoke tests: every subcommand, text and JSON output."""

import json

import pytest

from repro.cli import main

SPINQL = (
    'docs = PROJECT [$1 AS docID, $6 AS data] ('
    ' JOIN INDEPENDENT [$1=$1] ('
    ' SELECT [$2="category" and $3="toy"] (triples),'
    ' SELECT [$2="description"] (triples) ) );'
)


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestScenarioCommands:
    def test_toy_text(self, capsys):
        code, out = run_cli(capsys, "toy", "--products", "40", "--top", "3")
        assert code == 0
        assert "query:" in out
        assert "p = " in out

    def test_toy_json(self, capsys):
        code, out = run_cli(capsys, "toy", "--products", "40", "--top", "3", "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["command"] == "toy"
        assert payload["results"]
        assert {"node", "p"} <= set(payload["results"][0])

    def test_auction_json(self, capsys):
        code, out = run_cli(capsys, "auction", "--lots", "60", "--top", "2", "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["command"] == "auction"
        assert len(payload["results"]) <= 2

    def test_experts_json_includes_ground_truth(self, capsys):
        code, out = run_cli(
            capsys, "experts", "--people", "10", "--documents", "40", "--json"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["command"] == "experts"
        assert "true_experts" in payload

    def test_show_strategy(self, capsys):
        code, out = run_cli(capsys, "toy", "--products", "40", "--show-strategy")
        assert code == 0
        assert "Rank by Text" in out


class TestSpinQLCommands:
    def test_spinql_text(self, capsys):
        code, out = run_cli(capsys, "spinql", SPINQL)
        assert code == 0
        assert "PRA plan:" in out
        assert "SQL translation:" in out

    def test_spinql_json(self, capsys):
        code, out = run_cli(capsys, "spinql", SPINQL, "--json")
        assert code == 0
        payload = json.loads(out)
        assert {"pra_plan", "optimized_plan", "sql"} <= set(payload)

    def test_spinql_view_name(self, capsys):
        code, out = run_cli(capsys, "spinql", SPINQL, "--view-name", "docs")
        assert code == 0
        assert "CREATE VIEW docs AS" in out

    def test_explain_text(self, capsys):
        code, out = run_cli(capsys, "explain", SPINQL)
        assert code == 0
        assert "SpinQL program:" in out
        assert "Optimized PRA plan:" in out
        assert "SQL translation:" in out

    def test_explain_json(self, capsys):
        code, out = run_cli(capsys, "explain", SPINQL, "--json")
        assert code == 0
        payload = json.loads(out)
        assert {"spinql", "pra_plan", "optimized_plan", "sql"} <= set(payload)


class TestTopK:
    """``--top-k`` is accepted by every subcommand."""

    def test_toy_top_k_bounds_results(self, capsys):
        code, out = run_cli(
            capsys, "toy", "--products", "40", "--top-k", "2", "--json"
        )
        assert code == 0
        assert len(json.loads(out)["results"]) <= 2

    def test_auction_top_k_bounds_results(self, capsys):
        code, out = run_cli(
            capsys, "auction", "--lots", "60", "--top-k", "2", "--json"
        )
        assert code == 0
        assert len(json.loads(out)["results"]) <= 2

    def test_experts_top_k_bounds_results(self, capsys):
        code, out = run_cli(
            capsys,
            "experts",
            "--people",
            "10",
            "--documents",
            "40",
            "--top-k",
            "3",
            "--json",
        )
        assert code == 0
        assert len(json.loads(out)["results"]) <= 3

    def test_spinql_top_k_wraps_plan(self, capsys):
        code, out = run_cli(capsys, "spinql", SPINQL, "--top-k", "5", "--json")
        assert code == 0
        payload = json.loads(out)
        assert "TOP [5]" in payload["pra_plan"]
        assert "TOP [5]" in payload["optimized_plan"]
        assert "LIMIT 5" in payload["sql"]

    def test_explain_top_k_shows_top_in_both_plans(self, capsys):
        code, out = run_cli(capsys, "explain", SPINQL, "--top-k", "3")
        assert code == 0
        raw, optimized = out.split("Optimized PRA plan:")
        assert "TOP [3]" in raw
        assert "TOP [3]" in optimized

    def test_explain_top_k_json(self, capsys):
        code, out = run_cli(capsys, "explain", SPINQL, "--top-k", "3", "--json")
        assert code == 0
        payload = json.loads(out)
        assert "TOP [3]" in payload["pra_plan"]
        assert "TOP [3]" in payload["optimized_plan"]


class TestErrors:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_toy_empty_category_fails(self, capsys):
        code = main(["toy", "--products", "20", "--category", "nonexistent"])
        assert code == 1


class TestShardingCommands:
    def _plain_snapshot(self, tmp_path) -> str:
        out = str(tmp_path / "plain")
        code = main(
            ["snapshot", "--out", out, "--scenario", "auction", "--lots", "60", "--json"]
        )
        assert code == 0
        return out

    def test_snapshot_with_shards_writes_partitioned_layout(self, tmp_path, capsys):
        from repro.storage.shards import is_sharded_snapshot

        out = str(tmp_path / "sharded")
        args = ["snapshot", "--out", out, "--scenario", "auction", "--lots", "60"]
        code = main(args + ["--shards", "2", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["shards"] == 2
        assert is_sharded_snapshot(out)

    def test_shard_repartitions_plain_snapshot(self, tmp_path, capsys):
        source = self._plain_snapshot(tmp_path)
        capsys.readouterr()
        out = str(tmp_path / "resharded")
        code = main(
            ["shard", "--from-snapshot", source, "--out", out, "--shards", "3", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["shards"] == 3 and "triples" in payload["tables"]
        # the plain snapshot still answers the scenario after re-sharding
        args = ["auction", "--from-snapshot", source, "--query", "clock", "--top", "3"]
        assert main(args) == 0
        assert capsys.readouterr().out
        # open the sharded layout directly through the engine
        from repro.engine import Engine

        with Engine.open_sharded(out) as engine:
            assert engine.executor_info()["shards"] == 3

    def test_shard_requires_source(self, capsys):
        code = main(["shard", "--out", "/tmp/nowhere", "--shards", "2"])
        assert code == 1
        assert "from-snapshot" in capsys.readouterr().err

    def test_serve_rejects_missing_snapshot(self, capsys):
        code = main(["serve", "--port", "0"])
        assert code == 1
        assert "from-snapshot" in capsys.readouterr().err
