"""Concurrency: thread-safe caches, concurrent batch execution, determinism.

One :class:`~repro.engine.Engine` is hammered from many threads with a mix of
cached (repeated parameterized) and uncached (distinct-source) queries.  The
contract under test:

* every thread observes exactly the same results as serial execution;
* the plan-cache counters stay consistent — every lookup is counted exactly
  once (no lost ``+= 1`` updates), the entry count matches the distinct
  programs compiled, and the LRU order never corrupts;
* ``execute_many``/``top_many`` with ``max_workers`` return results in batch
  order, identical to their serial runs.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine import Engine

TRIPLES = [
    ("lot1", "type", "lot"),
    ("lot2", "type", "lot"),
    ("lot3", "type", "lot"),
    ("lot1", "hasAuction", "auction1"),
    ("lot2", "hasAuction", "auction2"),
    ("lot3", "hasAuction", "auction1"),
    ("lot1", "material", "oak", 0.9),
    ("lot2", "material", "oak", 0.4),
    ("lot3", "material", "bronze", 0.8),
]

TRAVERSE = "auctions = TRAVERSE ['hasAuction'] (seeds);"

#: distinct sources so cold compiles and warm replays interleave
SOURCES = [
    'a = SELECT [$2="type"] (triples);',
    'b = SELECT [$2="material"] (triples);',
    'c = SELECT [$2="material" and $3="oak"] (triples);',
    'd = PROJECT [$1 AS node] (SELECT [$2="hasAuction"] (triples));',
]

SEED_SETS = [["lot1"], ["lot2"], ["lot3"], ["lot1", "lot2"], ["lot2", "lot3"]]


@pytest.fixture
def engine():
    return Engine.from_triples(TRIPLES)


def _result_key(result):
    return sorted(map(tuple, result.rows()))


class TestPlanCacheStress:
    THREADS = 8
    ITERATIONS = 25

    def _workload(self, engine, worker: int):
        """One thread's query mix; returns comparable result snapshots."""
        snapshots = []
        for iteration in range(self.ITERATIONS):
            source = SOURCES[(worker + iteration) % len(SOURCES)]
            snapshots.append(_result_key(engine.spinql(source).execute()))
            seeds = SEED_SETS[(worker * 3 + iteration) % len(SEED_SETS)]
            snapshots.append(
                _result_key(engine.spinql(TRAVERSE, seeds=seeds).execute(seeds=seeds))
            )
        return snapshots

    def test_hammered_engine_matches_serial_and_keeps_counters(self, engine):
        serial_engine = Engine.from_triples(TRIPLES)
        expected = [
            self._workload(serial_engine, worker) for worker in range(self.THREADS)
        ]

        barrier = threading.Barrier(self.THREADS)
        results: list = [None] * self.THREADS
        errors: list = []

        def run(worker: int):
            try:
                barrier.wait()
                results[worker] = self._workload(engine, worker)
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [
            threading.Thread(target=run, args=(worker,)) for worker in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert results == expected

        stats = engine.plan_cache.statistics
        # one plan-cache lookup per spinql execution: no lost counter updates
        executions = self.THREADS * self.ITERATIONS * 2
        assert stats.lookups == executions
        distinct_programs = len(SOURCES) + 1  # + the parameterized traversal
        # racing threads may each compile a program they both missed, but
        # never more than once per thread, and every miss is counted
        assert distinct_programs <= stats.misses <= distinct_programs * self.THREADS
        assert stats.hits == executions - stats.misses
        assert stats.entries == distinct_programs
        assert len(engine.plan_cache) == distinct_programs

    def test_concurrent_invalidation_keeps_cache_usable(self, engine):
        stop = threading.Event()
        errors: list = []

        def query_loop():
            try:
                while not stop.is_set():
                    engine.spinql(TRAVERSE, seeds=["lot1"]).execute()
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        def invalidate_loop():
            try:
                for _ in range(200):
                    engine.plan_cache.invalidate_table("triples")
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        workers = [threading.Thread(target=query_loop) for _ in range(3)]
        invalidator = threading.Thread(target=invalidate_loop)
        for thread in workers:
            thread.start()
        invalidator.start()
        invalidator.join()
        stop.set()
        for thread in workers:
            thread.join()

        assert not errors
        stats = engine.plan_cache.statistics
        assert stats.lookups == stats.hits + stats.misses
        assert engine.spinql(TRAVERSE, seeds=["lot1"]).execute().num_rows == 1


class TestResultCacheStress:
    """8 threads mixing execution with result-cache invalidation and clears.

    The result cache may be invalidated or cleared at any moment by a
    concurrent writer; the contract is that every observed result is still
    bit-identical to serial execution (a stale answer is the one failure
    mode a result cache must never have) and that the hit/miss counters
    stay consistent — exactly one lookup per cacheable execution.
    """

    THREADS = 8
    ITERATIONS = 30

    def _mix(self, engine, worker: int):
        snapshots = []
        for iteration in range(self.ITERATIONS):
            step = (worker + iteration) % 4
            if step == 3 and worker % 2 == 0:
                engine.result_cache.invalidate_table("triples")
            elif step == 3:
                engine.clear_caches()
            source = SOURCES[(worker + iteration) % len(SOURCES)]
            result = engine.spinql(source).execute()
            snapshots.append(
                (_result_key(result), [round(p, 12) for p in result.probabilities()])
            )
            seeds = SEED_SETS[(worker * 3 + iteration) % len(SEED_SETS)]
            snapshots.append(
                (_result_key(engine.spinql(TRAVERSE, seeds=seeds).execute(seeds=seeds)), None)
            )
        return snapshots

    def test_mixed_execute_invalidate_clear_is_bit_identical(self, engine):
        serial_engine = Engine.from_triples(TRIPLES, result_cache_size=None)
        expected = [
            self._serial_mix(serial_engine, worker) for worker in range(self.THREADS)
        ]

        barrier = threading.Barrier(self.THREADS)
        results: list = [None] * self.THREADS
        errors: list = []

        def run(worker: int):
            try:
                barrier.wait()
                results[worker] = self._mix(engine, worker)
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [
            threading.Thread(target=run, args=(worker,)) for worker in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert results == expected

        stats = engine.result_cache.statistics
        # one cache lookup per execution, none lost to races
        executions = self.THREADS * self.ITERATIONS * 2
        assert stats.hits + stats.misses == executions
        assert 0 <= stats.entries <= engine.result_cache.max_entries

        # after the stress, invalidation still works: new data, new answer
        engine.load_triples([("lot4", "hasAuction", "auction1")])
        fresh = engine.spinql(TRAVERSE, seeds=["lot4"]).execute()
        assert fresh.value_rows() == [("auction1",)]

    def _serial_mix(self, engine, worker: int):
        """The same query mix as _mix, without the cache churn calls."""
        snapshots = []
        for iteration in range(self.ITERATIONS):
            source = SOURCES[(worker + iteration) % len(SOURCES)]
            result = engine.spinql(source).execute()
            snapshots.append(
                (_result_key(result), [round(p, 12) for p in result.probabilities()])
            )
            seeds = SEED_SETS[(worker * 3 + iteration) % len(SEED_SETS)]
            snapshots.append(
                (_result_key(engine.spinql(TRAVERSE, seeds=seeds).execute(seeds=seeds)), None)
            )
        return snapshots


class TestConcurrentBatches:
    def test_execute_many_concurrent_equals_serial(self, engine):
        query = engine.spinql(TRAVERSE, seeds=[])
        batches = [{"seeds": seeds} for seeds in SEED_SETS * 4]
        serial = query.execute_many(batches)
        concurrent = query.execute_many(batches, max_workers=4)
        assert [_result_key(result) for result in concurrent] == [
            _result_key(result) for result in serial
        ]

    def test_engine_execute_many_delegates(self, engine):
        query = engine.spinql(TRAVERSE, seeds=[])
        batches = [{"seeds": seeds} for seeds in SEED_SETS]
        results = engine.execute_many(query, batches, max_workers=2)
        assert [_result_key(result) for result in results] == [
            _result_key(query.execute(seeds=batch["seeds"])) for batch in batches
        ]

    def test_top_many_concurrent_equals_serial(self, engine):
        query = engine.traverse("hasAuction")
        batches = [{"seeds": seeds} for seeds in SEED_SETS * 2]
        serial = query.top_many(2, batches)
        concurrent = query.top_many(2, batches, max_workers=4)
        assert concurrent == serial
        # deterministic batch ordering: element i always answers batch i
        for pairs, batch in zip(concurrent, batches):
            expected = query.top(2, seeds=batch["seeds"])
            assert pairs == expected

    def test_concurrent_execution_compiles_once(self, engine):
        query = engine.spinql(TRAVERSE, seeds=[])
        stats = engine.plan_cache.statistics
        misses_before = stats.misses
        query.execute_many(
            [{"seeds": seeds} for seeds in SEED_SETS * 3], max_workers=4
        )
        # _prepare() compiled serially before the pool spun up
        assert stats.misses == misses_before + 1
