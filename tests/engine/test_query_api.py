"""The lazy Query API: laziness, fluent chaining, explain, bindings."""

import pytest

from repro.engine import Engine, connect
from repro.engine.query import as_probabilistic
from repro.errors import EngineError
from repro.pra.relation import ProbabilisticRelation

TRIPLES = [
    ("product1", "type", "product"),
    ("product1", "category", "toy"),
    ("product1", "description", "wooden train set for children"),
    ("product2", "type", "product"),
    ("product2", "category", "book"),
    ("product2", "description", "history of trains and railways"),
    ("product3", "type", "product"),
    ("product3", "category", "toy"),
    ("product3", "description", "plastic toy car with remote control"),
]


@pytest.fixture
def engine():
    return connect().load_triples(TRIPLES)


def result_pairs_reference(result, k):
    """Full-sort-then-slice reference, independent of the rank-aware path."""
    ranked = ProbabilisticRelation(
        result.sorted_by_probability().relation.head(k), validate=False
    )
    nodes = ranked.relation.column(ranked.value_columns[0]).to_list()
    return [(node, float(p)) for node, p in zip(nodes, ranked.probabilities())]


class TestLaziness:
    def test_spinql_does_not_execute_on_construction(self, engine):
        query = engine.spinql("bad = SELECT [$1=\"x\"] (missing_table);")
        # construction is fine; only execution resolves the scan
        with pytest.raises(Exception):
            query.execute()

    def test_builder_chain_is_immutable(self, engine):
        base = engine.table("triples")
        filtered = base.where(property="category")
        assert base.plan is not filtered.plan
        assert base.columns == ["subject", "property", "object"]
        assert filtered.columns == base.columns

    def test_strategy_query_is_reusable_across_queries(self, engine):
        strategy = engine.strategy("toy", category="toy")
        first = strategy.execute(query="wooden train")
        second = strategy.execute(query="remote control")
        assert first.query == "wooden train"
        assert second.query == "remote control"


class TestFluentBuilder:
    def test_where_select_traverse(self, engine):
        rows = (
            engine.table("triples")
            .where(property="category", object="toy")
            .select("subject")
            .traverse("description")
            .execute()
            .value_rows()
        )
        texts = {row[0] for row in rows}
        assert texts == {
            "wooden train set for children",
            "plastic toy car with remote control",
        }

    def test_select_by_position_and_alias(self, engine):
        query = engine.table("triples").select(1, doc=3)
        assert query.columns == ["subject", "doc"]
        result = query.execute()
        assert result.value_columns == ["subject", "doc"]

    def test_where_unknown_column_raises(self, engine):
        with pytest.raises(EngineError, match="unknown column"):
            engine.table("triples").where(nope="x")

    def test_where_without_arguments_raises(self, engine):
        with pytest.raises(EngineError, match="needs a predicate"):
            engine.table("triples").where()

    def test_rank_requires_two_columns(self, engine):
        query = engine.table("triples").select("subject").rank("train")
        with pytest.raises(EngineError, match="two-column"):
            query.execute()

    def test_rank_returns_sorted_probabilities(self, engine):
        ranked = (
            engine.table("triples")
            .where(property="description")
            .select("subject", "object")
            .rank("wooden train")
        )
        pairs = ranked.top(3)
        assert pairs[0][0] == "product1"
        probabilities = [probability for _, probability in pairs]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_rank_query_override_at_execute(self, engine):
        ranked = (
            engine.table("triples")
            .where(property="description")
            .select("subject", "object")
            .rank()
        )
        with pytest.raises(EngineError, match="no query"):
            ranked.execute()
        assert ranked.top(1, query="remote control car")[0][0] == "product3"


class TestTraverseFrontEnd:
    def test_traverse_with_seed_shapes(self, engine):
        for seeds in (["product1"], [("product1", 1.0)], "product1"):
            result = engine.traverse("description", seeds=seeds).execute()
            assert result.value_rows() == [("wooden train set for children",)]

    def test_traverse_backward(self, engine):
        result = engine.traverse(
            "category", seeds=["toy"], direction="backward"
        ).execute()
        assert {row[0] for row in result.value_rows()} == {"product1", "product3"}

    def test_traverse_unbound_seeds_is_reusable(self, engine):
        hop = engine.traverse("category")
        assert hop.execute(seeds=["product1"]).value_rows() == [("toy",)]
        assert hop.execute(seeds=["product2"]).value_rows() == [("book",)]

    def test_invalid_direction_raises(self, engine):
        with pytest.raises(EngineError, match="direction"):
            engine.traverse("category", direction="sideways")


class TestExplain:
    def test_spinql_explain_has_all_sections(self, engine):
        report = engine.spinql(
            'docs = SELECT [$2="description"] (triples);'
        ).explain()
        assert "SpinQL program:" in report
        assert "PRA plan:" in report
        assert "Optimized PRA plan:" in report
        assert "SQL translation:" in report

    def test_optimized_plan_fuses_selections(self, engine):
        report = engine.spinql(
            'a = SELECT [$3="toy"] (SELECT [$2="category"] (triples));'
        ).explain()
        raw, optimized = report.split("Optimized PRA plan:")
        assert optimized.count("SELECT [") == 1  # fused into one conjunction
        assert raw.split("PRA plan:")[1].count("SELECT [") == 2

    def test_strategy_explain_renders_diagram(self, engine):
        diagram = engine.strategy("toy").explain()
        assert "Rank by Text" in diagram

    def test_search_explain_reports_statistics_state(self, engine):
        engine.store.register_docs_view(
            "docs",
            filter_property="category",
            filter_value="toy",
            text_property="description",
        )
        query = engine.search("docs", "train")
        assert "cold" in query.explain()
        query.execute()
        assert "hot" in query.explain()

    def test_parameter_rendered_in_sql(self, engine):
        report = engine.spinql(
            "out = TRAVERSE ['category'] (seeds);", seeds=["product1"]
        ).explain()
        assert ":seeds" in report
        assert "Param(seeds)" in report

    def test_explain_top_k_shows_pushed_down_top(self, engine):
        # the weight commutes with TOP, so the optimized plan must show the
        # TOP node pushed below the WEIGHT while the raw plan keeps it on top
        report = engine.spinql(
            'out = WEIGHT [0.5] (PROJECT [$1 AS node] (triples));'
        ).explain(top_k=4)
        raw, optimized = report.split("Optimized PRA plan:")
        raw_plan = raw.split("PRA plan:")[1]
        assert raw_plan.strip().startswith("TOP [4]")
        optimized_lines = [line for line in optimized.splitlines() if line.strip()]
        assert optimized_lines[0].startswith("WEIGHT")
        assert any(line.strip().startswith("TOP [4]") for line in optimized_lines[1:])

    def test_engine_explain_accepts_top_k(self, engine):
        report = engine.explain(
            'out = PROJECT [$1 AS node] (triples);', top_k=2
        )
        assert "TOP [2]" in report

    def test_builder_top_k_explain_shows_top_node(self, engine):
        report = engine.table("triples").select("subject").top_k(3).explain()
        assert "TOP [3]" in report


class TestRankAwareTop:
    def test_builder_top_matches_full_execute(self, engine):
        query = engine.table("triples").where(property="category").select("subject", "object")
        full = result_pairs_reference(query.execute(), 2)
        assert query.top(2) == full

    def test_spinql_top_matches_full_execute(self, engine):
        query = engine.spinql('out = PROJECT [$1 AS node] (triples);')
        full = result_pairs_reference(query.execute(), 3)
        assert query.top(3) == full

    def test_tie_break_is_deterministic_regression(self, engine):
        # equal probabilities: results must come back in value order, not in
        # whatever order evaluation produced the rows
        pairs = engine.table("triples").select("subject").top(3)
        assert [node for node, _ in pairs] == sorted(node for node, _ in pairs)


class TestBindings:
    def test_as_probabilistic_shapes(self):
        from repro.relational.column import DataType
        from repro.relational.relation import Relation
        from repro.relational.schema import Field, Schema

        pairs = as_probabilistic([("a", 0.5), ("b", 1.0)])
        assert pairs.value_rows() == [("a",), ("b",)]
        assert list(pairs.probabilities()) == [0.5, 1.0]

        bare = as_probabilistic(["a", "b"])
        assert list(bare.probabilities()) == [1.0, 1.0]

        relation = Relation.from_rows(Schema([Field("n", DataType.STRING)]), [("x",)])
        lifted = as_probabilistic(relation)
        assert isinstance(lifted, ProbabilisticRelation)

        assert as_probabilistic(pairs) is pairs

    def test_as_probabilistic_rejects_garbage(self):
        with pytest.raises(EngineError):
            as_probabilistic(42)

    def test_undeclared_spinql_parameter_raises(self, engine):
        query = engine.spinql('out = PROJECT [$1 AS n] (triples);')
        with pytest.raises(EngineError, match="undeclared parameters"):
            query.execute(triples=["product1"])  # 'triples' compiled to a scan

    def test_undeclared_builder_parameter_raises(self, engine):
        hop = engine.traverse("category")
        with pytest.raises(EngineError, match="undeclared parameters"):
            hop.execute(seedz=["product1"])

    def test_strategy_unknown_name_raises(self, engine):
        with pytest.raises(EngineError, match="unknown strategy"):
            engine.strategy("nope")

    def test_strategy_graph_with_builder_kwargs_raises(self, engine):
        graph = engine.strategy("toy").graph
        with pytest.raises(EngineError, match="builder keyword"):
            engine.strategy(graph, category="toy")


class TestEngineSession:
    def test_connect_info(self, engine):
        info = engine.connect_info()
        assert info["triples"] == len(TRIPLES)
        assert "triples" in info["tables"]

    def test_from_triples_classmethod(self):
        engine = Engine.from_triples(TRIPLES)
        assert engine.store.num_triples == len(TRIPLES)

    def test_clear_caches_resets_plan_cache(self, engine):
        engine.spinql('a = SELECT [$2="category"] (triples);').execute()
        assert len(engine.plan_cache) > 0
        engine.clear_caches()
        assert len(engine.plan_cache) == 0
