"""Sharded / pooled execution is bit-identical to the unsharded engine.

The scatter-gather contract (see :mod:`repro.engine.executors`): every
query — SpinQL plans, rank-aware top-k, traversal, keyword search, full
strategies — returns exactly what the single-engine path returns, scores,
row order and ties included, for every shard count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Engine
from repro.engine.executors import (
    GATHER_ROW_COLUMN,
    InProcessShard,
    augment_fragment,
    extract_segments,
    gather_concat,
    gather_top,
    match_segment,
)
from repro.ir.ranking import LanguageModel
from repro.pra.plan import PraJoin, PraParam, PraProject, PraScan, PraSelect, PraTop, PraWeight
from repro.pra.assumptions import Assumption
from repro.pra.expressions import PositionalRef
from repro.relational.column import Column, DataType
from repro.relational.expressions import BinaryOp, Literal
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.workloads import (
    generate_auction_triples,
    generate_expert_triples,
    generate_product_triples,
)


def _docs_relation(descriptions: dict) -> Relation:
    schema = Schema([Field("docID", DataType.STRING), Field("data", DataType.STRING)])
    return Relation(
        schema,
        [
            Column(list(descriptions.keys()), DataType.STRING),
            Column(list(descriptions.values()), DataType.STRING),
        ],
    )


def _workload_engines():
    """(name, engine, query) per scenario — toy, auction, experts."""
    toy = generate_product_triples(120, seed=21)
    toy_engine = Engine.from_triples(toy.triples)
    toy_engine.create_table("docs", _docs_relation(toy.descriptions))
    toy_query = " ".join(next(iter(toy.descriptions.values())).split()[:3])

    auction = generate_auction_triples(120, seed=37)
    auction_engine = Engine.from_triples(auction.triples)
    auction_engine.create_table("docs", _docs_relation(auction.lot_descriptions))
    auction_query = " ".join(auction.lot_descriptions["lot1"].split()[:3])

    experts = generate_expert_triples(20, 80, seed=77)
    experts_engine = Engine.from_triples(experts.triples)
    experts_query = experts.query_for_topic(experts.topics[0])

    return [
        ("toy", toy_engine, toy_query),
        ("auction", auction_engine, auction_query),
        ("experts", experts_engine, experts_query),
    ]


@pytest.fixture(scope="module")
def workloads():
    prepared = _workload_engines()
    for _name, engine, query in prepared:
        if "docs" in engine.database.table_names():
            engine.search("docs", query).execute()  # warm stats split into the shards
    return prepared


SPINQL_PROGRAMS = [
    'out = SELECT [$2="type"] (triples);',
    'out = PROJECT INDEPENDENT [$1] ( SELECT [$2="type"] (triples) );',
    'out = JOIN INDEPENDENT [$1=$1] ( SELECT [$2="type"] (triples),'
    ' SELECT [$2="type"] (triples) );',
]


def _assert_relations_identical(actual, expected):
    assert actual.relation.schema.names == expected.relation.schema.names
    assert actual.value_rows() == expected.value_rows()
    np.testing.assert_array_equal(actual.probabilities(), expected.probabilities())


class TestShardedEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_all_workloads_all_front_ends(self, workloads, tmp_path, shards):
        for name, engine, query in workloads:
            path = engine.save(tmp_path / f"{name}-{shards}", shards=shards)
            opened = Engine.open_sharded(path)
            try:
                for program in SPINQL_PROGRAMS:
                    _assert_relations_identical(
                        opened.spinql(program).execute(), engine.spinql(program).execute()
                    )
                    assert opened.spinql(program).top(7) == engine.spinql(program).top(7)
                # traversal (parameterized plan)
                subjects = engine.store.subjects()[:5]
                hop_property = "hasAuction" if name == "auction" else (
                    "authoredBy" if name == "experts" else "category"
                )
                expected_hop = engine.traverse(hop_property, subjects).execute()
                actual_hop = opened.traverse(hop_property, subjects).execute()
                _assert_relations_identical(actual_hop, expected_hop)
                # keyword search: full ranking and rank-aware top-k
                if "docs" in engine.database.table_names():
                    expected_full = engine.search("docs", query).execute()
                    actual_full = opened.search("docs", query).execute()
                    assert actual_full.ranked.as_pairs() == expected_full.ranked.as_pairs()
                    expected_top = engine.search("docs", query).top(10)
                    assert opened.search("docs", query).top(10) == expected_top
                # whole strategy runs (coordinator gather path)
                expected_run = engine.strategy(name, query=query).top(10)
                assert opened.strategy(name, query=query).top(10) == expected_run
            finally:
                opened.close()

    def test_search_with_alternative_model(self, workloads, tmp_path):
        _name, engine, query = workloads[1]
        path = engine.save(tmp_path / "lm", shards=3)
        opened = Engine.open_sharded(path)
        try:
            model = LanguageModel(smoothing="dirichlet", mu=500.0)
            expected = engine.search("docs", query, model=model).top(10)
            actual = opened.search("docs", query, model=model).top(10)
            assert actual == expected
        finally:
            opened.close()

    def test_top_k_scatters_at_most_k_per_shard(self, workloads, tmp_path):
        _name, engine, _query = workloads[1]
        path = engine.save(tmp_path / "topk", shards=3)
        opened = Engine.open_sharded(path)
        try:
            k = 5
            opened.spinql('out = SELECT [$2="type"] (triples);').top(k)
            scatter = opened._plan_executor.last_scatter
            assert scatter["segments"] == 1
            for counts in scatter["per_shard_rows"]:
                assert all(count <= k for count in counts)
        finally:
            opened.close()

    def test_search_scatters_at_most_k_candidates_per_shard(self, workloads, tmp_path):
        _name, engine, query = workloads[1]
        path = engine.save(tmp_path / "searchk", shards=3)
        opened = Engine.open_sharded(path)
        try:
            opened.search("docs", query).top(4)
            scatter = opened._plan_executor.last_scatter
            assert all(count <= 4 for count in scatter["per_shard_candidates"])
        finally:
            opened.close()


class TestScatterPlanning:
    PARTITIONED = {"triples", "docs"}

    def _partitioned(self, table: str) -> bool:
        return table in self.PARTITIONED

    def test_select_chain_over_partitioned_scan_scatters(self):
        plan = PraSelect(
            PraScan("triples"), BinaryOp("=", PositionalRef(2), Literal("type"))
        )
        segment = match_segment(plan, self._partitioned)
        assert segment is not None and segment.table == "triples"
        assert segment.top_k is None

    def test_top_over_chain_scatters_with_k(self):
        plan = PraTop(PraWeight(PraScan("docs"), 0.5), 7)
        segment = match_segment(plan, self._partitioned)
        assert segment is not None and segment.top_k == 7

    def test_non_partitioned_scan_does_not_scatter(self):
        assert match_segment(PraScan("other"), self._partitioned) is None

    def test_join_splits_into_two_segments(self):
        plan = PraJoin(
            PraSelect(PraScan("triples"), BinaryOp("=", PositionalRef(2), Literal("a"))),
            PraScan("docs"),
            [(1, 1)],
            Assumption.INDEPENDENT,
        )
        segments: list = []
        rewritten = extract_segments(plan, self._partitioned, segments)
        assert len(segments) == 2
        assert isinstance(rewritten, PraJoin)
        assert isinstance(rewritten.left, PraParam) and isinstance(rewritten.right, PraParam)

    def test_merge_above_chain_stays_on_coordinator(self):
        plan = PraProject(PraScan("triples"), [1], Assumption.INDEPENDENT)
        segments: list = []
        rewritten = extract_segments(plan, self._partitioned, segments)
        # the scan scatters; the duplicate-merging projection does not
        assert len(segments) == 1 and segments[0][1].top_k is None
        assert isinstance(rewritten, PraProject)

    def test_inner_top_is_not_absorbed_by_outer_select(self):
        plan = PraSelect(
            PraTop(PraScan("triples"), 3),
            BinaryOp("=", PositionalRef(2), Literal("a")),
        )
        segments: list = []
        rewritten = extract_segments(plan, self._partitioned, segments)
        # TOP must complete globally before the select runs on the coordinator
        assert len(segments) == 1 and segments[0][1].top_k == 3
        assert isinstance(rewritten, PraSelect)


class TestGatherKernels:
    def _fragments(self):
        schema = Schema([Field("k", DataType.STRING)])
        full = Relation(schema, [Column([f"v{i}" for i in range(10)], DataType.STRING)])
        indices = [np.array([0, 3, 4, 9]), np.array([1, 2, 5]), np.array([6, 7, 8])]
        return full, [
            augment_fragment(full.take(part), part) for part in indices
        ]

    def test_gather_concat_restores_original_order(self):
        full, fragments = self._fragments()
        gathered = gather_concat(fragments)
        assert GATHER_ROW_COLUMN not in gathered.relation.schema
        assert gathered.relation.column("k").to_list() == full.column("k").to_list()

    def test_gather_top_takes_global_k_deterministically(self):
        _full, fragments = self._fragments()
        gathered = gather_top(fragments, 4)
        # all probabilities are 1.0, so ties break by value column then row id
        assert gathered.relation.column("k").to_list() == ["v0", "v1", "v2", "v3"]

    def test_gather_concat_with_empty_fragments(self):
        schema = Schema([Field("k", DataType.STRING)])
        full = Relation(schema, [Column(["a", "b"], DataType.STRING)])
        fragments = [
            augment_fragment(full.take(np.array([], dtype=np.int64)), np.array([], dtype=np.int64)),
            augment_fragment(full, np.array([0, 1])),
        ]
        gathered = gather_concat(fragments)
        assert gathered.relation.column("k").to_list() == ["a", "b"]


class TestEngineThreadPool:
    def test_batch_pool_is_reused_and_closed(self):
        workload = generate_auction_triples(60, seed=5)
        engine = Engine.from_triples(workload.triples)
        query = engine.spinql('out = SELECT [$2="hasAuction"] (triples);')
        serial = query.execute_many([{}] * 4)
        pool_a = engine._batch_pool(2)
        concurrent = query.execute_many([{}] * 4, max_workers=2)
        assert engine._batch_pool(2) is pool_a  # reused, not rebuilt per call
        assert [r.value_rows() for r in concurrent] == [r.value_rows() for r in serial]
        engine.close()
        assert engine._thread_pool is None

    def test_batch_pool_grows_for_larger_requests(self):
        workload = generate_auction_triples(40, seed=5)
        engine = Engine.from_triples(workload.triples)
        small = engine._batch_pool(2)
        large = engine._batch_pool(4)
        assert large is not small
        assert engine._batch_pool(3) is large  # still big enough
        engine.close()


class TestBatchOverSharded:
    def test_execute_many_on_sharded_engine_does_not_deadlock(self, tmp_path):
        """Batch tasks scatter from inside the batch pool's threads.

        The batch pool and the scatter pool must be distinct: with one
        shared bounded pool, every thread holds a batch task blocked on
        inner scatter futures that have no thread left to run on.
        """
        import threading

        workload = generate_auction_triples(60, seed=5)
        path = Engine.from_triples(workload.triples).save(tmp_path / "snap", shards=2)
        opened = Engine.open_sharded(path)
        try:
            query = opened.spinql('out = SELECT [$2="hasAuction"] (triples);')
            expected = query.execute().value_rows()
            outcome: dict = {}

            def run():
                outcome["results"] = query.execute_many([{}] * 4, max_workers=2)

            worker = threading.Thread(target=run, daemon=True)
            worker.start()
            worker.join(timeout=60)
            assert not worker.is_alive(), "execute_many deadlocked on a sharded engine"
            assert [r.value_rows() for r in outcome["results"]] == [expected] * 4
        finally:
            opened.close()


class TestInProcessShardBackend:
    def test_fragment_and_store_roundtrip(self, tmp_path):
        workload = generate_auction_triples(80, seed=5)
        engine = Engine.from_triples(workload.triples)
        path = engine.save(tmp_path / "snap", shards=2)
        opened = Engine.open_sharded(path)
        try:
            backend = opened._plan_executor.backends[0]
            assert isinstance(backend, InProcessShard)
            relation, rows = backend.fragment("triples")
            assert relation.num_rows == len(rows)
            triples, store_rows = backend.triples_fragment()
            assert len(triples) == len(store_rows)
        finally:
            opened.close()
