"""Unit tests for the repo-invariant lint engine and its rules.

Each rule is exercised on synthetic bad/good sources at in-scope paths,
plus the suppression pragma machinery, and finally the whole real repo —
the same check CI runs — which must be clean.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.lint import (
    ALL_RULES,
    BoundedLogBufferRule,
    LengthPrefixedWriteRule,
    LockedCacheMutationRule,
    NoWallClockRule,
    OrderedGatherRule,
    StableSortRule,
    lint_paths,
    lint_source,
    suppressed_rules,
)

KERNEL_PATH = Path("src/repro/pra/kernels.py")
GATHER_PATH = Path("src/repro/engine/executors.py")
ENGINE_PATH = Path("src/repro/engine/registry.py")
BENCH_PATH = Path("benchmarks/bench_new.py")
CODEC_PATH = Path("src/repro/serving/codec.py")


def rule_names(violations) -> list[str]:
    return [violation.rule for violation in violations]


class TestStableSort:
    def test_flags_unqualified_numpy_argsort(self):
        source = "import numpy as np\norder = np.argsort(keys)\n"
        violations = lint_source(source, KERNEL_PATH, [StableSortRule()])
        assert rule_names(violations) == ["RL001"]
        assert violations[0].line == 2
        assert 'kind="stable"' in violations[0].message

    def test_flags_method_argsort(self):
        source = "order = values.argsort()\n"
        assert rule_names(lint_source(source, KERNEL_PATH, [StableSortRule()])) == ["RL001"]

    def test_multi_line_stable_call_is_clean(self):
        # the reason the linter is AST-based: a line-oriented grep would
        # flag (or miss) this depending on where the kwarg lands
        source = "import numpy as np\norder = np.argsort(\n    keys,\n    kind=\"stable\",\n)\n"
        assert lint_source(source, KERNEL_PATH, [StableSortRule()]) == []

    def test_python_sorted_is_not_flagged(self):
        source = "result = sorted(values)\nvalues.sort()\n"
        assert lint_source(source, KERNEL_PATH, [StableSortRule()]) == []

    def test_out_of_scope_path_is_skipped(self):
        source = "import numpy as np\norder = np.argsort(keys)\n"
        assert lint_source(source, Path("scripts/tool.py"), [StableSortRule()]) == []


class TestOrderedGather:
    def test_flags_gather_without_reorder(self):
        source = (
            "import numpy as np\n"
            "def gather_rows(pieces):\n"
            "    return np.concatenate(pieces)\n"
        )
        violations = lint_source(source, GATHER_PATH, [OrderedGatherRule()])
        assert rule_names(violations) == ["RL002"]
        assert "gather_rows" in violations[0].message

    def test_stable_argsort_in_gather_is_clean(self):
        source = (
            "import numpy as np\n"
            "def gather_rows(pieces, rowids):\n"
            "    order = np.argsort(rowids, kind=\"stable\")\n"
            "    return np.concatenate(pieces)[order]\n"
        )
        assert lint_source(source, GATHER_PATH, [OrderedGatherRule()]) == []

    def test_delegating_gather_is_clean(self):
        source = (
            "def gather_alias(pieces, rowids):\n"
            "    return gather_rows(pieces, rowids)\n"
        )
        assert lint_source(source, GATHER_PATH, [OrderedGatherRule()]) == []

    def test_only_applies_to_executors_module(self):
        source = "def gather_rows(pieces):\n    return pieces\n"
        assert lint_source(source, KERNEL_PATH, [OrderedGatherRule()]) == []


LOCKED_CLASS = """\
import threading

class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._cache = {{}}

    def put(self, key, value):
        {body}
"""


class TestLockedCacheMutation:
    def test_flags_unguarded_subscript_assignment(self):
        source = LOCKED_CLASS.format(body="self._cache[key] = value")
        violations = lint_source(source, ENGINE_PATH, [LockedCacheMutationRule()])
        assert rule_names(violations) == ["RL003"]
        assert "'put' mutates 'self._cache'" in violations[0].message

    def test_guarded_mutation_is_clean(self):
        source = LOCKED_CLASS.format(
            body="with self._lock:\n            self._cache[key] = value"
        )
        assert lint_source(source, ENGINE_PATH, [LockedCacheMutationRule()]) == []

    def test_flags_unguarded_clear_and_pop(self):
        source = LOCKED_CLASS.format(body="self._cache.clear()\n        self._cache.pop(key)")
        violations = lint_source(source, ENGINE_PATH, [LockedCacheMutationRule()])
        assert rule_names(violations) == ["RL003", "RL003"]

    def test_lockless_class_is_exempt(self):
        source = (
            "class Local:\n"
            "    def __init__(self):\n"
            "        self._cache = {}\n"
            "    def put(self, key, value):\n"
            "        self._cache[key] = value\n"
        )
        assert lint_source(source, ENGINE_PATH, [LockedCacheMutationRule()]) == []

    def test_reads_are_not_flagged(self):
        source = LOCKED_CLASS.format(body="return self._cache.get(key)")
        assert lint_source(source, ENGINE_PATH, [LockedCacheMutationRule()]) == []


class TestNoWallClock:
    def test_flags_time_time_in_benchmarks(self):
        source = "import time\nstart = time.time()\n"
        violations = lint_source(source, BENCH_PATH, [NoWallClockRule()])
        assert rule_names(violations) == ["RL004"]
        assert "perf_counter" in violations[0].message

    def test_flags_datetime_now(self):
        source = "import datetime\nstamp = datetime.datetime.now()\n"
        assert rule_names(lint_source(source, BENCH_PATH, [NoWallClockRule()])) == ["RL004"]

    def test_perf_counter_is_clean(self):
        source = "import time\nstart = time.perf_counter()\n"
        assert lint_source(source, BENCH_PATH, [NoWallClockRule()]) == []

    def test_non_benchmark_code_may_read_the_clock(self):
        source = "import time\nstart = time.time()\n"
        assert lint_source(source, Path("src/repro/cli.py"), [NoWallClockRule()]) == []


class TestLengthPrefixedWrite:
    def test_flags_raw_write_outside_write_frame(self):
        source = "def push(stream, payload):\n    stream.write(payload)\n"
        violations = lint_source(source, CODEC_PATH, [LengthPrefixedWriteRule()])
        assert rule_names(violations) == ["RL005"]
        assert "write_frame" in violations[0].message

    def test_write_inside_write_frame_is_allowed(self):
        source = (
            "def write_frame(stream, payload):\n"
            "    stream.write(len(payload).to_bytes(4, 'big'))\n"
            "    stream.write(payload)\n"
        )
        assert lint_source(source, CODEC_PATH, [LengthPrefixedWriteRule()]) == []

    def test_send_bytes_must_wrap_encode_message(self):
        source = "def push(conn, obj):\n    conn.send_bytes(obj)\n"
        violations = lint_source(source, Path("src/repro/serving/pool.py"), [LengthPrefixedWriteRule()])
        assert rule_names(violations) == ["RL005"]

    def test_send_bytes_of_encoded_frame_is_clean(self):
        source = "def push(conn, obj):\n    conn.send_bytes(encode_message(obj))\n"
        assert (
            lint_source(source, Path("src/repro/serving/pool.py"), [LengthPrefixedWriteRule()])
            == []
        )


LOG_CLASS = """
import threading
from collections import deque

class Log:
    def __init__(self):
        self._lock = threading.Lock()
        self._records = deque(maxlen=100)

    def record(self, entry):
        {body}
"""


class TestBoundedLogBuffer:
    def test_flags_plain_list_buffer(self):
        source = (
            "class Log:\n"
            "    def __init__(self):\n"
            "        self._records = []\n"
        )
        violations = lint_source(source, ENGINE_PATH, [BoundedLogBufferRule()])
        assert rule_names(violations) == ["RL006"]
        assert "unbounded list buffer" in violations[0].message

    def test_flags_deque_without_maxlen(self):
        source = (
            "import threading\n"
            "from collections import deque\n"
            "class Log:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._event_log = deque()\n"
        )
        violations = lint_source(source, ENGINE_PATH, [BoundedLogBufferRule()])
        assert rule_names(violations) == ["RL006"]
        assert "maxlen" in violations[0].message

    def test_flags_buffer_class_without_lock(self):
        source = (
            "from collections import deque\n"
            "class Log:\n"
            "    def __init__(self):\n"
            "        self._records = deque(maxlen=10)\n"
        )
        violations = lint_source(source, ENGINE_PATH, [BoundedLogBufferRule()])
        assert rule_names(violations) == ["RL006"]
        assert "no threading.Lock" in violations[0].message

    def test_flags_unguarded_append(self):
        source = LOG_CLASS.format(body="self._records.append(entry)")
        violations = lint_source(source, ENGINE_PATH, [BoundedLogBufferRule()])
        assert rule_names(violations) == ["RL006"]
        assert "'record' mutates log buffer 'self._records'" in violations[0].message

    def test_guarded_append_is_clean(self):
        source = LOG_CLASS.format(
            body="with self._lock:\n            self._records.append(entry)"
        )
        assert lint_source(source, ENGINE_PATH, [BoundedLogBufferRule()]) == []

    def test_segment_matching_skips_catalog(self):
        # "catalog" contains "log" as a substring, but not as a "_" segment
        source = (
            "class Database:\n"
            "    def __init__(self):\n"
            "        self.catalog = []\n"
            "    def add(self, table):\n"
            "        self.catalog.append(table)\n"
        )
        assert lint_source(source, ENGINE_PATH, [BoundedLogBufferRule()]) == []

    def test_reads_are_not_flagged(self):
        source = LOG_CLASS.format(body="return list(self._records)")
        assert lint_source(source, ENGINE_PATH, [BoundedLogBufferRule()]) == []


class TestSuppression:
    def test_pragma_parsing(self):
        source = "x = 1  # repro-lint: disable=RL001, RL003\ny = 2\nz = 3  # repro-lint: disable=all\n"
        assert suppressed_rules(source) == {1: {"RL001", "RL003"}, 3: {"all"}}

    def test_named_pragma_suppresses_only_that_rule(self):
        source = "import numpy as np\norder = np.argsort(keys)  # repro-lint: disable=RL001\n"
        assert lint_source(source, KERNEL_PATH, [StableSortRule()]) == []

    def test_disable_all_suppresses_every_rule(self):
        source = "import numpy as np\norder = np.argsort(keys)  # repro-lint: disable=all\n"
        assert lint_source(source, KERNEL_PATH, ALL_RULES) == []

    def test_pragma_on_other_line_does_not_suppress(self):
        source = "# repro-lint: disable=RL001\nimport numpy as np\norder = np.argsort(keys)\n"
        assert rule_names(lint_source(source, KERNEL_PATH, [StableSortRule()])) == ["RL001"]


class TestRepoIsClean:
    def test_whole_repo_passes_all_rules(self):
        # the exact invocation CI runs via scripts/repro_lint.py
        root = Path(__file__).resolve().parents[2]
        targets = [root / "src", root / "benchmarks", root / "scripts"]
        violations = lint_paths([p for p in targets if p.exists()], ALL_RULES, root=root)
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_violation_render_format(self):
        source = "import numpy as np\norder = np.argsort(keys)\n"
        violation = lint_source(source, KERNEL_PATH, [StableSortRule()])[0]
        assert violation.render() == (
            'src/repro/pra/kernels.py:2: RL001: argsort() without kind="stable" '
            "breaks the deterministic tie-order contract"
        )
