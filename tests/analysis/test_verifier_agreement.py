"""Property-based agreement between the static verifier and the runtime.

Three contracts, over the same random-plan strategy the plan-equivalence
harness uses (fixed Hypothesis seed, dyadic probabilities):

* **soundness** — a plan the verifier passes never raises at evaluation,
  and the statically inferred output schema matches the evaluated relation;
* **completeness on known-bad shapes** — a mutated plan (out-of-range
  positional, invalid weight) is flagged with the matching diagnostic code
  *and* raises a typed error at evaluation: no false "ok";
* **extraction semantics** — the shard-safety classification
  (``repro.analysis.locality.classify``, the executors' own segment walk)
  is a pure restructuring: evaluating each extracted segment and binding the
  results into the coordinator remainder reproduces the direct evaluation
  bit-for-bit, and segments only ever cover partitioned tables.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import verify_plan
from repro.analysis.locality import classify
from repro.analysis.verifier import CatalogSchemaProvider
from repro.errors import ReproError
from repro.pra.assumptions import Assumption
from repro.pra.evaluator import PRAEvaluator
from repro.pra.expressions import PositionalRef
from repro.pra.plan import PraJoin, PraScan, PraSelect, PraTop, PraUnite, PraWeight
from repro.relational.column import DataType
from repro.relational.database import Database
from repro.relational.expressions import BinaryOp, Literal
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from tests.property.test_plan_equivalence import EVALUATOR, SETTINGS, plans

# ---------------------------------------------------------------------------
# verifier vs. evaluator
# ---------------------------------------------------------------------------


class TestVerifierSoundness:
    @SETTINGS
    @given(st.data())
    def test_check_pass_plans_never_raise_at_eval(self, data):
        plan, _arity = data.draw(plans())
        report = verify_plan(plan)
        assert report.errors == [], report.render()
        result = EVALUATOR.evaluate(plan)  # must not raise
        if report.output_columns is not None:
            inferred = [name for name, _dtype in report.output_columns]
            assert inferred == list(result.relation.schema.names[:-1])

    @SETTINGS
    @given(st.data())
    def test_out_of_range_projection_is_flagged_and_raises(self, data):
        plan, arity = data.draw(plans())
        from repro.pra.plan import PraProject

        broken = PraProject(plan, [arity + 1], Assumption.INDEPENDENT)
        report = verify_plan(broken)
        assert any(d.code == "position-out-of-range" for d in report.errors)
        with pytest.raises(ReproError):
            EVALUATOR.evaluate(broken)

    @SETTINGS
    @given(st.data())
    def test_invalid_weight_is_flagged_and_raises(self, data):
        plan, _arity = data.draw(plans())
        factor = data.draw(st.sampled_from([-0.5, 1.5, 2.0]))
        broken = PraWeight(plan, factor)
        report = verify_plan(broken)
        assert any(d.code == "weight-out-of-range" for d in report.errors)
        with pytest.raises(ReproError):
            EVALUATOR.evaluate(broken)


# ---------------------------------------------------------------------------
# classification vs. execution semantics
# ---------------------------------------------------------------------------

TABLES = ("alpha", "beta", "gamma")

NODES = ["a", "b", "c", "d", "e"]
DYADIC_P = st.sampled_from([i / 16 for i in range(17)])


def _make_catalog() -> Database:
    """Three two-column probabilistic base tables with fixed, distinct rows."""
    database = Database()
    schema = Schema(
        [
            Field("key", DataType.STRING),
            Field("value", DataType.STRING),
            Field("p", DataType.FLOAT),
        ]
    )
    for offset, name in enumerate(TABLES):
        rows = [
            (NODES[(offset + i) % len(NODES)], NODES[(offset + 2 * i) % len(NODES)], (i + 1) / 16)
            for i in range(6)
        ]
        database.create_table(name, Relation.from_rows(schema, rows))
    return database


CATALOG = _make_catalog()
SCAN_EVALUATOR = PRAEvaluator(CATALOG)


def _draw_chain(draw, table: str):
    """A random SELECT/WEIGHT chain over a scan — the scatterable shape."""
    plan = PraScan(table)
    for _ in range(draw(st.integers(0, 2))):
        if draw(st.booleans()):
            position = draw(st.integers(1, 2))
            plan = PraSelect(
                plan, BinaryOp("=", PositionalRef(position), Literal(draw(st.sampled_from(NODES))))
            )
        else:
            plan = PraWeight(plan, draw(st.sampled_from([0.25, 0.5, 0.75, 1.0])))
    return plan


@st.composite
def scan_plans(draw):
    """Plans over base-table scans: chains, optionally TOP-capped or combined."""
    shape = draw(st.sampled_from(["chain", "top", "join", "unite"]))
    left = _draw_chain(draw, draw(st.sampled_from(TABLES)))
    if shape == "chain":
        return left
    if shape == "top":
        return PraTop(left, draw(st.integers(1, 6)))
    right = _draw_chain(draw, draw(st.sampled_from(TABLES)))
    if shape == "join":
        return PraJoin(left, right, [(1, 1)], Assumption.INDEPENDENT)
    return PraUnite(left, right, Assumption.INDEPENDENT)


class TestClassificationAgreement:
    @SETTINGS
    @given(st.data())
    def test_extraction_is_a_pure_restructuring(self, data):
        plan = data.draw(scan_plans())
        partitioned_tables = set(data.draw(st.sets(st.sampled_from(TABLES))))

        report = classify(plan, lambda table: table in partitioned_tables)

        # segments only ever cover partitioned tables
        assert all(segment.table in partitioned_tables for segment in report.segments)

        direct = SCAN_EVALUATOR.evaluate(plan)
        pieces = {
            name: SCAN_EVALUATOR.evaluate(segment.plan)
            for name, segment in zip(report.parameter_names, report.segments)
        }
        rebuilt = SCAN_EVALUATOR.evaluate(report.coordinator_plan, bindings=pieces)
        # bit-identical: same rows, same order, same probabilities
        assert list(rebuilt.rows()) == list(direct.rows())

    @SETTINGS
    @given(st.data())
    def test_pure_chains_over_partitioned_tables_fully_scatter(self, data):
        table = data.draw(st.sampled_from(TABLES))
        plan = _draw_chain(data.draw, table)
        if data.draw(st.booleans()):
            plan = PraTop(plan, data.draw(st.integers(1, 6)))

        report = classify(plan, lambda name: name == table)
        assert report.fully_scattered
        assert [segment.table for segment in report.segments] == [table]

        nothing = classify(plan, lambda name: False)
        assert not nothing.scatterable
        assert nothing.coordinator_plan is plan

    @SETTINGS
    @given(st.data())
    def test_classification_matches_verifier_locality_note(self, data):
        """``verify_plan(partitioned=...)`` embeds exactly ``classify``'s result."""
        plan = data.draw(scan_plans())
        partitioned_tables = set(data.draw(st.sets(st.sampled_from(TABLES))))
        predicate = lambda table: table in partitioned_tables  # noqa: E731

        report = verify_plan(
            plan, schema_provider=CatalogSchemaProvider(CATALOG), partitioned=predicate
        )
        standalone = classify(plan, predicate)

        assert report.locality is not None
        assert report.locality.to_dict() == standalone.to_dict()
        notes = [d for d in report.diagnostics if d.code == "scatter"]
        assert [d.message for d in notes] == [standalone.render()]
