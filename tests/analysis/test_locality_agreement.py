"""Shard-safety classification must agree with the scatter-gather executor.

``AnalysisReport.locality`` is produced by ``repro.analysis.locality.classify``,
which the scatter-gather executors also call at dispatch time — so for every
plan and every shard count the static segment list must match what the
executor actually scattered (``last_scatter``), and the sharded result must
stay bit-identical to the unsharded engine.  Shard counts 1 through 4.
"""

from __future__ import annotations

import pytest

from repro.engine import Engine
from repro.workloads.products import generate_product_triples

SHARD_COUNTS = (1, 2, 3, 4)

PROGRAMS = {
    "chain": 'docs = SELECT [$2="category"] (triples);',
    "weighted_chain": 'docs = WEIGHT [0.7] (SELECT [$2="category"] (triples));',
    "join": 'docs = JOIN INDEPENDENT [$1=$1] ('
    ' SELECT [$2="category"] (triples), SELECT [$2="description"] (triples) );',
    "unite": "united = UNITE INDEPENDENT ("
    ' SELECT [$2="category"] (triples), SELECT [$2="description"] (triples) );',
}

#: how many scatterable segments each program must classify to
EXPECTED_SEGMENTS = {"chain": 1, "weighted_chain": 1, "join": 2, "unite": 2}


@pytest.fixture(scope="module")
def workload():
    return generate_product_triples(60, seed=11)


@pytest.fixture(scope="module")
def snapshots(workload, tmp_path_factory):
    """One sharded snapshot per shard count, written once for the module."""
    root = tmp_path_factory.mktemp("locality")
    source_engine = Engine.from_triples(workload.triples)
    paths = {}
    try:
        for shards in SHARD_COUNTS:
            path = root / f"snap-{shards}"
            source_engine.save(path, shards=shards)
            paths[shards] = path
    finally:
        source_engine.close()
    return paths


@pytest.fixture(scope="module")
def baseline(workload):
    """Unsharded results, the bit-identity reference."""
    engine = Engine.from_triples(workload.triples)
    try:
        yield {
            name: list(engine.spinql(source).execute().rows())
            for name, source in PROGRAMS.items()
        }
    finally:
        engine.close()


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_classification_matches_executor(snapshots, baseline, name, shards):
    source = PROGRAMS[name]
    engine = Engine.open_sharded(snapshots[shards])
    try:
        report = engine.spinql(source).check()
        assert report.ok, report.render()
        assert report.locality is not None
        assert len(report.locality.segments) == EXPECTED_SEGMENTS[name]
        assert report.locality.scatterable

        result = engine.spinql(source).execute()

        scatter = engine._plan_executor.last_scatter
        assert scatter is not None, "executor did not scatter a classified-scatterable plan"
        # the executor scattered exactly the segments the verifier classified
        assert scatter["segments"] == len(report.locality.segments)
        assert scatter["tables"] == [segment.table for segment in report.locality.segments]
        # and the scattered result is bit-identical to the unsharded engine
        assert list(result.rows()) == baseline[name]
    finally:
        engine.close()


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_top_capped_segment_carries_k(snapshots, shards):
    """check(top_k=...) classifies a TOP-capped segment, matching dispatch."""
    engine = Engine.open_sharded(snapshots[shards])
    try:
        query = engine.spinql(PROGRAMS["chain"])
        report = query.check(top_k=5)
        assert report.ok, report.render()
        assert report.locality is not None
        assert [segment.top_k for segment in report.locality.segments] == [5]

        pairs = query.top(5)
        assert len(pairs) <= 5
        scatter = engine._plan_executor.last_scatter
        assert scatter is not None
        assert scatter["segments"] == 1
    finally:
        engine.close()


def test_check_without_hydration_resolves_snapshot_schemas(workload, tmp_path):
    """The serving gate's hydrate=False check sees manifest-declared schemas."""
    source_engine = Engine.from_triples(workload.triples)
    try:
        path = source_engine.save(tmp_path / "snap")
    finally:
        source_engine.close()
    opened = Engine.open(path)
    try:
        report = opened.spinql(PROGRAMS["chain"]).check(hydrate=False)
        assert report.ok, report.render()
        assert report.output_columns is not None  # schema known, not skipped
        assert all(d.code != "unknown-schema" for d in report.diagnostics)
        # and knowing it cost nothing: the table is still cold
        assert not opened.database.catalog.is_hydrated("triples")

        broken = opened.spinql('docs = SELECT [$9="x"] (triples);').check(hydrate=False)
        assert not broken.ok
        assert any(d.code == "position-out-of-range" for d in broken.errors)
        assert not opened.database.catalog.is_hydrated("triples")
    finally:
        opened.close()


def test_unpartitioned_engine_reports_no_locality(workload):
    """A plain (single-engine) setup has no shard map: locality stays None."""
    engine = Engine.from_triples(workload.triples)
    try:
        report = engine.spinql(PROGRAMS["chain"]).check()
        assert report.ok
        assert report.locality is None
        assert all(d.code != "scatter" for d in report.diagnostics)
    finally:
        engine.close()
