"""Negative-plan corpus: every diagnostic code, with exact provenance.

One test per diagnostic code of the static verifier.  Each asserts the
exact message, the child-index path, and (where the node rendering is
load-bearing) the node header — so a regression in either the rule or the
provenance plumbing fails loudly, not as a fuzzy "some error was emitted".
"""

from __future__ import annotations

import pytest

from repro.analysis import Severity, verify_plan
from repro.analysis.verifier import CatalogSchemaProvider, SchemaProvider
from repro.errors import AnalysisError
from repro.pra.assumptions import Assumption
from repro.pra.expressions import PositionalRef
from repro.pra.plan import (
    PraBayes,
    PraJoin,
    PraParam,
    PraPlan,
    PraProject,
    PraScan,
    PraSelect,
    PraSubtract,
    PraTop,
    PraUnite,
    PraValues,
    PraWeight,
)
from repro.pra.relation import ProbabilisticRelation
from repro.relational.column import DataType
from repro.relational.database import Database
from repro.relational.expressions import (
    BinaryOp,
    ColumnRef,
    FunctionCall,
    InList,
    Literal,
    UnaryOp,
)
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema


def leaf(*dtypes: DataType, rows: list[tuple] | None = None) -> PraValues:
    """A literal leaf with value columns c0.. of the given dtypes, plus p."""
    fields = [Field(f"c{index}", dtype) for index, dtype in enumerate(dtypes)]
    fields.append(Field("p", DataType.FLOAT))
    relation = Relation.from_rows(Schema(fields), rows or [])
    return PraValues(ProbabilisticRelation(relation, validate=False), label="fixture")


def string_leaf(arity: int = 1) -> PraValues:
    return leaf(*([DataType.STRING] * arity))


def only(report, code: str, severity: Severity):
    """The single diagnostic with ``code``; asserts its severity."""
    matches = [d for d in report.diagnostics if d.code == code]
    assert len(matches) == 1, f"expected one {code}, got {report.render()}"
    assert matches[0].severity is severity
    return matches[0]


class TestScanDiagnostics:
    def test_unknown_table(self):
        report = verify_plan(PraSelect(PraScan("nope"), Literal(True)))
        diagnostic = only(report, "unknown-table", Severity.ERROR)
        assert diagnostic.message == "table or view 'nope' is not in the catalog"
        assert diagnostic.path == (0,)
        assert diagnostic.node == "Scan(nope)"
        assert not report.ok

    def test_invalid_probability_column(self):
        database = Database()
        schema = Schema([Field("p", DataType.FLOAT), Field("x", DataType.STRING)])
        database.create_table("weird", Relation.from_rows(schema, []))
        report = verify_plan(
            PraScan("weird"), schema_provider=CatalogSchemaProvider(database)
        )
        diagnostic = only(report, "invalid-probability-column", Severity.ERROR)
        assert diagnostic.message == (
            "table 'weird' has a column named 'p' that is not a trailing FLOAT "
            "column; it cannot be lifted to a probabilistic relation"
        )
        assert diagnostic.path == ()

    def test_unknown_schema_warning_not_false_ok(self):
        class OpaqueProvider(SchemaProvider):
            def exists(self, name: str) -> bool:
                return True

            def schema_of(self, name: str):
                return None

        report = verify_plan(PraScan("lazy"), schema_provider=OpaqueProvider())
        diagnostic = only(report, "unknown-schema", Severity.WARNING)
        assert diagnostic.message == (
            "the schema of 'lazy' is not statically known (lazy table or view, "
            "hydration disabled); downstream checks are skipped"
        )
        assert report.ok  # a warning, not an error: the plan may be fine
        assert report.output_columns is None  # but the schema is not claimed


class TestParameterDiagnostics:
    def test_unbound_parameter(self):
        report = verify_plan(PraSelect(PraParam("seeds"), Literal(True)))
        diagnostic = only(report, "unbound-parameter", Severity.ERROR)
        assert diagnostic.message == (
            "unbound plan parameter 'seeds'; declared parameters: []"
        )
        assert diagnostic.path == (0,)
        assert diagnostic.node == "Param(seeds)"

    def test_declared_parameter_is_opaque_not_an_error(self):
        report = verify_plan(PraParam("seeds"), parameters=["seeds"])
        assert report.ok
        assert report.output_columns is None


class TestExpressionDiagnostics:
    def test_unknown_column(self):
        plan = PraSelect(string_leaf(), BinaryOp("=", ColumnRef("ghost"), Literal("x")))
        report = verify_plan(plan)
        diagnostic = only(report, "unknown-column", Severity.ERROR)
        assert diagnostic.message == (
            "unknown column 'ghost'; available columns: ['c0', 'p']"
        )
        assert diagnostic.path == ()

    def test_position_out_of_range_in_predicate(self):
        plan = PraSelect(string_leaf(), BinaryOp("=", PositionalRef(5), Literal("x")))
        report = verify_plan(plan)
        diagnostic = only(report, "position-out-of-range", Severity.ERROR)
        assert diagnostic.message == (
            "positional reference $5 out of range; the relation has 1 value "
            "columns (['c0'])"
        )

    def test_type_mismatch_string_comparison(self):
        plan = PraSelect(
            leaf(DataType.STRING, DataType.INT),
            BinaryOp("=", PositionalRef(1), PositionalRef(2)),
        )
        report = verify_plan(plan)
        diagnostic = only(report, "type-mismatch", Severity.ERROR)
        assert diagnostic.message == "cannot compare string with int"

    def test_type_mismatch_not_requires_boolean(self):
        plan = PraSelect(string_leaf(), UnaryOp("not", PositionalRef(1)))
        report = verify_plan(plan)
        diagnostic = only(report, "type-mismatch", Severity.ERROR)
        assert diagnostic.message == "NOT requires a boolean operand, got string"

    def test_predicate_not_boolean(self):
        plan = PraSelect(string_leaf(), Literal("yes"))
        report = verify_plan(plan)
        diagnostic = only(report, "predicate-not-boolean", Severity.ERROR)
        assert diagnostic.message == (
            "selection predicate must evaluate to a boolean column, got string"
        )

    def test_unknown_function(self):
        plan = PraSelect(
            string_leaf(),
            BinaryOp("=", FunctionCall("reverse", [PositionalRef(1)]), Literal("x")),
        )
        report = verify_plan(plan)
        diagnostic = only(report, "unknown-function", Severity.ERROR)
        assert diagnostic.message == "unknown scalar function 'reverse'"

    def test_function_arity_mismatch(self):
        plan = PraSelect(
            string_leaf(),
            BinaryOp(
                "=",
                FunctionCall("lcase", [PositionalRef(1), PositionalRef(1)]),
                Literal("x"),
            ),
        )
        report = verify_plan(plan)
        diagnostic = only(report, "arity-mismatch", Severity.ERROR)
        assert diagnostic.message == "function 'lcase' expects 1 arguments, got 2"

    def test_suspicious_in_list(self):
        plan = PraSelect(string_leaf(), InList(PositionalRef(1), [1, 2]))
        report = verify_plan(plan)
        diagnostic = only(report, "suspicious-comparison", Severity.WARNING)
        assert diagnostic.message == (
            "IN list of ['int'] values can never contain a string operand"
        )
        assert report.ok


class TestProjectDiagnostics:
    def test_output_arity_mismatch(self):
        plan = PraProject(
            string_leaf(2), [1, 2], Assumption.INDEPENDENT, output_names=["only_one"]
        )
        report = verify_plan(plan)
        diagnostic = only(report, "output-arity-mismatch", Severity.ERROR)
        assert diagnostic.message == (
            "output_names must match the projected columns: 1 name(s) for 2 "
            "position(s)"
        )

    def test_duplicate_output_names(self):
        plan = PraProject(
            string_leaf(2), [1, 2], Assumption.INDEPENDENT, output_names=["x", "x"]
        )
        report = verify_plan(plan)
        diagnostic = only(report, "duplicate-output-column", Severity.ERROR)
        assert diagnostic.message == "duplicate output column names: ['x']"

    def test_duplicate_positions_flagged_even_with_distinct_names(self):
        # the kernel selects columns before renaming, so this raises at
        # evaluation even though the output names differ
        plan = PraProject(
            string_leaf(2), [1, 1], Assumption.INDEPENDENT, output_names=["a", "b"]
        )
        report = verify_plan(plan)
        diagnostic = only(report, "duplicate-output-column", Severity.ERROR)
        assert diagnostic.message == (
            "positions [1] project the same column more than once"
        )

    def test_reserved_column_name(self):
        plan = PraProject(string_leaf(2), [1], Assumption.INDEPENDENT, output_names=["p"])
        report = verify_plan(plan)
        diagnostic = only(report, "reserved-column-name", Severity.ERROR)
        assert diagnostic.message == (
            "output column name 'p' is reserved for the probability column; "
            "projecting onto it silently discards the value column"
        )

    def test_position_out_of_range(self):
        plan = PraProject(string_leaf(1), [3], Assumption.INDEPENDENT)
        report = verify_plan(plan)
        diagnostic = only(report, "position-out-of-range", Severity.ERROR)
        assert diagnostic.message == (
            "positional reference $3 out of range; the relation has 1 value "
            "columns (['c0'])"
        )


class TestOperatorDiagnostics:
    def test_weight_out_of_range(self):
        report = verify_plan(PraWeight(string_leaf(), 1.5))
        diagnostic = only(report, "weight-out-of-range", Severity.ERROR)
        assert diagnostic.message == (
            "weight factor must lie in [0, 1] to keep probabilities valid, got 1.5"
        )

    def test_disjoint_join(self):
        plan = PraJoin(string_leaf(), string_leaf(), [(1, 1)], Assumption.DISJOINT)
        report = verify_plan(plan)
        diagnostic = only(report, "disjoint-join", Severity.ERROR)
        assert diagnostic.message == (
            "a disjoint join always yields probability zero; not supported"
        )

    def test_join_dtype_mismatch_warns(self):
        plan = PraJoin(
            leaf(DataType.STRING), leaf(DataType.INT), [(1, 1)], Assumption.INDEPENDENT
        )
        report = verify_plan(plan)
        diagnostic = only(report, "suspicious-comparison", Severity.WARNING)
        assert diagnostic.message == (
            "join condition $1=$1 (condition 1) compares string with int; "
            "rows will never match"
        )
        assert report.ok  # runtime joins 0 rows without raising

    def test_join_position_out_of_range_names_the_side(self):
        plan = PraJoin(string_leaf(), string_leaf(), [(1, 4)], Assumption.INDEPENDENT)
        report = verify_plan(plan)
        diagnostic = only(report, "position-out-of-range", Severity.ERROR)
        assert diagnostic.message == (
            "positional reference $4 out of range on the right side; the "
            "relation has 1 value columns (['c0'])"
        )

    def test_bayes_position_out_of_range(self):
        report = verify_plan(PraBayes(string_leaf(1), [2]))
        diagnostic = only(report, "position-out-of-range", Severity.ERROR)
        assert diagnostic.message == (
            "positional reference $2 out of range; the relation has 1 value "
            "columns (['c0'])"
        )

    def test_union_arity_mismatch(self):
        plan = PraUnite(string_leaf(1), string_leaf(2), Assumption.INDEPENDENT)
        report = verify_plan(plan)
        diagnostic = only(report, "arity-mismatch", Severity.ERROR)
        assert diagnostic.message == (
            "union requires inputs with the same number of value columns, "
            "got 1 and 2"
        )

    def test_union_type_mismatch_error_for_uncoercible_string(self):
        plan = PraUnite(leaf(DataType.INT), leaf(DataType.STRING), Assumption.INDEPENDENT)
        report = verify_plan(plan)
        diagnostic = only(report, "union-type-mismatch", Severity.ERROR)
        assert diagnostic.message == (
            "column $1: the right side's string values cannot be coerced to the "
            "left side's int column"
        )

    def test_union_type_mismatch_warning_for_lossy_coercion(self):
        plan = PraUnite(leaf(DataType.INT), leaf(DataType.FLOAT), Assumption.INDEPENDENT)
        report = verify_plan(plan)
        diagnostic = only(report, "union-type-mismatch", Severity.WARNING)
        assert diagnostic.message == (
            "column $1: the right side's float values are coerced to the left "
            "side's int column (lossy; merged rows may be surprising)"
        )
        assert report.ok

    def test_union_int_to_float_widening_is_silent(self):
        plan = PraUnite(leaf(DataType.FLOAT), leaf(DataType.INT), Assumption.INDEPENDENT)
        report = verify_plan(plan)
        assert report.diagnostics == []

    def test_assumption_unsound_on_disjoint_unite(self):
        plan = PraUnite(string_leaf(), string_leaf(), Assumption.DISJOINT)
        report = verify_plan(plan)
        diagnostic = only(report, "assumption-unsound", Severity.WARNING)
        assert diagnostic.message == (
            "UNITE DISJOINT merges probabilities of equal value tuples, but the "
            "left and right input(s) are not provably duplicate-free; duplicates "
            "within one input are merged as if they were the same event"
        )

    def test_assumption_sound_when_sides_are_projections(self):
        # PROJECT output is duplicate-free (the lattice), so SUBSUMED is sound
        left = PraProject(string_leaf(2), [1], Assumption.INDEPENDENT)
        right = PraProject(string_leaf(2), [2], Assumption.INDEPENDENT)
        report = verify_plan(PraUnite(left, right, Assumption.SUBSUMED))
        assert [d for d in report.diagnostics if d.code == "assumption-unsound"] == []

    def test_subtract_type_mismatch_warns(self):
        plan = PraSubtract(leaf(DataType.STRING), leaf(DataType.INT))
        report = verify_plan(plan)
        diagnostic = only(report, "subtract-type-mismatch", Severity.WARNING)
        assert diagnostic.message == (
            "column $1: subtracting int rows from a string column; no row can "
            "match, so the subtraction never reduces any probability"
        )

    def test_unknown_node(self):
        class Mystery(PraPlan):
            def children(self) -> list[PraPlan]:
                return []

            def _describe_self(self) -> str:
                return "Mystery"

        report = verify_plan(Mystery())
        diagnostic = only(report, "unknown-node", Severity.ERROR)
        assert diagnostic.message == "unrecognized plan node Mystery"
        assert diagnostic.node == "Mystery"


class TestNotes:
    def test_top_pushdown_note_positive_weight(self):
        report = verify_plan(PraTop(PraWeight(string_leaf(), 0.5), 3))
        diagnostic = only(report, "top-pushdown", Severity.NOTE)
        assert diagnostic.message == (
            "TOP 3 pushes below WEIGHT 0.5 (positive scaling preserves the ranking)"
        )
        assert report.ok

    def test_top_pushdown_blocked_by_join(self):
        plan = PraTop(
            PraJoin(string_leaf(), string_leaf(), [(1, 1)], Assumption.INDEPENDENT), 2
        )
        report = verify_plan(plan)
        diagnostic = only(report, "top-pushdown", Severity.NOTE)
        assert diagnostic.message == (
            "TOP cannot cross JOIN; the subtree below is evaluated in full"
        )

    def test_scatter_note_with_partition_layout(self):
        database = Database()
        schema = Schema([Field("s", DataType.STRING)])
        database.create_table("triples", Relation.from_rows(schema, []))
        report = verify_plan(
            PraScan("triples"),
            schema_provider=CatalogSchemaProvider(database),
            partitioned=lambda table: table == "triples",
        )
        assert report.locality is not None
        assert report.locality.scatterable
        scatter = only(report, "scatter", Severity.NOTE)
        assert scatter.severity is Severity.NOTE


class TestReportSurface:
    def test_output_schema_and_ok(self):
        report = verify_plan(string_leaf(2))
        assert report.ok
        assert report.output_columns == [("c0", "string"), ("c1", "string")]
        assert report.to_dict()["ok"] is True

    def test_raise_if_errors_carries_diagnostics(self):
        report = verify_plan(PraScan("nope"))
        with pytest.raises(AnalysisError) as excinfo:
            report.raise_if_errors()
        assert excinfo.value.diagnostics == tuple(report.errors)
        assert "unknown-table" in str(excinfo.value)

    def test_diagnostic_render_format(self):
        report = verify_plan(PraSelect(PraScan("nope"), Literal(True)))
        rendered = report.errors[0].render()
        assert rendered == (
            "error[unknown-table] plan.0 (Scan(nope)): table or view 'nope' is "
            "not in the catalog"
        )
