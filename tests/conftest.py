"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.relational import Database, DataType, Field, Relation, Schema
from repro.triples import TripleStore
from repro.workloads import generate_auction_triples, generate_product_triples


@pytest.fixture
def database() -> Database:
    """An empty database with the default function registry."""
    return Database()


@pytest.fixture
def docs_database() -> Database:
    """A database holding the small docs collection used in the IR tests."""
    db = Database()
    schema = Schema([Field("docID", DataType.INT), Field("data", DataType.STRING)])
    db.create_table_from_rows(
        "docs",
        schema,
        [
            (1, "a book about history"),
            (2, "a cake recipe book"),
            (3, "history of cakes and baking"),
            (4, "trains and railways of the world"),
            (5, "the history of model trains"),
        ],
    )
    return db


@pytest.fixture
def figure1_docs() -> list[tuple[int, str]]:
    """Documents consistent with Figure 1 of the paper.

    Document 3 contains 'book' (pos 23) and 'history' (pos 19); document 10
    contains 'book' (pos 55) and 'cake' (pos 51).  We only need the term
    co-occurrence pattern, not the exact positions.
    """
    return [
        (3, "a short history of the printed book"),
        (10, "how to bake a layered cake from a recipe book"),
    ]


@pytest.fixture
def toy_store() -> TripleStore:
    """A triple store with a handful of products, matching the toy scenario."""
    store = TripleStore()
    store.add_all(
        [
            ("product1", "type", "product"),
            ("product1", "category", "toy"),
            ("product1", "description", "wooden train set for children"),
            ("product2", "type", "product"),
            ("product2", "category", "book"),
            ("product2", "description", "history of trains and railways"),
            ("product3", "type", "product"),
            ("product3", "category", "toy"),
            ("product3", "description", "plastic toy car with remote control"),
            ("product4", "type", "product"),
            ("product4", "category", "toy"),
            ("product4", "description", "board game about trains"),
        ]
    )
    store.load()
    return store


@pytest.fixture
def auction_store() -> TripleStore:
    """A small hand-built auction graph (lots, auctions, hasAuction edges)."""
    store = TripleStore()
    store.add_all(
        [
            ("auction1", "type", "auction"),
            ("auction1", "description", "vintage furniture and antique clocks"),
            ("auction2", "type", "auction"),
            ("auction2", "description", "modern art paintings and sculptures"),
            ("lot1", "type", "lot"),
            ("lot1", "description", "antique oak table"),
            ("lot1", "hasAuction", "auction1"),
            ("lot2", "type", "lot"),
            ("lot2", "description", "grandfather clock in working order"),
            ("lot2", "hasAuction", "auction1"),
            ("lot3", "type", "lot"),
            ("lot3", "description", "abstract painting in blue tones"),
            ("lot3", "hasAuction", "auction2"),
            ("lot4", "type", "lot"),
            ("lot4", "description", "bronze sculpture of a dancer"),
            ("lot4", "hasAuction", "auction2"),
        ]
    )
    store.load()
    return store


@pytest.fixture(scope="session")
def product_workload():
    """A generated product catalog shared by slower tests."""
    return generate_product_triples(120, seed=5)


@pytest.fixture(scope="session")
def auction_workload():
    """A generated auction graph shared by slower tests."""
    return generate_auction_triples(150, 4, seed=11)


@pytest.fixture
def simple_relation() -> Relation:
    """A tiny (id, name, score) relation used across relational-engine tests."""
    schema = Schema(
        [
            Field("id", DataType.INT),
            Field("name", DataType.STRING),
            Field("score", DataType.FLOAT),
        ]
    )
    return Relation.from_rows(
        schema,
        [
            (1, "alpha", 0.5),
            (2, "beta", 1.5),
            (3, "gamma", 2.5),
            (4, "alpha", 3.5),
        ],
    )
