"""Unit tests for logical plan execution (the physical operators)."""

import pytest

from repro.errors import PlanError
from repro.relational.algebra import (
    Aggregate,
    AggregateSpec,
    Distinct,
    Join,
    Limit,
    Project,
    Rename,
    Scan,
    Select,
    Sort,
    SortKey,
    TableFunctionScan,
    Union,
    Values,
)
from repro.relational.column import DataType
from repro.relational.database import Database
from repro.relational.expressions import col, func, lit
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema


@pytest.fixture
def db():
    database = Database(cache_enabled=False)
    products = Schema(
        [
            Field("id", DataType.INT),
            Field("category", DataType.STRING),
            Field("price", DataType.INT),
        ]
    )
    database.create_table_from_rows(
        "products",
        products,
        [
            (1, "toy", 10),
            (2, "book", 20),
            (3, "toy", 30),
            (4, "game", 40),
            (5, "toy", 50),
        ],
    )
    orders = Schema([Field("order_id", DataType.INT), Field("product_id", DataType.INT)])
    database.create_table_from_rows(
        "orders",
        orders,
        [(100, 1), (101, 1), (102, 3), (103, 9)],
    )
    return database


class TestScanSelectProject:
    def test_scan(self, db):
        result = db.execute(Scan("products"))
        assert result.num_rows == 5

    def test_scan_unknown_table(self, db):
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            db.execute(Scan("missing"))

    def test_select(self, db):
        plan = Select(Scan("products"), col("category").eq(lit("toy")))
        result = db.execute(plan)
        assert [row[0] for row in result.rows()] == [1, 3, 5]

    def test_select_on_empty_input(self, db):
        plan = Select(Select(Scan("products"), col("price").gt(lit(1000))), col("price").gt(lit(0)))
        assert db.execute(plan).num_rows == 0

    def test_select_requires_boolean_predicate(self, db):
        plan = Select(Scan("products"), col("price") + lit(1))
        with pytest.raises(PlanError):
            db.execute(plan)

    def test_project_computed_columns(self, db):
        plan = Project(
            Scan("products"),
            [("id", col("id")), ("double_price", col("price") * lit(2))],
        )
        result = db.execute(plan)
        assert result.schema.names == ["id", "double_price"]
        assert result.column("double_price").to_list() == [20, 40, 60, 80, 100]

    def test_project_with_function(self, db):
        plan = Project(Scan("products"), [("cat", func("ucase", col("category")))])
        result = db.execute(plan)
        assert result.column("cat").to_list()[0] == "TOY"


class TestJoin:
    def test_inner_join(self, db):
        plan = Join(Scan("orders"), Scan("products"), [("product_id", "id")])
        result = db.execute(plan)
        assert result.num_rows == 3  # order 103 references a missing product
        assert set(result.schema.names) >= {"order_id", "product_id", "id", "category"}

    def test_inner_join_multiplicity(self, db):
        # product 1 appears in two orders: joining products->orders yields 2 rows for it
        plan = Join(Scan("products"), Scan("orders"), [("id", "product_id")])
        result = db.execute(plan)
        ids = [row[0] for row in result.rows()]
        assert ids.count(1) == 2

    def test_left_join_keeps_unmatched(self, db):
        plan = Join(Scan("orders"), Scan("products"), [("product_id", "id")], how="left")
        result = db.execute(plan)
        assert result.num_rows == 4
        unmatched = [row for row in result.to_dicts() if row["order_id"] == 103]
        assert unmatched[0]["category"] == ""  # null surrogate

    def test_join_name_clash_suffixed(self, db):
        plan = Join(Scan("products"), Scan("products"), [("id", "id")])
        result = db.execute(plan)
        assert "id_right" in result.schema.names
        assert result.num_rows == 5

    def test_join_requires_conditions(self, db):
        with pytest.raises(PlanError):
            db.execute(Join(Scan("orders"), Scan("products"), []))

    def test_unsupported_join_type(self):
        with pytest.raises(PlanError):
            Join(Scan("a"), Scan("b"), [("x", "y")], how="full")


class TestAggregate:
    def test_group_by_count(self, db):
        plan = Aggregate(Scan("products"), ["category"], [AggregateSpec("count", None, "n")])
        result = db.execute(plan)
        counts = {row["category"]: row["n"] for row in result.to_dicts()}
        assert counts == {"toy": 3, "book": 1, "game": 1}

    def test_group_by_sum_avg_min_max(self, db):
        plan = Aggregate(
            Scan("products"),
            ["category"],
            [
                AggregateSpec("sum", "price", "total"),
                AggregateSpec("avg", "price", "mean"),
                AggregateSpec("min", "price", "low"),
                AggregateSpec("max", "price", "high"),
            ],
        )
        rows = {row["category"]: row for row in db.execute(plan).to_dicts()}
        assert rows["toy"]["total"] == 90
        assert rows["toy"]["mean"] == pytest.approx(30.0)
        assert rows["toy"]["low"] == 10
        assert rows["toy"]["high"] == 50

    def test_global_aggregate(self, db):
        plan = Aggregate(Scan("products"), [], [AggregateSpec("count", None, "n")])
        result = db.execute(plan)
        assert result.num_rows == 1
        assert result.to_dicts()[0]["n"] == 5

    def test_sum_requires_input_column(self, db):
        plan = Aggregate(Scan("products"), [], [AggregateSpec("sum", None, "x")])
        with pytest.raises(PlanError):
            db.execute(plan)

    def test_unknown_aggregate_function(self, db):
        plan = Aggregate(Scan("products"), [], [AggregateSpec("median", "price", "x")])
        with pytest.raises(PlanError):
            db.execute(plan)


class TestOtherOperators:
    def test_sort_and_limit(self, db):
        plan = Limit(Sort(Scan("products"), [SortKey("price", ascending=False)]), 2)
        result = db.execute(plan)
        assert [row["price"] for row in result.to_dicts()] == [50, 40]

    def test_distinct(self, db):
        plan = Distinct(Project(Scan("products"), [("category", col("category"))]))
        result = db.execute(plan)
        assert sorted(row[0] for row in result.rows()) == ["book", "game", "toy"]

    def test_union(self, db):
        plan = Union(Scan("products"), Scan("products"))
        assert db.execute(plan).num_rows == 10

    def test_values(self, db):
        relation = Relation.from_rows(Schema.of(x=DataType.INT), [(1,), (2,)])
        assert db.execute(Values(relation, label="inline")).num_rows == 2

    def test_rename(self, db):
        plan = Rename(Scan("products"), {"id": "productID"})
        assert "productID" in db.execute(plan).schema.names

    def test_table_function_tokenize(self, db):
        docs = Relation.from_rows(
            Schema.of(docID=DataType.INT, data=DataType.STRING),
            [(1, "hello brave new world"), (2, "hello again")],
        )
        plan = TableFunctionScan(Values(docs, label="docs"), "tokenize")
        result = db.execute(plan)
        assert result.schema.names == ["docID", "token", "pos"]
        assert result.num_rows == 6
        first_doc = [row for row in result.to_dicts() if row["docID"] == 1]
        assert [row["pos"] for row in first_doc] == [0, 1, 2, 3]

    def test_view_resolution(self, db):
        db.create_view("toys", Select(Scan("products"), col("category").eq(lit("toy"))))
        assert db.execute(Scan("toys")).num_rows == 3
