"""Unit tests for the UDF registry and the built-in functions."""

import math

import pytest

from repro.errors import FunctionError
from repro.relational.column import Column, DataType
from repro.relational.functions import FunctionRegistry, default_registry
from repro.relational.relation import Relation
from repro.relational.schema import Schema


class TestRegistry:
    def test_register_and_lookup_scalar(self):
        registry = FunctionRegistry()
        registry.register_scalar("double", lambda x: x * 2, DataType.INT, arity=1)
        function = registry.scalar("double")
        result = function.apply([Column([1, 2, 3], DataType.INT)], 3)
        assert result.to_list() == [2, 4, 6]

    def test_lookup_is_case_insensitive(self):
        registry = default_registry()
        assert registry.scalar("LCASE").name == "lcase"
        assert registry.has_scalar("Lcase")

    def test_unknown_scalar_raises(self):
        with pytest.raises(FunctionError):
            FunctionRegistry().scalar("missing")

    def test_unknown_table_function_raises(self):
        with pytest.raises(FunctionError):
            FunctionRegistry().table("missing")

    def test_wrong_arity_raises(self):
        registry = default_registry()
        with pytest.raises(FunctionError):
            registry.scalar("lcase").apply([], 0)

    def test_copy_is_independent(self):
        original = default_registry()
        copy = original.copy()
        copy.register_scalar("only_copy", lambda: 1, DataType.INT, arity=0)
        assert copy.has_scalar("only_copy")
        assert not original.has_scalar("only_copy")


class TestBuiltins:
    def test_lcase_ucase_length(self):
        registry = default_registry()
        column = Column(["Hello"], DataType.STRING)
        assert registry.scalar("lcase").apply([column], 1).to_list() == ["hello"]
        assert registry.scalar("ucase").apply([column], 1).to_list() == ["HELLO"]
        assert registry.scalar("length").apply([column], 1).to_list() == [5]

    def test_log_is_clamped(self):
        registry = default_registry()
        column = Column([math.e, 0.0, -1.0], DataType.FLOAT)
        values = registry.scalar("log").apply([column], 3).to_list()
        assert values[0] == pytest.approx(1.0)
        assert values[1] == 0.0
        assert values[2] == 0.0

    def test_sqrt_and_abs(self):
        registry = default_registry()
        assert registry.scalar("sqrt").apply([Column([4.0], DataType.FLOAT)], 1).to_list() == [2.0]
        assert registry.scalar("abs").apply([Column([-3.0], DataType.FLOAT)], 1).to_list() == [3.0]

    def test_concat(self):
        registry = default_registry()
        result = registry.scalar("concat").apply(
            [Column(["a"], DataType.STRING), Column(["b"], DataType.STRING)], 1
        )
        assert result.to_list() == ["ab"]

    def test_stem_accepts_sb_prefix(self):
        registry = default_registry()
        result = registry.scalar("stem").apply(
            [Column(["running"], DataType.STRING), Column(["sb-english"], DataType.STRING)], 1
        )
        assert result.to_list() == ["run"]

    def test_tokenize_table_function(self):
        registry = default_registry()
        docs = Relation.from_rows(
            Schema.of(docID=DataType.INT, data=DataType.STRING),
            [(1, "Hello, world!"), (2, "Databases rock")],
        )
        result = registry.table("tokenize").apply(docs)
        assert result.schema.names == ["docID", "token", "pos"]
        assert result.num_rows == 4
        assert result.to_dicts()[0] == {"docID": 1, "token": "Hello", "pos": 0}

    def test_tokenize_requires_two_columns(self):
        registry = default_registry()
        docs = Relation.from_rows(Schema.of(docID=DataType.INT), [(1,)])
        with pytest.raises(FunctionError):
            registry.table("tokenize").apply(docs)

    def test_tokenize_preserves_id_column_name_and_type(self):
        registry = default_registry()
        docs = Relation.from_rows(
            Schema.of(lot=DataType.STRING, text=DataType.STRING),
            [("lot1", "antique clock")],
        )
        result = registry.table("tokenize").apply(docs)
        assert result.schema.names[0] == "lot"
        assert result.schema.dtype_of("lot") is DataType.STRING
