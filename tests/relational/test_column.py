"""Unit tests for typed columns."""

import numpy as np
import pytest

from repro.errors import ColumnError, TypeMismatchError
from repro.relational.column import Column, DataType


class TestDataType:
    def test_of_value_int(self):
        assert DataType.of_value(3) is DataType.INT

    def test_of_value_float(self):
        assert DataType.of_value(3.5) is DataType.FLOAT

    def test_of_value_string(self):
        assert DataType.of_value("abc") is DataType.STRING

    def test_of_value_bool(self):
        assert DataType.of_value(True) is DataType.BOOL

    def test_of_value_bool_before_int(self):
        # bool is a subclass of int in Python; the bool branch must win
        assert DataType.of_value(False) is DataType.BOOL

    def test_of_value_unsupported(self):
        with pytest.raises(TypeMismatchError):
            DataType.of_value(object())

    def test_common_identical(self):
        assert DataType.common(DataType.INT, DataType.INT) is DataType.INT

    def test_common_widens_to_float(self):
        assert DataType.common(DataType.INT, DataType.FLOAT) is DataType.FLOAT
        assert DataType.common(DataType.FLOAT, DataType.INT) is DataType.FLOAT

    def test_common_incompatible(self):
        with pytest.raises(TypeMismatchError):
            DataType.common(DataType.STRING, DataType.INT)

    def test_is_numeric(self):
        assert DataType.INT.is_numeric()
        assert DataType.FLOAT.is_numeric()
        assert not DataType.STRING.is_numeric()
        assert not DataType.BOOL.is_numeric()


class TestColumnConstruction:
    def test_from_values_infers_type(self):
        column = Column.from_values([1, 2, 3])
        assert column.dtype is DataType.INT
        assert column.to_list() == [1, 2, 3]

    def test_from_values_explicit_type(self):
        column = Column.from_values([1, 2], DataType.FLOAT)
        assert column.dtype is DataType.FLOAT
        assert column.to_list() == [1.0, 2.0]

    def test_from_values_empty_without_type_fails(self):
        with pytest.raises(ColumnError):
            Column.from_values([])

    def test_empty(self):
        column = Column.empty(DataType.STRING)
        assert len(column) == 0
        assert column.dtype is DataType.STRING

    def test_constant(self):
        column = Column.constant("x", 4)
        assert column.to_list() == ["x", "x", "x", "x"]

    def test_constant_numeric(self):
        column = Column.constant(2.5, 3)
        assert column.to_list() == [2.5, 2.5, 2.5]

    def test_string_column_keeps_values(self):
        column = Column(["hello", "world"], DataType.STRING)
        assert column[0] == "hello"
        assert column[1] == "world"

    def test_from_numpy_array(self):
        column = Column(np.array([1, 2, 3]), DataType.INT)
        assert column.to_list() == [1, 2, 3]


class TestColumnAccess:
    def test_len_and_iter(self):
        column = Column([1, 2, 3], DataType.INT)
        assert len(column) == 3
        assert list(column) == [1, 2, 3]

    def test_getitem_returns_python_types(self):
        column = Column([1, 2], DataType.INT)
        assert isinstance(column[0], int)
        float_column = Column([1.5], DataType.FLOAT)
        assert isinstance(float_column[0], float)
        bool_column = Column([True], DataType.BOOL)
        assert isinstance(bool_column[0], bool)

    def test_equality(self):
        assert Column([1, 2], DataType.INT) == Column([1, 2], DataType.INT)
        assert Column([1, 2], DataType.INT) != Column([2, 1], DataType.INT)
        assert Column([1], DataType.INT) != Column([1.0], DataType.FLOAT)


class TestColumnManipulation:
    def test_take(self):
        column = Column([10, 20, 30], DataType.INT)
        taken = column.take(np.array([2, 0, 2]))
        assert taken.to_list() == [30, 10, 30]

    def test_filter(self):
        column = Column([10, 20, 30], DataType.INT)
        filtered = column.filter(np.array([True, False, True]))
        assert filtered.to_list() == [10, 30]

    def test_filter_wrong_length(self):
        column = Column([10, 20, 30], DataType.INT)
        with pytest.raises(ColumnError):
            column.filter(np.array([True, False]))

    def test_slice(self):
        column = Column([1, 2, 3, 4], DataType.INT)
        assert column.slice(1, 3).to_list() == [2, 3]

    def test_concat(self):
        left = Column([1, 2], DataType.INT)
        right = Column([3], DataType.INT)
        assert left.concat(right).to_list() == [1, 2, 3]

    def test_concat_type_mismatch(self):
        with pytest.raises(TypeMismatchError):
            Column([1], DataType.INT).concat(Column(["a"], DataType.STRING))

    def test_cast_int_to_string(self):
        column = Column([1, 2], DataType.INT).cast(DataType.STRING)
        assert column.to_list() == ["1", "2"]

    def test_cast_string_to_int(self):
        column = Column(["3", "4"], DataType.STRING).cast(DataType.INT)
        assert column.to_list() == [3, 4]

    def test_cast_string_to_bool(self):
        column = Column(["true", "no"], DataType.STRING).cast(DataType.BOOL)
        assert column.to_list() == [True, False]

    def test_cast_same_type_is_identity(self):
        column = Column([1], DataType.INT)
        assert column.cast(DataType.INT) is column

    def test_unique_numeric(self):
        column = Column([3, 1, 3, 2, 1], DataType.INT)
        assert column.unique().to_list() == [1, 2, 3]

    def test_unique_string(self):
        column = Column(["b", "a", "b"], DataType.STRING)
        assert column.unique().to_list() == ["a", "b"]

    def test_is_sorted(self):
        assert Column([1, 2, 2, 3], DataType.INT).is_sorted()
        assert not Column([2, 1], DataType.INT).is_sorted()
