"""Unit tests for relations."""

import numpy as np
import pytest

from repro.errors import ColumnError, SchemaError
from repro.relational.column import Column, DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema


def make_relation():
    schema = Schema(
        [Field("id", DataType.INT), Field("name", DataType.STRING), Field("score", DataType.FLOAT)]
    )
    return Relation.from_rows(
        schema,
        [(1, "alpha", 0.5), (2, "beta", 1.5), (3, "gamma", 2.5), (4, "alpha", 3.5)],
    )


class TestConstruction:
    def test_from_rows(self):
        relation = make_relation()
        assert relation.num_rows == 4
        assert relation.num_columns == 3

    def test_from_dicts(self):
        schema = Schema.of(a=DataType.INT, b=DataType.STRING)
        relation = Relation.from_dicts(schema, [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert list(relation.rows()) == [(1, "x"), (2, "y")]

    def test_from_columns(self):
        relation = Relation.from_columns(
            {"a": Column([1, 2], DataType.INT), "b": Column(["x", "y"], DataType.STRING)}
        )
        assert relation.schema.names == ["a", "b"]

    def test_empty(self):
        relation = Relation.empty(Schema.of(a=DataType.INT))
        assert relation.num_rows == 0

    def test_inconsistent_column_lengths_rejected(self):
        schema = Schema.of(a=DataType.INT, b=DataType.INT)
        with pytest.raises(SchemaError):
            Relation(schema, [Column([1], DataType.INT), Column([1, 2], DataType.INT)])

    def test_schema_column_count_mismatch_rejected(self):
        schema = Schema.of(a=DataType.INT, b=DataType.INT)
        with pytest.raises(SchemaError):
            Relation(schema, [Column([1], DataType.INT)])

    def test_type_mismatch_rejected(self):
        schema = Schema.of(a=DataType.INT)
        with pytest.raises(SchemaError):
            Relation(schema, [Column(["x"], DataType.STRING)])


class TestAccess:
    def test_column_by_name(self):
        relation = make_relation()
        assert relation.column("name").to_list() == ["alpha", "beta", "gamma", "alpha"]

    def test_column_at_position(self):
        relation = make_relation()
        assert relation.column_at(0).to_list() == [1, 2, 3, 4]

    def test_column_at_out_of_range(self):
        with pytest.raises(ColumnError):
            make_relation().column_at(10)

    def test_row_and_rows(self):
        relation = make_relation()
        assert relation.row(1) == (2, "beta", 1.5)
        assert len(list(relation.rows())) == 4

    def test_to_dicts(self):
        relation = make_relation()
        dicts = relation.to_dicts()
        assert dicts[0] == {"id": 1, "name": "alpha", "score": 0.5}

    def test_equality(self):
        assert make_relation() == make_relation()
        assert make_relation() != make_relation().head(2)


class TestManipulation:
    def test_filter(self):
        relation = make_relation()
        filtered = relation.filter(np.array([True, False, True, False]))
        assert [row[0] for row in filtered.rows()] == [1, 3]

    def test_take(self):
        relation = make_relation()
        taken = relation.take(np.array([3, 0]))
        assert [row[0] for row in taken.rows()] == [4, 1]

    def test_slice_and_head(self):
        relation = make_relation()
        assert relation.slice(1, 3).num_rows == 2
        assert relation.head(2).num_rows == 2
        assert relation.head(100).num_rows == 4

    def test_select_columns(self):
        relation = make_relation().select_columns(["score", "id"])
        assert relation.schema.names == ["score", "id"]
        assert relation.row(0) == (0.5, 1)

    def test_rename(self):
        relation = make_relation().rename({"id": "identifier"})
        assert "identifier" in relation.schema
        assert "id" not in relation.schema

    def test_with_column_appends(self):
        relation = make_relation().with_column("flag", Column([True] * 4, DataType.BOOL))
        assert relation.schema.names[-1] == "flag"
        assert relation.column("flag").to_list() == [True] * 4

    def test_with_column_replaces(self):
        relation = make_relation().with_column("score", Column([1, 2, 3, 4], DataType.INT))
        assert relation.schema.dtype_of("score") is DataType.INT

    def test_with_column_wrong_length(self):
        with pytest.raises(SchemaError):
            make_relation().with_column("x", Column([1], DataType.INT))

    def test_without_column(self):
        relation = make_relation().without_column("name")
        assert relation.schema.names == ["id", "score"]

    def test_without_unknown_column(self):
        with pytest.raises(ColumnError):
            make_relation().without_column("missing")

    def test_concat(self):
        relation = make_relation()
        combined = relation.concat(relation)
        assert combined.num_rows == 8

    def test_concat_incompatible(self):
        other = Relation.from_rows(Schema.of(x=DataType.STRING), [("a",)])
        with pytest.raises(SchemaError):
            make_relation().concat(other)

    def test_sort_by_single_key(self):
        relation = make_relation().sort_by([("score", False)])
        assert [row[2] for row in relation.rows()] == [3.5, 2.5, 1.5, 0.5]

    def test_sort_by_multiple_keys(self):
        relation = make_relation().sort_by([("name", True), ("score", False)])
        rows = list(relation.rows())
        assert [row[1] for row in rows] == ["alpha", "alpha", "beta", "gamma"]
        # within 'alpha', higher score first
        assert rows[0][2] == 3.5 and rows[1][2] == 0.5

    def test_sort_string_column(self):
        relation = make_relation().sort_by([("name", True)])
        names = [row[1] for row in relation.rows()]
        assert names == sorted(names)

    def test_sort_empty_relation(self):
        empty = Relation.empty(Schema.of(a=DataType.INT))
        assert empty.sort_by([("a", True)]).num_rows == 0

    def test_distinct(self):
        schema = Schema.of(a=DataType.INT)
        relation = Relation.from_rows(schema, [(1,), (2,), (1,), (3,), (2,)])
        assert [row[0] for row in relation.distinct().rows()] == [1, 2, 3]

    def test_to_text_renders_all_columns(self):
        text = make_relation().to_text()
        assert "id" in text and "name" in text and "alpha" in text

    def test_to_text_truncates(self):
        text = make_relation().to_text(max_rows=2)
        assert "more rows" in text
