"""Unit tests for SQL generation and CSV import/export."""

import io

import pytest

from repro.relational.algebra import (
    Aggregate,
    AggregateSpec,
    Distinct,
    Join,
    Limit,
    Project,
    Rename,
    Scan,
    Select,
    Sort,
    SortKey,
    TableFunctionScan,
    Union,
    Values,
)
from repro.relational.column import DataType
from repro.relational.csvio import read_csv, write_csv
from repro.relational.expressions import col, lit
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.relational.sqlgen import to_sql, view_definition


class TestSqlGeneration:
    def test_scan(self):
        assert to_sql(Scan("docs")) == "SELECT * FROM docs"

    def test_select_where_clause(self):
        sql = to_sql(Select(Scan("t"), col("category").eq(lit("toy"))), pretty=False)
        assert "WHERE (category = 'toy')" in sql

    def test_project(self):
        sql = to_sql(Project(Scan("t"), [("x", col("a") * lit(2))]), pretty=False)
        assert "SELECT (a * 2) AS x" in sql

    def test_join(self):
        sql = to_sql(Join(Scan("a"), Scan("b"), [("x", "y")]), pretty=False)
        assert "JOIN" in sql and "l.x = r.y" in sql

    def test_left_join(self):
        sql = to_sql(Join(Scan("a"), Scan("b"), [("x", "y")], how="left"), pretty=False)
        assert "LEFT JOIN" in sql

    def test_aggregate_with_group_by(self):
        plan = Aggregate(Scan("t"), ["docID"], [AggregateSpec("count", None, "len")])
        sql = to_sql(plan, pretty=False)
        assert "count(*) AS len" in sql
        assert "GROUP BY docID" in sql

    def test_global_aggregate_has_no_group_by(self):
        plan = Aggregate(Scan("t"), [], [AggregateSpec("avg", "len", "avg_len")])
        sql = to_sql(plan, pretty=False)
        assert "GROUP BY" not in sql

    def test_sort_limit_distinct_union(self):
        assert "ORDER BY score DESC" in to_sql(
            Sort(Scan("t"), [SortKey("score", ascending=False)]), pretty=False
        )
        assert "LIMIT 5" in to_sql(Limit(Scan("t"), 5), pretty=False)
        assert "SELECT DISTINCT" in to_sql(Distinct(Scan("t")), pretty=False)
        assert "UNION ALL" in to_sql(Union(Scan("a"), Scan("b")), pretty=False)

    def test_table_function(self):
        sql = to_sql(TableFunctionScan(Scan("docs"), "tokenize"), pretty=False)
        assert "tokenize((" in sql

    def test_values_rendering(self):
        relation = Relation.from_rows(Schema.of(term=DataType.STRING), [("book",), ("cake",)])
        sql = to_sql(Values(relation, label="query"), pretty=False)
        assert "VALUES ('book'), ('cake')" in sql

    def test_rename(self):
        sql = to_sql(Rename(Scan("t"), {"a": "b"}), pretty=False)
        assert "a AS b" in sql

    def test_view_definition(self):
        text = view_definition("docs", Scan("raw"))
        assert text.startswith("CREATE VIEW docs AS")
        assert text.endswith(";")


class TestCsvIO:
    def test_roundtrip_via_string_buffers(self):
        schema = Schema(
            [
                Field("id", DataType.INT),
                Field("name", DataType.STRING),
                Field("score", DataType.FLOAT),
            ]
        )
        relation = Relation.from_rows(schema, [(1, "a", 0.5), (2, "b", 1.5)])
        buffer = io.StringIO()
        write_csv(relation, buffer)
        buffer.seek(0)
        loaded = read_csv(buffer, schema)
        assert loaded == relation

    def test_read_without_header(self):
        schema = Schema.of(a=DataType.INT, b=DataType.STRING)
        buffer = io.StringIO("1,x\n2,y\n")
        relation = read_csv(buffer, schema, has_header=False)
        assert relation.num_rows == 2

    def test_header_arity_mismatch(self):
        from repro.errors import SchemaError

        schema = Schema.of(a=DataType.INT)
        buffer = io.StringIO("a,b\n1,2\n")
        with pytest.raises(SchemaError):
            read_csv(buffer, schema)

    def test_bool_parsing(self):
        schema = Schema.of(flag=DataType.BOOL)
        buffer = io.StringIO("flag\ntrue\n0\nYES\n")
        relation = read_csv(buffer, schema)
        assert relation.column("flag").to_list() == [True, False, True]

    def test_file_roundtrip(self, tmp_path):
        schema = Schema.of(a=DataType.INT, b=DataType.STRING)
        relation = Relation.from_rows(schema, [(1, "hello"), (2, "world")])
        path = tmp_path / "data.csv"
        write_csv(relation, path)
        loaded = read_csv(path, schema)
        assert loaded == relation
