"""Unit tests for the catalog, the materialization cache and the database facade."""

import pytest

from repro.errors import CatalogError
from repro.relational.algebra import Aggregate, AggregateSpec, Scan, Select
from repro.relational.cache import MaterializationCache
from repro.relational.catalog import Catalog
from repro.relational.column import DataType
from repro.relational.database import Database
from repro.relational.expressions import col, lit
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema


def small_relation(rows=((1, "a"), (2, "b"))):
    schema = Schema([Field("id", DataType.INT), Field("label", DataType.STRING)])
    return Relation.from_rows(schema, rows)


class TestCatalog:
    def test_create_and_lookup_table(self):
        catalog = Catalog()
        catalog.create_table("t", small_relation())
        assert catalog.has_table("t")
        assert catalog.table("t").num_rows == 2
        assert catalog.exists("t")

    def test_duplicate_name_rejected(self):
        catalog = Catalog()
        catalog.create_table("t", small_relation())
        with pytest.raises(CatalogError):
            catalog.create_table("t", small_relation())

    def test_replace_allows_overwrite(self):
        catalog = Catalog()
        catalog.create_table("t", small_relation())
        catalog.create_table("t", small_relation(rows=((3, "c"),)), replace=True)
        assert catalog.table("t").num_rows == 1

    def test_view_registration_and_resolution(self):
        catalog = Catalog()
        catalog.create_table("t", small_relation())
        catalog.create_view("v", Scan("t"))
        assert catalog.has_view("v")
        assert isinstance(catalog.resolve("v"), Scan)
        assert catalog.view_names() == ["v"]
        assert catalog.table_names() == ["t"]

    def test_view_replaces_table_of_same_name(self):
        catalog = Catalog()
        catalog.create_table("x", small_relation())
        catalog.create_view("x", Scan("t"), replace=True)
        assert catalog.has_view("x")
        assert not catalog.has_table("x")

    def test_drop(self):
        catalog = Catalog()
        catalog.create_table("t", small_relation())
        catalog.drop_table("t")
        assert not catalog.exists("t")
        with pytest.raises(CatalogError):
            catalog.drop_table("t")
        with pytest.raises(CatalogError):
            catalog.drop_view("v")

    def test_unknown_lookups_raise(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.table("nope")
        with pytest.raises(CatalogError):
            catalog.view("nope")
        with pytest.raises(CatalogError):
            catalog.resolve("nope")


class TestMaterializationCache:
    def test_miss_then_hit(self):
        cache = MaterializationCache()
        plan = Scan("t")
        assert cache.get(plan) is None
        cache.put(plan, small_relation())
        assert cache.get(plan) is not None
        assert cache.statistics.hits == 1
        assert cache.statistics.misses == 1
        assert cache.statistics.hit_rate == pytest.approx(0.5)

    def test_contains_does_not_update_statistics(self):
        cache = MaterializationCache()
        plan = Scan("t")
        cache.put(plan, small_relation())
        assert cache.contains(plan)
        assert cache.statistics.lookups == 0

    def test_invalidate_table_removes_dependent_entries(self):
        cache = MaterializationCache()
        dependent = Select(Scan("t"), col("id").eq(lit(1)))
        independent = Scan("u")
        cache.put(dependent, small_relation())
        cache.put(independent, small_relation())
        removed = cache.invalidate_table("t")
        assert removed == 1
        assert cache.get(dependent) is None
        assert cache.get(independent) is not None

    def test_clear(self):
        cache = MaterializationCache()
        cache.put(Scan("t"), small_relation())
        cache.clear()
        assert len(cache) == 0

    def test_lru_eviction(self):
        cache = MaterializationCache(max_entries=2)
        cache.put(Scan("a"), small_relation())
        cache.put(Scan("b"), small_relation())
        cache.get(Scan("a"))  # touch 'a' so 'b' becomes the eviction victim
        cache.put(Scan("c"), small_relation())
        assert cache.get(Scan("a")) is not None
        assert cache.get(Scan("b")) is None
        assert cache.get(Scan("c")) is not None

    def test_size_counters(self):
        cache = MaterializationCache()
        cache.put(Scan("a"), small_relation())
        assert cache.statistics.entries == 1
        assert cache.statistics.cached_rows == 2


class TestDatabase:
    def test_execute_caches_results(self):
        db = Database()
        db.create_table("t", small_relation())
        plan = Select(Scan("t"), col("id").eq(lit(1)))
        db.execute(plan)
        db.execute(plan)
        assert db.cache.statistics.hits >= 1

    def test_cache_invalidated_on_table_update(self):
        db = Database()
        db.create_table("t", small_relation())
        plan = Aggregate(Scan("t"), [], [AggregateSpec("count", None, "n")])
        first = db.execute(plan)
        assert first.to_dicts()[0]["n"] == 2
        db.create_table("t", small_relation(rows=((1, "a"),)), replace=True)
        second = db.execute(plan)
        assert second.to_dicts()[0]["n"] == 1

    def test_cache_can_be_disabled_per_call(self):
        db = Database()
        db.create_table("t", small_relation())
        plan = Scan("t")
        db.execute(plan, use_cache=False)
        assert db.cache.statistics.lookups == 0

    def test_query_and_materialize_view(self):
        db = Database()
        db.create_table("t", small_relation())
        db.create_view("only_one", Select(Scan("t"), col("id").eq(lit(1))))
        assert db.query("only_one").num_rows == 1
        materialized = db.materialize_view("only_one")
        assert materialized.num_rows == 1
        assert db.cache.contains(Scan("only_one"))

    def test_clear_cache(self):
        db = Database()
        db.create_table("t", small_relation())
        db.execute(Scan("t"))
        db.clear_cache()
        assert len(db.cache) == 0

    def test_table_and_view_names(self):
        db = Database()
        db.create_table("t", small_relation())
        db.create_view("v", Scan("t"))
        assert db.table_names() == ["t"]
        assert db.view_names() == ["v"]

    def test_drop_table_and_view(self):
        db = Database()
        db.create_table("t", small_relation())
        db.create_view("v", Scan("t"))
        db.drop_view("v")
        db.drop_table("t")
        assert db.table_names() == []
        assert db.view_names() == []

    def test_create_table_from_dicts(self):
        db = Database()
        schema = Schema.of(a=DataType.INT)
        db.create_table_from_dicts("t", schema, [{"a": 1}, {"a": 2}])
        assert db.table("t").num_rows == 2
