"""Unit tests for schemas and fields."""

import pytest

from repro.errors import ColumnError, SchemaError
from repro.relational.column import DataType
from repro.relational.schema import Field, Schema


class TestField:
    def test_renamed(self):
        field = Field("a", DataType.INT)
        renamed = field.renamed("b")
        assert renamed.name == "b"
        assert renamed.dtype is DataType.INT
        assert field.name == "a"  # original unchanged

    def test_str(self):
        assert str(Field("a", DataType.STRING)) == "a:string"


class TestSchema:
    def test_of_constructor(self):
        schema = Schema.of(docID=DataType.INT, data=DataType.STRING)
        assert schema.names == ["docID", "data"]
        assert schema.dtypes == [DataType.INT, DataType.STRING]

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Field("a", DataType.INT), Field("a", DataType.STRING)])

    def test_contains_and_position(self):
        schema = Schema.of(a=DataType.INT, b=DataType.STRING)
        assert "a" in schema
        assert "c" not in schema
        assert schema.position("b") == 1

    def test_field_lookup_unknown(self):
        schema = Schema.of(a=DataType.INT)
        with pytest.raises(ColumnError):
            schema.field("missing")

    def test_dtype_of(self):
        schema = Schema.of(a=DataType.FLOAT)
        assert schema.dtype_of("a") is DataType.FLOAT

    def test_select(self):
        schema = Schema.of(a=DataType.INT, b=DataType.STRING, c=DataType.FLOAT)
        selected = schema.select(["c", "a"])
        assert selected.names == ["c", "a"]

    def test_rename(self):
        schema = Schema.of(a=DataType.INT, b=DataType.STRING)
        renamed = schema.rename({"a": "x"})
        assert renamed.names == ["x", "b"]

    def test_concat_without_clash(self):
        left = Schema.of(a=DataType.INT)
        right = Schema.of(b=DataType.STRING)
        combined = left.concat(right)
        assert combined.names == ["a", "b"]

    def test_concat_suffixes_clashing_names(self):
        left = Schema.of(a=DataType.INT, b=DataType.STRING)
        right = Schema.of(a=DataType.INT)
        combined = left.concat(right)
        assert combined.names == ["a", "b", "a_right"]

    def test_concat_double_clash(self):
        left = Schema.of(a=DataType.INT, a_right=DataType.INT)
        right = Schema.of(a=DataType.INT)
        combined = left.concat(right)
        assert combined.names == ["a", "a_right", "a_right_right"]

    def test_compatible_with(self):
        left = Schema.of(a=DataType.INT, b=DataType.STRING)
        right = Schema.of(x=DataType.INT, y=DataType.STRING)
        other = Schema.of(x=DataType.STRING, y=DataType.INT)
        assert left.compatible_with(right)
        assert not left.compatible_with(other)

    def test_equality(self):
        assert Schema.of(a=DataType.INT) == Schema.of(a=DataType.INT)
        assert Schema.of(a=DataType.INT) != Schema.of(a=DataType.FLOAT)

    def test_iteration(self):
        schema = Schema.of(a=DataType.INT, b=DataType.STRING)
        assert [field.name for field in schema] == ["a", "b"]
        assert len(schema) == 2
