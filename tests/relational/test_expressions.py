"""Unit tests for scalar expressions."""

import pytest

from repro.errors import ExpressionError, TypeMismatchError
from repro.relational.column import DataType
from repro.relational.expressions import (
    BinaryOp,
    FunctionCall,
    InList,
    UnaryOp,
    col,
    func,
    lit,
)
from repro.relational.functions import default_registry
from repro.relational.relation import Relation
from repro.relational.schema import Schema


@pytest.fixture
def relation():
    schema = Schema.of(a=DataType.INT, b=DataType.FLOAT, name=DataType.STRING, flag=DataType.BOOL)
    return Relation.from_rows(
        schema,
        [
            (1, 2.0, "toy", True),
            (2, 4.0, "book", False),
            (3, 6.0, "toy", True),
        ],
    )


@pytest.fixture
def functions():
    return default_registry()


class TestColumnRefAndLiteral:
    def test_column_ref_evaluates(self, relation, functions):
        assert col("a").evaluate(relation, functions).to_list() == [1, 2, 3]

    def test_column_ref_type_and_references(self, relation, functions):
        expr = col("b")
        assert expr.output_type(relation.schema, functions) is DataType.FLOAT
        assert expr.references() == {"b"}

    def test_literal_constant_column(self, relation, functions):
        assert lit(7).evaluate(relation, functions).to_list() == [7, 7, 7]

    def test_literal_sql_rendering(self):
        assert lit("it's").to_sql() == "'it''s'"
        assert lit(True).to_sql() == "TRUE"
        assert lit(3).to_sql() == "3"


class TestArithmetic:
    def test_addition(self, relation, functions):
        result = (col("a") + col("a")).evaluate(relation, functions)
        assert result.to_list() == [2, 4, 6]

    def test_mixed_int_float_widens(self, relation, functions):
        result = (col("a") + col("b")).evaluate(relation, functions)
        assert result.dtype is DataType.FLOAT
        assert result.to_list() == [3.0, 6.0, 9.0]

    def test_division_always_float(self, relation, functions):
        result = (col("a") / lit(2)).evaluate(relation, functions)
        assert result.dtype is DataType.FLOAT
        assert result.to_list() == [0.5, 1.0, 1.5]

    def test_subtraction_and_multiplication(self, relation, functions):
        assert (col("b") - col("a")).evaluate(relation, functions).to_list() == [1.0, 2.0, 3.0]
        assert (col("a") * lit(10)).evaluate(relation, functions).to_list() == [10, 20, 30]

    def test_arithmetic_on_strings_rejected(self, relation, functions):
        with pytest.raises(TypeMismatchError):
            (col("name") + lit(1)).evaluate(relation, functions)


class TestComparisons:
    def test_equality_on_strings(self, relation, functions):
        mask = col("name").eq(lit("toy")).evaluate(relation, functions)
        assert mask.to_list() == [True, False, True]

    def test_numeric_comparisons(self, relation, functions):
        assert col("a").gt(lit(1)).evaluate(relation, functions).to_list() == [False, True, True]
        assert col("a").le(lit(2)).evaluate(relation, functions).to_list() == [True, True, False]
        assert col("a").ne(lit(2)).evaluate(relation, functions).to_list() == [True, False, True]

    def test_comparison_output_type(self, relation, functions):
        assert col("a").lt(lit(2)).output_type(relation.schema, functions) is DataType.BOOL

    def test_string_to_number_comparison_rejected(self, relation, functions):
        with pytest.raises(TypeMismatchError):
            col("name").eq(lit(1)).evaluate(relation, functions)


class TestBooleanLogic:
    def test_and_or(self, relation, functions):
        expr = col("name").eq(lit("toy")).and_(col("a").gt(lit(1)))
        assert expr.evaluate(relation, functions).to_list() == [False, False, True]
        expr = col("name").eq(lit("book")).or_(col("a").eq(lit(1)))
        assert expr.evaluate(relation, functions).to_list() == [True, True, False]

    def test_boolean_requires_boolean_operands(self, relation, functions):
        with pytest.raises(TypeMismatchError):
            BinaryOp("and", col("a"), col("flag")).evaluate(relation, functions)

    def test_not(self, relation, functions):
        expr = UnaryOp("not", col("flag"))
        assert expr.evaluate(relation, functions).to_list() == [False, True, False]

    def test_negation(self, relation, functions):
        expr = UnaryOp("-", col("a"))
        assert expr.evaluate(relation, functions).to_list() == [-1, -2, -3]

    def test_unknown_operators_rejected(self):
        with pytest.raises(ExpressionError):
            BinaryOp("%", col("a"), lit(2))
        with pytest.raises(ExpressionError):
            UnaryOp("abs", col("a"))


class TestInList:
    def test_membership(self, relation, functions):
        expr = col("name").isin(["toy", "game"])
        assert expr.evaluate(relation, functions).to_list() == [True, False, True]

    def test_empty_list_rejected(self):
        with pytest.raises(ExpressionError):
            InList(col("a"), [])

    def test_sql_rendering(self):
        assert col("a").isin([1, 2]).to_sql() == "(a IN (1, 2))"


class TestFunctionCalls:
    def test_lcase(self, relation, functions):
        expr = func("lcase", col("name"))
        assert expr.evaluate(relation, functions).to_list() == ["toy", "book", "toy"]

    def test_log(self, relation, functions):
        expr = func("log", col("b"))
        values = expr.evaluate(relation, functions).to_list()
        assert values[0] == pytest.approx(0.6931, abs=1e-3)

    def test_stem(self, relation, functions):
        expr = FunctionCall("stem", [lit("running"), lit("sb-english")])
        assert expr.evaluate(relation, functions).to_list() == ["run", "run", "run"]

    def test_nested_references(self, functions, relation):
        expr = func("lcase", col("name"))
        assert expr.references() == {"name"}

    def test_sql_rendering(self):
        assert func("lcase", col("name")).to_sql() == "lcase(name)"


class TestSqlRendering:
    def test_binary_and_unary(self):
        expr = col("a").eq(lit(1)).and_(col("b").gt(lit(2.0)))
        assert expr.to_sql() == "((a = 1) AND (b > 2.0))"
        assert UnaryOp("not", col("flag")).to_sql() == "(NOT flag)"
