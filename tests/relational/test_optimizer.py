"""Unit tests for the rule-based plan optimizer."""

import pytest

from repro.relational.algebra import Join, Limit, Project, Scan, Select
from repro.relational.column import DataType
from repro.relational.database import Database
from repro.relational.expressions import BinaryOp, col, lit
from repro.relational.optimizer import optimize
from repro.relational.schema import Field, Schema


@pytest.fixture
def db():
    database = Database(cache_enabled=False, optimize_plans=True)
    schema = Schema([Field("id", DataType.INT), Field("kind", DataType.STRING)])
    database.create_table_from_rows(
        "left_table", schema, [(1, "a"), (2, "b"), (3, "a")]
    )
    database.create_table_from_rows(
        "right_table",
        Schema([Field("ref", DataType.INT), Field("label", DataType.STRING)]),
        [(1, "x"), (2, "y"), (3, "z")],
    )
    return database


class TestSelectionFusion:
    def test_adjacent_selections_fused(self):
        plan = Select(Select(Scan("t"), col("a").eq(lit(1))), col("b").eq(lit(2)))
        optimized = optimize(plan)
        assert isinstance(optimized, Select)
        assert isinstance(optimized.child, Scan)
        assert isinstance(optimized.predicate, BinaryOp)
        assert optimized.predicate.op == "and"

    def test_triple_selection_fused(self):
        plan = Select(
            Select(Select(Scan("t"), col("a").eq(lit(1))), col("b").eq(lit(2))),
            col("c").eq(lit(3)),
        )
        optimized = optimize(plan)
        assert isinstance(optimized, Select)
        assert isinstance(optimized.child, Scan)


class TestPredicatePushdown:
    def test_selection_pushed_into_projected_join_side(self):
        left = Project(Scan("left_table"), [("id", col("id")), ("kind", col("kind"))])
        right = Project(Scan("right_table"), [("ref", col("ref")), ("label", col("label"))])
        join = Join(left, right, [("id", "ref")])
        plan = Select(join, col("kind").eq(lit("a")))
        optimized = optimize(plan)
        assert isinstance(optimized, Join)
        assert isinstance(optimized.left, Select) or isinstance(optimized.left, Project)
        # the selection must no longer sit above the join
        assert not isinstance(optimized, Select)

    def test_pushdown_preserves_results(self, db):
        left = Project(Scan("left_table"), [("id", col("id")), ("kind", col("kind"))])
        right = Project(Scan("right_table"), [("ref", col("ref")), ("label", col("label"))])
        join = Join(left, right, [("id", "ref")])
        plan = Select(join, col("kind").eq(lit("a")))
        db.optimize_plans = False
        unoptimized = db.execute(plan, use_cache=False)
        db.optimize_plans = True
        optimized_result = db.execute(plan, use_cache=False)
        assert sorted(unoptimized.rows()) == sorted(optimized_result.rows())

    def test_selection_not_pushed_when_columns_unknown(self):
        # scans have no statically known columns, so pushdown must not happen
        join = Join(Scan("left_table"), Scan("right_table"), [("id", "ref")])
        plan = Select(join, col("kind").eq(lit("a")))
        optimized = optimize(plan)
        assert isinstance(optimized, Select)


class TestLimitPushdown:
    def test_limit_pushed_below_project(self):
        plan = Limit(Project(Scan("t"), [("a", col("a"))]), 5)
        optimized = optimize(plan)
        assert isinstance(optimized, Project)
        assert isinstance(optimized.child, Limit)

    def test_limit_above_scan_unchanged(self):
        plan = Limit(Scan("t"), 5)
        optimized = optimize(plan)
        assert isinstance(optimized, Limit)


class TestIdempotence:
    def test_optimize_is_idempotent(self):
        plan = Select(Select(Scan("t"), col("a").eq(lit(1))), col("b").eq(lit(2)))
        once = optimize(plan)
        twice = optimize(once)
        assert once.fingerprint() == twice.fingerprint()
