"""Equivalence tests: vectorized kernels vs the row-at-a-time references.

The vectorized join/aggregate/distinct kernels must produce *identical*
output — same rows, same order, same dtypes — as the original dictionary
implementations, which are kept as the fallback path for non-orderable
values.  Randomized relations (hypothesis) exercise duplicate keys, empty
inputs, multi-column keys, and every aggregate function.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.algebra import AggregateSpec
from repro.relational.column import Column, DataType, combine_codes
from repro.relational.operators import (
    _aggregate_relation_rows,
    _join_indices_rows,
    aggregate_relation,
    hash_join_indices,
)
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema

KEY_SCHEMA = Schema(
    [
        Field("k", DataType.INT),
        Field("name", DataType.STRING),
        Field("value", DataType.FLOAT),
    ]
)

ROW_STRATEGY = st.tuples(
    st.integers(min_value=0, max_value=6),
    st.sampled_from(["ant", "bee", "cat", "dog"]),
    st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False),
)


def make_relation(rows):
    return Relation.from_rows(KEY_SCHEMA, rows)


class TestJoinEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(ROW_STRATEGY, min_size=0, max_size=30),
        st.lists(ROW_STRATEGY, min_size=0, max_size=30),
        st.sampled_from(["inner", "left"]),
    )
    def test_single_key_join_matches_reference(self, left_rows, right_rows, how):
        left, right = make_relation(left_rows), make_relation(right_rows)
        expected = _join_indices_rows(left, right, ["k"], ["k"], how)
        actual = hash_join_indices(left, right, ["k"], ["k"], how)
        np.testing.assert_array_equal(actual[0], expected[0])
        np.testing.assert_array_equal(actual[1], expected[1])

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(ROW_STRATEGY, min_size=0, max_size=30),
        st.lists(ROW_STRATEGY, min_size=0, max_size=30),
        st.sampled_from(["inner", "left"]),
    )
    def test_multi_key_join_matches_reference(self, left_rows, right_rows, how):
        left, right = make_relation(left_rows), make_relation(right_rows)
        keys = ["k", "name"]
        expected = _join_indices_rows(left, right, keys, keys, how)
        actual = hash_join_indices(left, right, keys, keys, how)
        np.testing.assert_array_equal(actual[0], expected[0])
        np.testing.assert_array_equal(actual[1], expected[1])

    def test_string_keys_against_int_keys_fall_back(self):
        """Mixed-type key domains are not orderable: the dict path handles them."""
        left = Relation.from_rows(Schema([Field("k", DataType.STRING)]), [("1",), ("2",)])
        right = Relation.from_rows(Schema([Field("k", DataType.INT)]), [(1,), (2,)])
        left_out, right_out = hash_join_indices(left, right, ["k"], ["k"])
        assert len(left_out) == 0 and len(right_out) == 0

    def test_nan_keys_fall_back_and_never_match(self):
        """np.unique collapses NaNs; the dict path (NaN != NaN) must win."""
        nan = float("nan")
        schema = Schema([Field("k", DataType.FLOAT)])
        left = Relation.from_rows(schema, [(nan,), (1.0,)])
        right = Relation.from_rows(schema, [(nan,), (1.0,)])
        left_out, right_out = hash_join_indices(left, right, ["k"], ["k"])
        assert left_out.tolist() == [1] and right_out.tolist() == [1]
        duplicated = Relation.from_rows(schema, [(nan,), (nan,)])
        assert duplicated.distinct().num_rows == 2  # NaN rows are all distinct


class TestAggregateEquivalence:
    AGGREGATES = [
        AggregateSpec("count", None, "n"),
        AggregateSpec("sum", "value", "total"),
        AggregateSpec("avg", "value", "mean"),
        AggregateSpec("min", "value", "low"),
        AggregateSpec("max", "value", "high"),
        AggregateSpec("min", "name", "first_name"),
        AggregateSpec("max", "name", "last_name"),
        AggregateSpec("sum", "k", "k_total"),
    ]

    #: float sum/avg columns: numpy reduces pairwise, the reference folds
    #: left-to-right, so the last ulp may differ — compare those with approx
    FLOAT_SUM_COLUMNS = {"total", "mean"}

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(ROW_STRATEGY, min_size=0, max_size=40),
        st.sampled_from([["k"], ["name"], ["k", "name"], []]),
    )
    def test_aggregate_matches_reference(self, rows, keys):
        relation = make_relation(rows)
        expected = _aggregate_relation_rows(relation, keys, self.AGGREGATES)
        actual = aggregate_relation(relation, keys, self.AGGREGATES)
        assert actual.schema == expected.schema
        for name in actual.schema.names:
            actual_values = actual.column(name).to_list()
            expected_values = expected.column(name).to_list()
            if name in self.FLOAT_SUM_COLUMNS:
                np.testing.assert_allclose(actual_values, expected_values, rtol=1e-12)
            else:
                assert actual_values == expected_values

    @settings(max_examples=40, deadline=None)
    @given(st.lists(ROW_STRATEGY, min_size=0, max_size=40))
    def test_distinct_matches_reference(self, rows):
        relation = make_relation(rows)
        assert list(relation.distinct().rows()) == list(relation._distinct_rows().rows())


class TestFactorization:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(ROW_STRATEGY, min_size=1, max_size=40))
    def test_factorize_roundtrip(self, rows):
        for column in make_relation(rows).columns().values():
            codes, dictionary = column.factorize()
            assert list(dictionary[codes]) == list(column.values)

    def test_factorize_cache_propagates_through_take_and_filter(self):
        column = Column(["b", "a", "b", "c"], DataType.STRING)
        codes, dictionary = column.factorize()
        taken = column.take(np.asarray([2, 0, 3]))
        taken_codes, taken_dictionary = taken.factorize()
        assert taken_dictionary is dictionary
        np.testing.assert_array_equal(taken_codes, codes[[2, 0, 3]])
        filtered = column.filter(np.asarray([True, False, True, False]))
        filtered_codes, _ = filtered.factorize()
        np.testing.assert_array_equal(filtered_codes, codes[[0, 2]])

    def test_combine_codes_distinguishes_row_tuples(self):
        relation = make_relation([(1, "ant", 0.0), (1, "bee", 0.0), (2, "ant", 0.0)])
        codes = combine_codes([relation.column("k"), relation.column("name")], 3)
        assert len(set(codes.tolist())) == 3

    def test_combine_codes_empty_column_list_gives_one_group(self):
        codes = combine_codes([], 4)
        assert codes.tolist() == [0, 0, 0, 0]
