"""Engine-level snapshot tests: full round-trip, warm caches, CLI integration."""

from __future__ import annotations

import json

import pytest

from repro.engine import Engine
from repro.cli import main
from repro.relational.column import Column, DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.workloads import generate_auction_triples, generate_product_triples


@pytest.fixture(scope="module")
def product_engine():
    workload = generate_product_triples(80, seed=21)
    return Engine.from_triples(workload.triples), workload


def _docs_relation(descriptions: dict) -> Relation:
    schema = Schema([Field("docID", DataType.STRING), Field("data", DataType.STRING)])
    return Relation(
        schema,
        [
            Column(list(descriptions.keys()), DataType.STRING),
            Column(list(descriptions.values()), DataType.STRING),
        ],
    )


def test_engine_round_trip_strategy_results(tmp_path, product_engine):
    engine, workload = product_engine
    query = " ".join(next(iter(workload.descriptions.values())).split()[:3])
    expected = engine.strategy("toy", query=query).top(10)

    engine.save(tmp_path / "snap")
    reopened = Engine.open(tmp_path / "snap")
    assert reopened.strategy("toy", query=query).top(10) == expected
    assert reopened.language == engine.language
    assert reopened.triples_table == engine.triples_table


def test_engine_snapshot_warms_search_statistics(tmp_path):
    workload = generate_auction_triples(120, seed=37)
    engine = Engine.from_triples(workload.triples)
    engine.create_table("docs", _docs_relation(workload.lot_descriptions))
    query = " ".join(workload.lot_descriptions["lot1"].split()[:3])
    expected = engine.search("docs", query).top(5)

    engine.save(tmp_path / "snap")
    reopened = Engine.open(tmp_path / "snap")
    searcher = reopened._search_engine(
        "docs", model=None, pipeline="direct", expander=None,
        id_column="docID", text_column="data",
    )
    assert not searcher.is_warm  # statistics hydrate lazily...
    assert reopened.search("docs", query).top(5) == expected
    assert searcher.is_warm  # ...and came from the snapshot, not a rebuild


def test_engine_snapshot_warms_plan_cache(tmp_path, product_engine):
    engine, _ = product_engine
    program = "hits = SELECT [$2=\"category\"] (triples);"
    engine.spinql(program).execute()

    engine.save(tmp_path / "snap")
    reopened = Engine.open(tmp_path / "snap")
    misses_before = reopened.plan_cache.statistics.misses
    reopened.spinql(program).execute()
    assert reopened.plan_cache.statistics.misses == misses_before
    assert reopened.plan_cache.statistics.hits >= 1


def test_reload_after_snapshot_invalidates_and_rebuilds(tmp_path, product_engine):
    engine, _ = product_engine
    engine.save(tmp_path / "snap")
    reopened = Engine.open(tmp_path / "snap")
    before = reopened.store.num_triples
    reopened.load_triples([("extra", "type", "thing")])
    assert reopened.store.num_triples == before + 1
    matched = reopened.store.match(subject="extra")
    assert matched.relation.num_rows == 1


def test_cli_snapshot_and_from_snapshot(tmp_path, capsys):
    out = tmp_path / "snap"
    assert main(["snapshot", "--out", str(out), "--scenario", "toy",
                 "--products", "60", "--seed", "21", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["command"] == "snapshot"
    assert payload["triples"] > 0

    assert main(["toy", "--from-snapshot", str(out), "--query", "wooden", "--json"]) == 0
    result = json.loads(capsys.readouterr().out)
    assert result["command"] == "toy"
    assert "results" in result


def test_cli_from_snapshot_requires_query(tmp_path, capsys):
    out = tmp_path / "snap"
    assert main(["snapshot", "--out", str(out), "--scenario", "toy",
                 "--products", "60", "--seed", "21"]) == 0
    capsys.readouterr()
    assert main(["toy", "--from-snapshot", str(out)]) == 1
    assert "--query" in capsys.readouterr().err


def test_cli_missing_snapshot_reports_error(capsys):
    assert main(["auction", "--from-snapshot", "/no/such/dir", "--query", "x"]) == 1
    err = capsys.readouterr().err
    assert "error:" in err and "/no/such/dir" in err


def test_cli_snapshot_rejects_conflicting_sources(tmp_path, capsys):
    out = tmp_path / "snap"
    assert main(["snapshot", "--out", str(out), "--scenario", "toy",
                 "--products", "60"]) == 0
    capsys.readouterr()
    code = main(["snapshot", "--out", str(tmp_path / "b"),
                 "--from-triples", "x.txt", "--from-snapshot", str(out)])
    assert code == 1
    assert "exactly one" in capsys.readouterr().err


def test_cli_snapshot_onto_existing_file_reports_error(tmp_path, capsys):
    target = tmp_path / "occupied"
    target.write_text("file")
    assert main(["snapshot", "--out", str(target), "--scenario", "toy",
                 "--products", "60"]) == 1
    assert "occupied" in capsys.readouterr().err


def test_cli_snapshot_from_triples_file(tmp_path, capsys):
    triples_file = tmp_path / "triples.txt"
    triples_file.write_text(
        "lot1 type lot\nlot1 description \"an antique clock\"\n", encoding="utf-8"
    )
    out = tmp_path / "snap"
    assert main(["snapshot", "--out", str(out), "--from-triples", str(triples_file)]) == 0
    assert main(["snapshot", "--out", str(out), "--from-triples", "/missing.txt"]) == 1
    assert "missing.txt" in capsys.readouterr().err
