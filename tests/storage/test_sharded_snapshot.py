"""Partitioned snapshots: layout, shard self-containment, error paths."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine import Engine
from repro.errors import EngineError, StorageError
from repro.relational.column import Column, DataType
from repro.relational.partitioner import HashRangePartitioner, fnv1a_64
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.storage.shards import (
    is_sharded_snapshot,
    read_shard_map,
    shard_rowids,
)
from repro.workloads import generate_auction_triples


@pytest.fixture(scope="module")
def auction_engine_with_docs():
    workload = generate_auction_triples(150, seed=37)
    engine = Engine.from_triples(workload.triples)
    schema = Schema([Field("docID", DataType.STRING), Field("data", DataType.STRING)])
    docs = Relation(
        schema,
        [
            Column(list(workload.lot_descriptions.keys()), DataType.STRING),
            Column(list(workload.lot_descriptions.values()), DataType.STRING),
        ],
    )
    engine.create_table("docs", docs)
    query = " ".join(workload.lot_descriptions["lot1"].split()[:3])
    engine.search("docs", query).execute()  # warm statistics get split into shards
    return engine, query


class TestPartitioner:
    def test_hash_is_stable_across_calls(self):
        assert fnv1a_64("lot42") == fnv1a_64("lot42")
        assert fnv1a_64("lot42") != fnv1a_64("lot43")

    def test_ranges_are_reasonably_balanced(self):
        partitioner = HashRangePartitioner(4)
        hashes = np.asarray([fnv1a_64(f"key{i}") for i in range(2000)], dtype=np.uint64)
        counts = np.bincount(partitioner.shard_of_hashes(hashes), minlength=4)
        assert counts.min() > 0.5 * 2000 / 4

    def test_partition_indices_cover_and_preserve_order(self):
        relation = Relation(
            Schema([Field("k", DataType.STRING)]),
            [Column([f"v{i}" for i in range(100)], DataType.STRING)],
        )
        partitioner = HashRangePartitioner(3)
        parts = partitioner.partition_indices(relation, "k")
        assert sorted(np.concatenate(parts).tolist()) == list(range(100))
        for indices in parts:
            assert np.all(np.diff(indices) > 0) or len(indices) <= 1

    def test_single_shard_takes_everything(self):
        relation = Relation(
            Schema([Field("k", DataType.INT)]),
            [Column(np.arange(10), DataType.INT)],
        )
        parts = HashRangePartitioner(1).partition_indices(relation, "k")
        assert len(parts) == 1 and parts[0].tolist() == list(range(10))

    def test_rejects_zero_shards(self):
        with pytest.raises(StorageError):
            HashRangePartitioner(0)


class TestShardedLayout:
    def test_layout_and_shard_map(self, auction_engine_with_docs, tmp_path):
        engine, _query = auction_engine_with_docs
        path = engine.save(tmp_path / "snap", shards=3)
        assert is_sharded_snapshot(path)
        shard_map = read_shard_map(path)
        assert shard_map.num_shards == 3
        assert "docs" in shard_map.shard_keys and "triples" in shard_map.shard_keys
        assert shard_map.shard_keys["docs"] == "docID"
        for directory in shard_map.shard_directories:
            assert (directory / "manifest.json").exists()

    def test_fragments_partition_every_table(self, auction_engine_with_docs, tmp_path):
        engine, _query = auction_engine_with_docs
        path = engine.save(tmp_path / "snap", shards=3)
        shard_map = read_shard_map(path)
        for table in shard_map.table_names:
            source = engine.database.table(table)
            rows: list[np.ndarray] = []
            total = 0
            for shard in range(3):
                fragment = Engine.open_shard(path, shard).database.table(table)
                ids = shard_rowids(shard_map, shard).get(table)
                assert fragment.num_rows == len(ids)
                total += fragment.num_rows
                rows.append(np.asarray(ids))
            assert total == source.num_rows
            combined = np.sort(np.concatenate(rows)) if total else np.empty(0)
            assert combined.tolist() == list(range(source.num_rows))

    def test_shard_is_a_self_contained_engine(self, auction_engine_with_docs, tmp_path):
        engine, query = auction_engine_with_docs
        path = engine.save(tmp_path / "snap", shards=2)
        shard = Engine.open_shard(path, 0)
        # shard-local queries run against the fragment only
        fragment_docs = shard.database.table("docs")
        result = shard.search("docs", query).execute()
        assert len(result.ranked) <= fragment_docs.num_rows
        assert shard.store.num_triples < engine.store.num_triples

    def test_gathered_tables_are_bit_exact(self, auction_engine_with_docs, tmp_path):
        engine, _query = auction_engine_with_docs
        path = engine.save(tmp_path / "snap", shards=3)
        opened = Engine.open_sharded(path)
        for table in engine.database.table_names():
            assert opened.database.table(table) == engine.database.table(table)
        assert [t.as_row() for t in opened.store._triples] == [
            t.as_row() for t in engine.store._triples
        ]
        opened.close()

    def test_shard_index_out_of_range(self, auction_engine_with_docs, tmp_path):
        engine, _query = auction_engine_with_docs
        path = engine.save(tmp_path / "snap", shards=2)
        with pytest.raises(StorageError):
            Engine.open_shard(path, 5)

    def test_invalid_shard_key_is_reported(self, auction_engine_with_docs, tmp_path):
        engine, _query = auction_engine_with_docs
        with pytest.raises(StorageError, match="shard key"):
            engine.save(tmp_path / "snap", shards=2, shard_keys={"docs": "nope"})


class TestShardMapErrors:
    def _sharded(self, tmp_path):
        workload = generate_auction_triples(40, seed=5)
        engine = Engine.from_triples(workload.triples)
        return engine.save(tmp_path / "snap", shards=2)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(StorageError):
            read_shard_map(tmp_path / "missing")

    def test_plain_snapshot_is_not_a_shard_map(self, tmp_path):
        workload = generate_auction_triples(40, seed=5)
        path = Engine.from_triples(workload.triples).save(tmp_path / "plain")
        assert not is_sharded_snapshot(path)
        with pytest.raises(StorageError):
            read_shard_map(path)

    def test_corrupt_shard_map_raises_storage_error(self, tmp_path):
        path = self._sharded(tmp_path)
        manifest_path = path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["shard_directories"]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StorageError, match="malformed"):
            Engine.open_sharded(path)

    def test_truncated_shard_list_raises_storage_error(self, tmp_path):
        path = self._sharded(tmp_path)
        manifest_path = path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["shard_directories"] = manifest["shard_directories"][:1]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StorageError):
            read_shard_map(path)

    def test_unparseable_manifest_raises_storage_error(self, tmp_path):
        path = self._sharded(tmp_path)
        (path / "manifest.json").write_text("{not json")
        with pytest.raises(StorageError):
            Engine.open_sharded(path)


class TestLifecycle:
    def test_close_releases_and_rejects_queries(self, tmp_path):
        workload = generate_auction_triples(60, seed=5)
        path = Engine.from_triples(workload.triples).save(tmp_path / "snap")
        engine = Engine.open(path)
        engine.store.match(property_name="hasAuction")
        engine.close()
        assert engine.closed
        assert engine.database.table_names() == []
        with pytest.raises(EngineError, match="closed"):
            engine.spinql("out = SELECT [$2=\"hasAuction\"] (triples);").execute()
        engine.close()  # idempotent

    def test_context_manager_closes(self, tmp_path):
        workload = generate_auction_triples(60, seed=5)
        path = Engine.from_triples(workload.triples).save(tmp_path / "snap")
        with Engine.open(path) as engine:
            assert not engine.closed
        assert engine.closed

    def test_sharded_close_closes_shard_engines(self, tmp_path):
        workload = generate_auction_triples(60, seed=5)
        path = Engine.from_triples(workload.triples).save(tmp_path / "snap", shards=2)
        engine = Engine.open_sharded(path)
        backends = list(engine._plan_executor.backends)
        engine.close()
        assert all(backend.engine.closed for backend in backends)
