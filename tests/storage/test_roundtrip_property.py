"""Hypothesis round-trip properties for the columnar snapshot format.

``save → open`` must be *bit-exact* for every dtype — including NaN and
signed-zero floats, empty tables, and unicode strings — and a query on an
opened (memmap-backed) snapshot must equal the same query on the in-memory
original, including tie order.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.algebra import Aggregate, AggregateSpec, Scan, Select, Sort, SortKey
from repro.relational.column import Column, DataType
from repro.relational.database import Database
from repro.relational.expressions import col, lit
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.storage import open_relation, save_relation

_NAMES = st.lists(
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=0x7F),
        min_size=1,
        max_size=8,
    ),
    min_size=1,
    max_size=5,
    unique=True,
)

_DTYPES = st.sampled_from(list(DataType))


def _values_for(dtype: DataType, rows: int) -> st.SearchStrategy[list]:
    if dtype is DataType.INT:
        element = st.integers(min_value=-(2**62), max_value=2**62)
    elif dtype is DataType.FLOAT:
        element = st.floats(allow_nan=True, allow_infinity=True, width=64)
    elif dtype is DataType.BOOL:
        element = st.booleans()
    else:
        element = st.text(max_size=20)
    return st.lists(element, min_size=rows, max_size=rows)


@st.composite
def relations(draw: st.DrawFn) -> Relation:
    names = draw(_NAMES)
    rows = draw(st.integers(min_value=0, max_value=30))
    fields = []
    columns = []
    for name in names:
        dtype = draw(_DTYPES)
        fields.append(Field(name, dtype))
        columns.append(Column(draw(_values_for(dtype, rows)), dtype))
    return Relation(Schema(fields), columns)


def _assert_bit_exact(original: Relation, reopened: Relation) -> None:
    assert reopened.schema == original.schema
    assert reopened.num_rows == original.num_rows
    for field in original.schema:
        left = original.column(field.name)
        right = reopened.column(field.name)
        if field.dtype is DataType.STRING:
            assert right.to_list() == left.to_list()
        else:
            numpy_dtype = field.dtype.numpy_dtype
            left_bytes = left.values.astype(numpy_dtype, copy=False).tobytes()
            right_bytes = right.values.astype(numpy_dtype, copy=False).tobytes()
            assert right_bytes == left_bytes


@settings(max_examples=60, deadline=None)
@given(relations())
def test_save_open_is_bit_exact(tmp_path_factory, relation: Relation) -> None:
    directory = tmp_path_factory.mktemp("roundtrip")
    save_relation(relation, directory / "rel")
    _assert_bit_exact(relation, open_relation(directory / "rel"))


@settings(max_examples=60, deadline=None)
@given(relations())
def test_save_open_without_mmap_is_bit_exact(tmp_path_factory, relation: Relation) -> None:
    directory = tmp_path_factory.mktemp("roundtrip-eager")
    save_relation(relation, directory / "rel")
    _assert_bit_exact(relation, open_relation(directory / "rel", mmap=False))


_QUERY_SCHEMA = Schema(
    [
        Field("key", DataType.STRING),
        Field("value", DataType.INT),
        Field("p", DataType.FLOAT),
    ]
)

_QUERY_ROWS = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c", "ü", ""]),
        st.integers(min_value=-5, max_value=5),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ),
    min_size=0,
    max_size=40,
)


def _query_plans():
    return [
        Select(Scan("t"), col("value").ge(lit(0))),
        Sort(Scan("t"), [SortKey("p", ascending=False), SortKey("key", ascending=True)]),
        Aggregate(
            Scan("t"),
            keys=["key"],
            aggregates=[AggregateSpec("sum", "value", "total"), AggregateSpec("count", None, "n")],
        ),
    ]


@settings(max_examples=40, deadline=None)
@given(_QUERY_ROWS)
def test_queries_on_snapshot_match_in_memory(tmp_path_factory, rows) -> None:
    """Identical results — including tie order — from memmap-backed tables."""
    relation = Relation.from_rows(_QUERY_SCHEMA, rows)
    in_memory = Database(cache_enabled=False)
    in_memory.create_table("t", relation)

    directory = tmp_path_factory.mktemp("dbquery")
    in_memory.save(directory / "db")
    reopened = Database.open(directory / "db", cache_enabled=False)

    for plan in _query_plans():
        expected = in_memory.execute(plan)
        actual = reopened.execute(plan)
        assert list(actual.rows()) == list(expected.rows())
        assert actual.schema == expected.schema


def test_empty_database_round_trips(tmp_path) -> None:
    database = Database()
    database.save(tmp_path / "db")
    reopened = Database.open(tmp_path / "db")
    assert reopened.table_names() == []


def test_nan_probability_column_round_trips(tmp_path) -> None:
    """NaN floats survive bit-exactly even though they defeat factorization."""
    schema = Schema([Field("p", DataType.FLOAT)])
    values = np.array([np.nan, 0.5, -0.0, np.inf, -np.inf])
    relation = Relation(schema, [Column(values, DataType.FLOAT)])
    save_relation(relation, tmp_path / "rel")
    reopened = open_relation(tmp_path / "rel")
    assert reopened.column("p").values.tobytes() == values.astype(np.float64).tobytes()
