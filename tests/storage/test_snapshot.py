"""Unit tests for the columnar snapshot subsystem (repro.storage)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import EngineError, SnapshotVersionError, StorageError
from repro.ir.inverted_index import InvertedIndex, PackedPostings
from repro.ir.statistics import build_statistics
from repro.relational.column import Column, DataType
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.storage import (
    FORMAT_VERSION,
    open_relation,
    save_relation,
)
from repro.triples.partitioning import (
    PropertyPartitionedStorage,
    SingleTableStorage,
    TypePartitionedStorage,
)
from repro.triples.triple_store import TripleStore

DOCS = [
    (1, "a book about history"),
    (2, "a cake recipe book"),
    (3, "history of cakes and baking"),
]


def _sample_relation() -> Relation:
    schema = Schema([Field("id", DataType.INT), Field("name", DataType.STRING)])
    return Relation(
        schema,
        [Column([3, 1, 2], DataType.INT), Column(["c", "a", "b"], DataType.STRING)],
    )


# -- database snapshots -------------------------------------------------------


def test_database_open_is_lazy_and_hydrates_on_scan(tmp_path):
    database = Database()
    database.create_table("items", _sample_relation())
    database.save(tmp_path / "db")

    reopened = Database.open(tmp_path / "db")
    assert reopened.table_names() == ["items"]
    assert not reopened.catalog.is_hydrated("items")
    assert reopened.table("items") == _sample_relation()
    assert reopened.catalog.is_hydrated("items")


def test_snapshot_string_column_seeds_factorize_cache(tmp_path):
    save_relation(_sample_relation(), tmp_path / "rel")
    column = open_relation(tmp_path / "rel").column("name")
    codes, dictionary = column.factorize()
    assert dictionary[codes].tolist() == ["c", "a", "b"]
    assert list(dictionary) == sorted(dictionary)


def test_snapshot_numeric_columns_are_memmapped(tmp_path):
    save_relation(_sample_relation(), tmp_path / "rel")
    column = open_relation(tmp_path / "rel").column("id")
    assert isinstance(column.values, np.memmap)


def test_create_table_replaces_lazy_table(tmp_path):
    database = Database()
    database.create_table("items", _sample_relation())
    database.save(tmp_path / "db")
    reopened = Database.open(tmp_path / "db")
    replacement = _sample_relation().head(1)
    reopened.create_table("items", replacement, replace=True)
    assert reopened.table("items") == replacement


# -- error paths --------------------------------------------------------------


def test_open_missing_directory_raises_storage_error(tmp_path):
    with pytest.raises(StorageError) as excinfo:
        open_relation(tmp_path / "nowhere")
    assert "nowhere" in str(excinfo.value)


def test_version_mismatch_mentions_rebuild_or_upgrade(tmp_path):
    save_relation(_sample_relation(), tmp_path / "rel")
    manifest_path = tmp_path / "rel" / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["format_version"] = FORMAT_VERSION + 1
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(SnapshotVersionError) as excinfo:
        open_relation(tmp_path / "rel")
    message = str(excinfo.value)
    assert "rebuild" in message and "upgrade" in message


def test_wrong_kind_is_rejected(tmp_path):
    save_relation(_sample_relation(), tmp_path / "rel")
    with pytest.raises(StorageError):
        Database.open(tmp_path / "rel")


def test_engine_open_missing_directory_raises_engine_error(tmp_path):
    from repro.engine import Engine

    with pytest.raises(EngineError) as excinfo:
        Engine.open(tmp_path / "missing")
    assert "missing" in str(excinfo.value)


def test_engine_open_version_mismatch_propagates(tmp_path):
    from repro.engine import Engine

    engine = Engine.from_triples([("s", "p", "o")])
    engine.save(tmp_path / "snap")
    manifest_path = tmp_path / "snap" / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["format_version"] = FORMAT_VERSION + 1
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(SnapshotVersionError):
        Engine.open(tmp_path / "snap")


# -- inverted index -----------------------------------------------------------


def test_inverted_index_round_trip(tmp_path):
    index = InvertedIndex.from_documents(DOCS)
    index.save(tmp_path / "index")
    reopened = InvertedIndex.open(tmp_path / "index")

    assert isinstance(reopened._postings, PackedPostings)
    assert reopened.vocabulary == index.vocabulary
    assert reopened.num_documents == index.num_documents
    for term in index.vocabulary:
        assert reopened.posting_list(term) == index.posting_list(term)
        assert reopened.document_frequency(term) == index.document_frequency(term)
    for doc_id, _ in DOCS:
        assert reopened.doc_length(doc_id) == index.doc_length(doc_id)
    assert reopened.to_relation() == index.to_relation()
    # raw (un-analyzed) lookups still work through the recorded analyzer
    assert reopened.posting_list("History") == index.posting_list("History")


def test_opened_index_thaws_on_write(tmp_path):
    index = InvertedIndex.from_documents(DOCS)
    index.save(tmp_path / "index")
    reopened = InvertedIndex.open(tmp_path / "index")
    reopened.add_document(4, "a new book about trains")
    assert isinstance(reopened._postings, dict)
    assert reopened.num_documents == 4
    assert reopened.document_frequency("book") == 3


def test_string_doc_ids_round_trip(tmp_path):
    index = InvertedIndex.from_documents([("d1", "wooden train"), ("d2", "toy train")])
    index.save(tmp_path / "index")
    reopened = InvertedIndex.open(tmp_path / "index")
    assert reopened.posting_list("train") == index.posting_list("train")
    assert reopened._doc_ids == ["d1", "d2"]


# -- collection statistics ----------------------------------------------------


def test_statistics_round_trip(tmp_path):
    statistics = build_statistics(DOCS)
    statistics.save(tmp_path / "stats")
    reopened = statistics.open(tmp_path / "stats")

    assert reopened.num_docs == statistics.num_docs
    assert reopened.doc_ids == statistics.doc_ids
    assert reopened.total_terms == statistics.total_terms
    assert reopened.term_ids == statistics.term_ids
    assert np.array_equal(reopened.doc_lengths, statistics.doc_lengths)
    for term in statistics.term_ids:
        left_docs, left_freqs = statistics.postings_for(term)
        right_docs, right_freqs = reopened.postings_for(term)
        assert np.array_equal(left_docs, right_docs)
        assert np.array_equal(left_freqs, right_freqs)
        assert reopened.df(term) == statistics.df(term)
        assert reopened.robertson_idf(term) == pytest.approx(statistics.robertson_idf(term))


def test_statistics_relations_match_after_round_trip(tmp_path):
    statistics = build_statistics(DOCS)
    statistics.save(tmp_path / "stats")
    reopened = statistics.open(tmp_path / "stats")
    assert reopened.tf_relation() == statistics.tf_relation()
    assert reopened.idf_relation() == statistics.idf_relation()
    assert reopened.doc_len_relation() == statistics.doc_len_relation()


# -- triple store -------------------------------------------------------------

TRIPLES = [
    ("lot1", "type", "lot"),
    ("lot1", "description", "antique wooden clock"),
    ("lot2", "type", "lot"),
    ("lot2", "description", "modern art print", 0.9),
]


def test_lazy_hydration_is_thread_safe(tmp_path):
    """Concurrent first scans of a lazy table run the loader exactly once."""
    from concurrent.futures import ThreadPoolExecutor

    database = Database()
    database.create_table("items", _sample_relation())
    database.save(tmp_path / "db")

    for _ in range(20):
        reopened = Database.open(tmp_path / "db")
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(lambda _: reopened.table("items"), range(8)))
        assert all(result is results[0] for result in results)
        assert results[0] == _sample_relation()


def test_numpy_scalar_objects_keep_their_types(tmp_path):
    """NumPy scalars tag as int/float/bool, not str (they are legal objects)."""
    store = TripleStore(storage=TypePartitionedStorage())
    store.add("a", "count", np.int64(42))
    store.add("a", "ratio", np.float64(0.5))
    store.add("a", "flag", np.bool_(True))
    store.load()
    store.save(tmp_path / "store")
    store.database.save(tmp_path / "db")

    reopened = TripleStore.open(tmp_path / "store", Database.open(tmp_path / "db"))
    objects = {triple.property: triple.object for triple in reopened._triples}
    assert objects["count"] == 42 and isinstance(objects["count"], int)
    assert objects["ratio"] == 0.5 and isinstance(objects["ratio"], float)
    assert objects["flag"] is True


def test_corrupt_engine_manifest_raises_engine_error(tmp_path):
    """A manifest passing the version check but missing keys must not traceback."""
    from repro.engine import Engine

    engine = Engine.from_triples([("s", "p", "o")])
    engine.save(tmp_path / "snap")
    manifest_path = tmp_path / "snap" / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    del manifest["triples_table"]
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(EngineError):
        Engine.open(tmp_path / "snap")


def test_resaving_an_opened_engine_keeps_warm_statistics(tmp_path):
    """open -> save must carry pending (unconsumed) statistics loaders along."""
    from repro.engine import Engine
    from repro.relational.column import Column

    engine = Engine.from_triples([("d1", "p", "o")])
    docs = Relation(
        Schema([Field("docID", DataType.STRING), Field("data", DataType.STRING)]),
        [
            Column(["d1", "d2"], DataType.STRING),
            Column(["wooden train", "toy train"], DataType.STRING),
        ],
    )
    engine.create_table("docs", docs)
    expected = engine.search("docs", "train").top(5)

    engine.save(tmp_path / "a")
    first = Engine.open(tmp_path / "a")
    first.save(tmp_path / "b")  # statistics loader pending, never consumed
    second_manifest = json.loads((tmp_path / "b" / "manifest.json").read_text())
    assert len(second_manifest["search_statistics"]) == 1

    second = Engine.open(tmp_path / "b")
    assert second.search("docs", "train").top(5) == expected


def test_failed_triple_hydration_raises_and_retries(tmp_path):
    """A failing loader must raise every time, never cache an empty store."""
    import shutil

    from repro.engine import Engine

    engine = Engine.from_triples([("s", "p", "o"), ("s2", "p", "o2")])
    engine.save(tmp_path / "snap")
    reopened = Engine.open(tmp_path / "snap")
    shutil.rmtree(tmp_path / "snap" / "store" / "triples")
    with pytest.raises(StorageError):
        reopened.store.num_triples
    with pytest.raises(StorageError):  # retry must not yield an empty store
        reopened.store.num_triples


def test_concurrent_triple_hydration_is_consistent(tmp_path):
    """Racing first accesses all see the fully hydrated triple list."""
    from concurrent.futures import ThreadPoolExecutor

    from repro.engine import Engine

    engine = Engine.from_triples([(f"s{i}", "p", f"o{i}") for i in range(50)])
    engine.save(tmp_path / "snap")
    for _ in range(20):
        reopened = Engine.open(tmp_path / "snap")
        with ThreadPoolExecutor(max_workers=4) as pool:
            counts = list(pool.map(lambda _: reopened.store.num_triples, range(4)))
        assert counts == [50, 50, 50, 50]


def test_save_onto_existing_file_raises_storage_error(tmp_path):
    """mkdir failures surface as StorageError, not a raw OSError traceback."""
    from repro.engine import Engine

    target = tmp_path / "occupied"
    target.write_text("not a directory")
    engine = Engine.from_triples([("s", "p", "o")])
    with pytest.raises(StorageError) as excinfo:
        engine.save(target)
    assert "occupied" in str(excinfo.value)


def test_typed_objects_survive_round_trip_and_reload(tmp_path):
    """Int/float objects keep their types, so re-partitioning after open works."""
    store = TripleStore(storage=TypePartitionedStorage())
    store.add("lot1", "price", 42)
    store.add("lot1", "weight", 2.5)
    store.add("lot1", "name", "clock")
    store.load()
    store.save(tmp_path / "store")
    store.database.save(tmp_path / "db")

    database = Database.open(tmp_path / "db")
    reopened = TripleStore.open(tmp_path / "store", database)
    assert reopened.match(property_name="price", obj=42).relation.num_rows == 1

    # adding a triple re-runs storage.load() over the hydrated list; the
    # revived int must land back in the int partition, not the string one
    reopened.add("lot2", "price", 99)
    reopened.load()
    assert reopened.match(property_name="price", obj=42).relation.num_rows == 1
    assert reopened.match(property_name="price", obj=99).relation.num_rows == 1


@pytest.mark.parametrize(
    "storage_factory",
    [SingleTableStorage, PropertyPartitionedStorage, TypePartitionedStorage],
)
def test_triple_store_round_trip_reuses_partitions(tmp_path, storage_factory):
    store = TripleStore(storage=storage_factory())
    store.add_all(TRIPLES)
    store.load()
    store.save(tmp_path / "store")
    store.database.save(tmp_path / "db")

    database = Database.open(tmp_path / "db")
    reopened = TripleStore.open(tmp_path / "store", database)

    assert reopened.storage.name == store.storage.name
    assert reopened.match(property_name="type").relation == store.match(
        property_name="type"
    ).relation
    assert reopened.match(subject="lot2").relation == store.match(subject="lot2").relation
    assert reopened.num_triples == store.num_triples
    assert reopened.properties() == store.properties()
