"""The length-prefixed codec: relations, arrays, frames, error paths."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.errors import EngineError
from repro.pra.plan import PraParam, PraSelect
from repro.pra.relation import ProbabilisticRelation
from repro.relational.column import Column, DataType
from repro.relational.expressions import BinaryOp, Literal
from repro.pra.expressions import PositionalRef
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.serving import codec, shm
from repro.serving.codec import (
    KIND_INLINE,
    KIND_SHM,
    decode_message,
    encode_message,
    encode_tagged,
    pack_relation,
    read_frame,
    resolve_tagged,
    split_tagged,
    unpack_relation,
    write_frame,
)


class _ChunkedStream:
    """A read-only stream that returns at most ``chunk`` bytes per read.

    Models the short reads a socket file object can legally produce: a
    ``read(4)`` may return a single byte even though more data is coming.
    """

    def __init__(self, data: bytes, chunk: int = 1):
        self._buffer = io.BytesIO(data)
        self._chunk = chunk

    def read(self, size: int = -1) -> bytes:
        if size is None or size < 0:
            return self._buffer.read()
        return self._buffer.read(min(size, self._chunk))


def _relation() -> Relation:
    schema = Schema(
        [
            Field("name", DataType.STRING),
            Field("count", DataType.INT),
            Field("score", DataType.FLOAT),
            Field("flag", DataType.BOOL),
        ]
    )
    return Relation(
        schema,
        [
            Column(["a", "ünïcødé", "", "d"], DataType.STRING),
            Column(np.array([1, -5, 2**40, 0]), DataType.INT),
            Column(np.array([0.5, -1.25, 3.5e300, 0.0]), DataType.FLOAT),
            Column(np.array([True, False, True, False]), DataType.BOOL),
        ],
    )


class TestRelationPacking:
    def test_roundtrip_preserves_values_and_types(self):
        relation = _relation()
        restored = unpack_relation(pack_relation(relation))
        assert restored == relation
        assert restored.schema.names == relation.schema.names

    def test_empty_relation(self):
        schema = Schema([Field("x", DataType.STRING), Field("y", DataType.INT)])
        relation = Relation.empty(schema)
        restored = unpack_relation(pack_relation(relation))
        assert restored.num_rows == 0
        assert restored.schema.names == ["x", "y"]


class TestMessages:
    def test_roundtrip_with_nested_relations_and_arrays(self):
        message = {
            "op": "reply",
            "relation": _relation(),
            "probabilistic": ProbabilisticRelation.lift(
                _relation().select_columns(["name"])
            ),
            "rows": np.array([3, 1, 2], dtype=np.int64),
            "nested": {"inner": [np.array([1.5, 2.5]), "text", 7]},
        }
        decoded = decode_message(encode_message(message))
        assert decoded["op"] == "reply"
        assert decoded["relation"] == message["relation"]
        assert decoded["probabilistic"].value_rows() == message["probabilistic"].value_rows()
        np.testing.assert_array_equal(decoded["rows"], message["rows"])
        np.testing.assert_array_equal(decoded["nested"]["inner"][0], [1.5, 2.5])

    def test_roundtrip_plan(self):
        plan = PraSelect(PraParam("frag"), BinaryOp("=", PositionalRef(2), Literal("x")))
        decoded = decode_message(encode_message({"op": "segment", "plan": plan}))
        assert decoded["plan"].fingerprint() == plan.fingerprint()

    def test_length_prefix_mismatch_is_rejected(self):
        frame = bytearray(encode_message({"op": "ping"}))
        frame[3] ^= 0xFF  # corrupt the length prefix
        with pytest.raises(EngineError, match="length prefix"):
            decode_message(bytes(frame))

    def test_truncated_frame_is_rejected(self):
        with pytest.raises(EngineError, match="truncated"):
            decode_message(b"\x00\x01")


class TestStreamFraming:
    def test_frames_are_self_delimiting_on_a_byte_stream(self):
        stream = io.BytesIO()
        write_frame(stream, {"op": "a", "n": 1})
        write_frame(stream, {"op": "b", "relation": _relation()})
        stream.seek(0)
        first = read_frame(stream)
        second = read_frame(stream)
        assert first == {"op": "a", "n": 1}
        assert second["op"] == "b" and second["relation"] == _relation()
        with pytest.raises(EOFError):
            read_frame(stream)

    def test_mid_frame_truncation_is_reported(self):
        stream = io.BytesIO()
        write_frame(stream, {"op": "a", "payload": "x" * 100})
        data = stream.getvalue()[:-10]
        with pytest.raises(EngineError, match="mid-frame"):
            read_frame(io.BytesIO(data))

    def test_read_frame_survives_one_byte_short_reads(self):
        # A socket may return the 4-byte header one byte at a time; the
        # reader must loop, not treat the first short read as the header.
        stream = io.BytesIO()
        write_frame(stream, {"op": "a", "n": 1})
        write_frame(stream, {"op": "b", "relation": _relation()})
        chunked = _ChunkedStream(stream.getvalue(), chunk=1)
        assert read_frame(chunked) == {"op": "a", "n": 1}
        assert read_frame(chunked)["relation"] == _relation()
        with pytest.raises(EOFError):
            read_frame(chunked)

    def test_short_read_mid_header_is_reported(self):
        stream = io.BytesIO()
        write_frame(stream, {"op": "a"})
        data = stream.getvalue()[:2]  # half a header, then EOF
        with pytest.raises(EngineError, match="mid-frame header"):
            read_frame(_ChunkedStream(data, chunk=1))

    def test_inbound_frame_over_limit_is_rejected(self, monkeypatch):
        stream = io.BytesIO()
        write_frame(stream, {"op": "a", "payload": "x" * 256})
        monkeypatch.setattr(codec, "MAX_FRAME_BYTES", 64)
        stream.seek(0)
        with pytest.raises(EngineError, match="exceeds"):
            read_frame(stream)


class TestWriteSideLimit:
    def test_oversized_encode_is_refused_with_the_size_named(self, monkeypatch):
        monkeypatch.setattr(codec, "MAX_FRAME_BYTES", 64)
        message = {"op": "reply", "payload": "x" * 256}
        with pytest.raises(EngineError, match=r"refusing to encode") as excinfo:
            encode_message(message)
        # The error must name both the offending size and the limit so an
        # operator can tell which side to fix.
        text = str(excinfo.value)
        assert "-byte frame" in text and "64" in text

    def test_oversized_write_frame_is_refused(self, monkeypatch):
        monkeypatch.setattr(codec, "MAX_FRAME_BYTES", 64)
        stream = io.BytesIO()
        with pytest.raises(EngineError, match="refusing to encode"):
            write_frame(stream, {"op": "reply", "payload": "x" * 256})
        assert stream.getvalue() == b""  # nothing half-written


class TestTaggedFrames:
    def test_inline_roundtrip(self):
        message = {"op": "reply", "rows": np.array([1, 2, 3], dtype=np.int64)}
        request_id, kind, body = split_tagged(encode_tagged(42, message))
        assert request_id == 42
        assert kind == KIND_INLINE
        decoded = resolve_tagged(kind, body)
        assert decoded["op"] == "reply"
        np.testing.assert_array_equal(decoded["rows"], [1, 2, 3])

    def test_shm_roundtrip(self):
        if not shm.shared_memory_available():
            pytest.skip("multiprocessing.shared_memory unavailable")
        transport = shm.ShmTransport(threshold=0)
        message = {"op": "reply", "relation": _relation()}
        request_id, kind, body = split_tagged(
            encode_tagged(7, message, transport=transport)
        )
        assert request_id == 7
        assert kind == KIND_SHM
        decoded = resolve_tagged(kind, body)
        assert decoded["relation"] == _relation()

    def test_large_threshold_falls_back_to_inline(self):
        transport = shm.ShmTransport(threshold=1 << 40)
        tagged = encode_tagged(1, {"op": "ping"}, transport=transport)
        _, kind, _ = split_tagged(tagged)
        assert kind == KIND_INLINE

    def test_truncated_tagged_frame_is_rejected(self):
        with pytest.raises(EngineError, match="truncated tagged frame"):
            split_tagged(b"\x00\x01\x02")

    def test_unknown_kind_is_rejected(self):
        tagged = bytearray(encode_tagged(1, {"op": "ping"}))
        tagged[8:9] = b"Z"
        with pytest.raises(EngineError, match="unknown tagged-frame kind"):
            split_tagged(bytes(tagged))

    def test_malformed_shm_control_frame_is_rejected(self):
        body = encode_message({"shm": {"bogus": True}})
        with pytest.raises(EngineError, match="shared-memory control"):
            resolve_tagged(KIND_SHM, body)

    def test_non_control_shm_body_is_rejected(self):
        body = encode_message({"op": "reply"})
        with pytest.raises(EngineError, match="shared-memory control"):
            resolve_tagged(KIND_SHM, body)
