"""The length-prefixed codec: relations, arrays, frames, error paths."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.errors import EngineError
from repro.pra.plan import PraParam, PraSelect
from repro.pra.relation import ProbabilisticRelation
from repro.relational.column import Column, DataType
from repro.relational.expressions import BinaryOp, Literal
from repro.pra.expressions import PositionalRef
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.serving.codec import (
    decode_message,
    encode_message,
    pack_relation,
    read_frame,
    unpack_relation,
    write_frame,
)


def _relation() -> Relation:
    schema = Schema(
        [
            Field("name", DataType.STRING),
            Field("count", DataType.INT),
            Field("score", DataType.FLOAT),
            Field("flag", DataType.BOOL),
        ]
    )
    return Relation(
        schema,
        [
            Column(["a", "ünïcødé", "", "d"], DataType.STRING),
            Column(np.array([1, -5, 2**40, 0]), DataType.INT),
            Column(np.array([0.5, -1.25, 3.5e300, 0.0]), DataType.FLOAT),
            Column(np.array([True, False, True, False]), DataType.BOOL),
        ],
    )


class TestRelationPacking:
    def test_roundtrip_preserves_values_and_types(self):
        relation = _relation()
        restored = unpack_relation(pack_relation(relation))
        assert restored == relation
        assert restored.schema.names == relation.schema.names

    def test_empty_relation(self):
        schema = Schema([Field("x", DataType.STRING), Field("y", DataType.INT)])
        relation = Relation.empty(schema)
        restored = unpack_relation(pack_relation(relation))
        assert restored.num_rows == 0
        assert restored.schema.names == ["x", "y"]


class TestMessages:
    def test_roundtrip_with_nested_relations_and_arrays(self):
        message = {
            "op": "reply",
            "relation": _relation(),
            "probabilistic": ProbabilisticRelation.lift(
                _relation().select_columns(["name"])
            ),
            "rows": np.array([3, 1, 2], dtype=np.int64),
            "nested": {"inner": [np.array([1.5, 2.5]), "text", 7]},
        }
        decoded = decode_message(encode_message(message))
        assert decoded["op"] == "reply"
        assert decoded["relation"] == message["relation"]
        assert decoded["probabilistic"].value_rows() == message["probabilistic"].value_rows()
        np.testing.assert_array_equal(decoded["rows"], message["rows"])
        np.testing.assert_array_equal(decoded["nested"]["inner"][0], [1.5, 2.5])

    def test_roundtrip_plan(self):
        plan = PraSelect(PraParam("frag"), BinaryOp("=", PositionalRef(2), Literal("x")))
        decoded = decode_message(encode_message({"op": "segment", "plan": plan}))
        assert decoded["plan"].fingerprint() == plan.fingerprint()

    def test_length_prefix_mismatch_is_rejected(self):
        frame = bytearray(encode_message({"op": "ping"}))
        frame[3] ^= 0xFF  # corrupt the length prefix
        with pytest.raises(EngineError, match="length prefix"):
            decode_message(bytes(frame))

    def test_truncated_frame_is_rejected(self):
        with pytest.raises(EngineError, match="truncated"):
            decode_message(b"\x00\x01")


class TestStreamFraming:
    def test_frames_are_self_delimiting_on_a_byte_stream(self):
        stream = io.BytesIO()
        write_frame(stream, {"op": "a", "n": 1})
        write_frame(stream, {"op": "b", "relation": _relation()})
        stream.seek(0)
        first = read_frame(stream)
        second = read_frame(stream)
        assert first == {"op": "a", "n": 1}
        assert second["op"] == "b" and second["relation"] == _relation()
        with pytest.raises(EOFError):
            read_frame(stream)

    def test_mid_frame_truncation_is_reported(self):
        stream = io.BytesIO()
        write_frame(stream, {"op": "a", "payload": "x" * 100})
        data = stream.getvalue()[:-10]
        with pytest.raises(EngineError, match="mid-frame"):
            read_frame(io.BytesIO(data))
