"""ServingConfig: validation, round-trips, and the legacy-kwarg shim."""

from __future__ import annotations

import argparse
import warnings

import pytest

from repro.errors import EngineError
from repro.serving import ServingConfig
from repro.serving import config as config_module
from repro.serving.config import UNSET, resolve_config


@pytest.fixture(autouse=True)
def fresh_warning_state():
    """Each test sees the once-per-entry-point warning as if freshly imported."""
    with config_module._warn_lock:
        saved = set(config_module._warned_entry_points)
        config_module._warned_entry_points.clear()
    yield
    with config_module._warn_lock:
        config_module._warned_entry_points.clear()
        config_module._warned_entry_points.update(saved)


class TestValidation:
    def test_defaults_are_valid(self):
        config = ServingConfig()
        assert config.replicas == 1 and config.workers is None

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ServingConfig().replicas = 3  # type: ignore[misc]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"replicas": 0},
            {"workers": 0},
            {"workers": -1},
            {"transport": "carrier-pigeon"},
            {"start_method": "warp"},
            {"retry_budget": -1},
            {"max_restarts": -1},
            {"health_interval_seconds": 0},
            {"restart_backoff_seconds": -0.5},
            {"max_concurrent": 0},
            {"max_queue": -1},
            {"shm_threshold": -1},
            {"port": -1},
            {"port": 65536},
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(EngineError):
            ServingConfig(**kwargs)


class TestRoundTrips:
    def test_to_dict_from_dict(self):
        config = ServingConfig(workers=3, replicas=2, transport="inline", port=9999)
        assert ServingConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(EngineError, match="unknown"):
            ServingConfig.from_dict({"warp_factor": 9})

    def test_from_cli_args(self):
        args = argparse.Namespace(
            workers=4,
            replicas=2,
            transport="inline",
            shm_threshold=None,
            max_concurrent=8,
            max_queue=16,
            host="0.0.0.0",
            port=8123,
            health_interval_seconds=0.1,
            retry_budget=3,
        )
        config = ServingConfig.from_cli_args(args)
        assert config.workers == 4 and config.replicas == 2
        assert config.max_concurrent == 8 and config.port == 8123
        assert config.health_interval_seconds == 0.1 and config.retry_budget == 3
        # and it survives the serialization round trip
        assert ServingConfig.from_dict(config.to_dict()) == config

    def test_from_cli_args_workers_zero_means_default(self):
        config = ServingConfig.from_cli_args(argparse.Namespace(workers=0))
        assert config.workers is None

    def test_with_overrides(self):
        base = ServingConfig(workers=2)
        assert base.with_overrides(replicas=3).replicas == 3
        assert base.with_overrides(replicas=3).workers == 2
        assert base.replicas == 1  # the original is untouched


class TestLegacyShim:
    def test_legacy_kwargs_warn_once_per_entry_point(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = resolve_config(None, {"workers": 2, "mmap": UNSET}, "TestEntry")
            second = resolve_config(None, {"workers": 3}, "TestEntry")
            resolve_config(None, {"max_queue": 9}, "OtherEntry")
        assert first.workers == 2 and second.workers == 3
        messages = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(messages) == 2  # one per entry point, not per call
        assert "TestEntry" in str(messages[0].message)

    def test_no_warning_without_legacy_values(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            config = resolve_config(None, {"workers": UNSET}, "QuietEntry")
        assert config == ServingConfig()
        assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]

    def test_config_plus_legacy_kwarg_is_an_error(self):
        with pytest.raises(EngineError, match="both"):
            resolve_config(ServingConfig(), {"workers": 2}, "ConflictEntry")

    def test_legacy_behaviour_is_identical(self):
        legacy = resolve_config(
            None, {"workers": 2, "transport": "inline"}, "ParityEntry"
        )
        modern = ServingConfig(workers=2, transport="inline")
        assert legacy == modern
