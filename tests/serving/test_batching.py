"""Micro-batching: codec envelopes, coalesced pool writes, batch execution.

The adaptive data plane must be invisible in results: a batch of one is the
unbatched frame byte-for-byte, coalesced execution is bit-identical to
request-at-a-time execution, and every boundary condition (overflow splits,
oversized frames, mixed request kinds sharing a frame) degrades to clean
``EngineError`` or per-request handling — never to a desynced pipe.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine import Engine
from repro.errors import EngineError
from repro.relational.column import Column, DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.serving import Router, ServingConfig
from repro.serving.codec import (
    _LENGTH,
    BATCH_ENVELOPE_ID,
    KIND_BATCH,
    encode_batch,
    encode_tagged,
    resolve_tagged,
    split_batch,
    split_tagged,
)
from repro.workloads import generate_auction_triples

PROGRAM = 'out = SELECT [$2="hasAuction"] (triples);'


# ---------------------------------------------------------------------------
# codec: the batch envelope
# ---------------------------------------------------------------------------


class TestBatchCodec:
    def test_batch_of_one_is_the_unbatched_frame(self):
        frame = encode_tagged(7, {"op": "ping"})
        assert encode_batch([frame]) == frame

    def test_round_trip_preserves_sub_frames_and_ids(self):
        frames = [encode_tagged(index, {"op": "ping", "n": index}) for index in range(5)]
        batch = encode_batch(frames)
        envelope_id, kind, body = split_tagged(batch)
        assert envelope_id == BATCH_ENVELOPE_ID and kind == KIND_BATCH
        assert split_batch(body) == frames
        for index, sub in enumerate(split_batch(body)):
            sub_id, sub_kind, sub_body = split_tagged(sub)
            assert sub_id == index
            assert resolve_tagged(sub_kind, sub_body) == {"op": "ping", "n": index}

    def test_empty_batch_rejected(self):
        with pytest.raises(EngineError):
            encode_batch([])

    def test_oversized_batch_rejected(self, monkeypatch):
        import repro.serving.codec as codec

        frames = [encode_tagged(index, {"op": "ping"}) for index in range(3)]
        monkeypatch.setattr(codec, "MAX_FRAME_BYTES", sum(len(f) for f in frames) - 1)
        with pytest.raises(EngineError, match="wire limit"):
            encode_batch(frames)

    def test_oversized_sub_frame_length_rejected(self):
        # a corrupt length prefix can claim up to 2**32-1 bytes; anything
        # past MAX_FRAME_BYTES must fail as EngineError before allocation
        body = _LENGTH.pack(0xFFFFFFFF) + b"x" * 8
        with pytest.raises(EngineError):
            split_batch(body)

    def test_truncated_batch_rejected(self):
        frames = [encode_tagged(index, {"op": "ping"}) for index in range(2)]
        _id, _kind, body = split_tagged(encode_batch(frames))
        with pytest.raises(EngineError):
            split_batch(body[:-3])
        with pytest.raises(EngineError):
            split_batch(body + b"\x00\x01")

    def test_resolve_tagged_refuses_batch_kind(self):
        frames = [encode_tagged(index, {"op": "ping"}) for index in range(2)]
        _id, kind, body = split_tagged(encode_batch(frames))
        with pytest.raises(EngineError, match="split_batch"):
            resolve_tagged(kind, body)


# ---------------------------------------------------------------------------
# end-to-end: a batched pool must answer bit-identically
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def source_and_snapshot(tmp_path_factory):
    workload = generate_auction_triples(100, seed=37)
    engine = Engine.from_triples(workload.triples)
    schema = Schema([Field("docID", DataType.STRING), Field("data", DataType.STRING)])
    docs = Relation(
        schema,
        [
            Column(list(workload.lot_descriptions.keys()), DataType.STRING),
            Column(list(workload.lot_descriptions.values()), DataType.STRING),
        ],
    )
    engine.create_table("docs", docs)
    queries = [
        " ".join(text.split()[:3])
        for text in list(workload.lot_descriptions.values())[:6]
    ]
    path = engine.save(tmp_path_factory.mktemp("batching") / "snap", shards=2)
    return engine, path, queries


@pytest.fixture(scope="module")
def batched_engine(source_and_snapshot):
    _engine, path, _queries = source_and_snapshot
    # workers=1 puts both shards on one connection, so every scatter's
    # begin-all-then-wait fan-out coalesces into one frame deterministically
    opened = Engine.open_sharded(
        path,
        executor="pool",
        config=ServingConfig(workers=1, max_batch_size=8),
    )
    yield opened
    opened.close()


class TestBatchedPoolBitIdentity:
    def test_batched_search_equals_unbatched(self, source_and_snapshot, batched_engine):
        engine, _path, queries = source_and_snapshot
        for query in queries:
            expected = engine.search("docs", query).execute()
            actual = batched_engine.search("docs", query).execute()
            assert list(actual.ranked.doc_ids) == list(expected.ranked.doc_ids)
            assert actual.ranked.scores.tobytes() == expected.ranked.scores.tobytes()

    def test_batches_actually_coalesced(self, batched_engine):
        pool = batched_engine._plan_executor._pool
        batching = pool.batching()
        assert batching["max_batch_size"] == 8
        # the 2-shard scatter over one connection writes multi-frame batches
        assert any(int(size) > 1 for size in batching["occupancy_histogram"])
        assert batching["frames"] > batching["writes"]

    def test_search_many_equals_per_query_execution(
        self, source_and_snapshot, batched_engine
    ):
        engine, _path, queries = source_and_snapshot
        batch = batched_engine.search_many("docs", queries, top_k=5)
        for query, result in zip(queries, batch):
            expected = engine.search("docs", query, top_k=5).execute()
            assert list(result.ranked.doc_ids) == list(expected.ranked.doc_ids)
            assert result.ranked.scores.tobytes() == expected.ranked.scores.tobytes()

    def test_execute_many_vectorized_matches_generic_path(
        self, source_and_snapshot, batched_engine
    ):
        _engine, _path, queries = source_and_snapshot
        query = batched_engine.search("docs", top_k=4)
        vectorized = query.execute_many([{"query": text} for text in queries])
        elementwise = [query.execute(query=text) for text in queries]
        for fast, slow in zip(vectorized, elementwise):
            assert list(fast.ranked.doc_ids) == list(slow.ranked.doc_ids)
            assert fast.ranked.scores.tobytes() == slow.ranked.scores.tobytes()
        tops = query.top_many(3, [{"query": text} for text in queries])
        assert tops == [query.top(3, query=text) for text in queries]

    def test_mixed_plan_and_search_kinds_in_one_batch(
        self, source_and_snapshot, batched_engine
    ):
        """Plan segments and searches queued together still answer correctly."""
        engine, _path, queries = source_and_snapshot
        expected_plan = engine.spinql(PROGRAM).top(6)
        expected_search = engine.search("docs", queries[0]).top(6)
        results: dict[str, object] = {}

        def run_plan():
            results["plan"] = batched_engine.spinql(PROGRAM).top(6)

        def run_search():
            results["search"] = batched_engine.search("docs", queries[0]).top(6)

        threads = [threading.Thread(target=run_plan), threading.Thread(target=run_search)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results["plan"] == expected_plan
        assert results["search"] == expected_search

    def test_overflow_splits_at_max_batch_size(self, source_and_snapshot):
        _engine, path, _queries = source_and_snapshot
        opened = Engine.open_sharded(
            path,
            executor="pool",
            config=ServingConfig(workers=1, max_batch_size=2),
        )
        try:
            connection = opened._plan_executor._pool._connections[0]
            futures = [connection.send({"op": "ping"}) for _ in range(5)]
            connection.wait(futures[-1], 10)
            for future in futures:
                kind, body = future.result(timeout=10)
                reply = resolve_tagged(kind, body)
                assert reply["ok"] and reply["value"]["pid"]
            histogram = opened._plan_executor._pool.batching()["occupancy_histogram"]
            assert all(int(size) <= 2 for size in histogram)
            assert histogram.get("2", 0) >= 2  # the overflow flushes
        finally:
            opened.close()


# ---------------------------------------------------------------------------
# router: in-flight request collapsing
# ---------------------------------------------------------------------------


class TestRequestCollapsing:
    def test_identical_concurrent_requests_collapse(self, batched_engine):
        router = Router(batched_engine, ServingConfig(workers=1, max_batch_size=8))
        request = {"kind": "search", "table": "docs", "query": "first lot", "top_k": 3}
        release = threading.Event()
        original = router._dispatch

        def slow_dispatch(payload):
            reply = original(payload)
            release.wait(timeout=10)
            return reply

        router._dispatch = slow_dispatch
        replies: list[dict] = []

        def leader():
            assert router._admit()
            replies.append(router._run_admitted(request))

        thread = threading.Thread(target=leader)
        thread.start()
        # wait until the leader has registered its in-flight entry, then
        # join it as a follower — deterministic overlap, no sleeps raced
        deadline = time.time() + 10
        while not router._inflight and time.time() < deadline:
            time.sleep(0.005)
        assert router._inflight

        follower_reply: list[dict] = []

        def follower():
            follower_reply.append(router.handle(dict(request)))

        follower_thread = threading.Thread(target=follower)
        follower_thread.start()
        deadline = time.time() + 10
        while router._collapse_hits == 0 and time.time() < deadline:
            time.sleep(0.005)
        release.set()
        thread.join(timeout=10)
        follower_thread.join(timeout=10)

        assert replies and follower_reply
        assert follower_reply[0] == replies[0]
        stats = router.statistics()
        assert stats["collapse_hits"] == 1
        assert stats["collapse_leaders"] == 1
        # both requests recorded their own workload entry with attribution
        records = [
            entry
            for entry in batched_engine.workload_log.snapshot()
            if entry.kind == "serve" and entry.collapsed is not None
        ]
        outcomes = sorted(entry.collapsed for entry in records[-2:])
        assert outcomes == ["follower", "leader"]

    def test_collapsing_disabled_by_config(self, batched_engine):
        router = Router(
            batched_engine,
            ServingConfig(workers=1, max_batch_size=8, collapse_requests=False),
        )
        request = {"kind": "search", "table": "docs", "query": "first lot", "top_k": 3}
        assert router._collapse_key(request) is None

    def test_info_requests_never_collapse(self, batched_engine):
        router = Router(batched_engine, ServingConfig(workers=1))
        assert router._collapse_key({"kind": "info"}) is None
