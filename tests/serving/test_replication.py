"""Replicated serving: replica routing, failover, and self-healing."""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.engine import Engine
from repro.errors import EngineError
from repro.relational.column import Column, DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.serving import Router, ServingConfig, WorkerPool
from repro.storage.shards import read_shard_map
from repro.workloads import generate_auction_triples

PROGRAM = 'out = SELECT [$2="hasAuction"] (triples);'

#: failover tests must not race the supervisor's restarts
NO_HEAL = ServingConfig(replicas=2, restart_workers=False)


@pytest.fixture(scope="module")
def source_and_snapshot(tmp_path_factory):
    workload = generate_auction_triples(100, seed=43)
    engine = Engine.from_triples(workload.triples)
    schema = Schema([Field("docID", DataType.STRING), Field("data", DataType.STRING)])
    engine.create_table(
        "docs",
        Relation(
            schema,
            [
                Column(list(workload.lot_descriptions.keys()), DataType.STRING),
                Column(list(workload.lot_descriptions.values()), DataType.STRING),
            ],
        ),
    )
    query = " ".join(workload.lot_descriptions["lot1"].split()[:3])
    engine.search("docs", query).execute()
    path = engine.save(tmp_path_factory.mktemp("replication") / "snap", shards=2)
    yield engine, path, query
    engine.close()


def wait_until(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestReplicaTopology:
    def test_replicas_multiply_workers(self, source_and_snapshot):
        _engine, path, _query = source_and_snapshot
        with WorkerPool(read_shard_map(path), NO_HEAL) as pool:
            assert pool.base_workers == 2 and pool.num_workers == 4
            # each shard is served by one slot per replica rank
            assert pool.replica_slots(0) == [0, 2]
            assert pool.replica_slots(1) == [1, 3]
            # every worker reports its shard set + the epoch it serves
            pings = pool.ping()
            assert [entry["shards"] for entry in pings] == [[0], [1], [0], [1]]
            assert all(entry["epoch"] == 0 for entry in pings)
            assert {entry["replica"] for entry in pool.liveness()} == {0, 1}

    def test_executor_info_reports_replicas(self, source_and_snapshot):
        _engine, path, _query = source_and_snapshot
        opened = Engine.open_sharded(path, executor="pool", config=NO_HEAL)
        try:
            info = opened.executor_info()
            assert info["replicas"] == 2 and info["workers"] == 4
        finally:
            opened.close()

    def test_replicated_results_are_bit_identical(self, source_and_snapshot):
        engine, path, query = source_and_snapshot
        opened = Engine.open_sharded(path, executor="pool", config=NO_HEAL)
        try:
            assert opened.spinql(PROGRAM).top(8) == engine.spinql(PROGRAM).top(8)
            assert opened.search("docs", query).top(8) == engine.search("docs", query).top(8)
        finally:
            opened.close()


class TestFailover:
    def test_sigkill_of_one_worker_is_invisible(self, source_and_snapshot):
        engine, path, query = source_and_snapshot
        opened = Engine.open_sharded(path, executor="pool", config=NO_HEAL)
        try:
            expected_spinql = engine.spinql(PROGRAM).top(8)
            expected_search = engine.search("docs", query).top(8)
            assert opened.spinql(PROGRAM).top(8) == expected_spinql
            pool = opened._plan_executor._pool
            # kill one replica of every shard: slots 0 and 1 (replica rank 0)
            for slot in (0, 1):
                victim = pool._processes[slot]
                os.kill(victim.pid, signal.SIGKILL)
                victim.join(timeout=10)
            for _ in range(3):
                assert opened.spinql(PROGRAM).top(8) == expected_spinql
                assert opened.search("docs", query).top(8) == expected_search
            assert pool.degraded
        finally:
            opened.close()

    def test_worker_dead_before_first_request(self, source_and_snapshot):
        """Regression: death between spawn and first reply == mid-request death."""
        _engine, path, query = source_and_snapshot
        opened = Engine.open_sharded(path, executor="pool", config=NO_HEAL)
        try:
            pool = opened._plan_executor._pool
            # no request has touched any worker yet; kill a replica of shard 0
            victim = pool._processes[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            # the very first request must route/fail over, not error out
            assert len(opened.spinql(PROGRAM).top(5)) == 5
            assert len(opened.search("docs", query).top(5)) == 5
        finally:
            opened.close()

    def test_all_replicas_dead_surfaces_clean_error(self, source_and_snapshot):
        _engine, path, _query = source_and_snapshot
        opened = Engine.open_sharded(path, executor="pool", config=NO_HEAL)
        try:
            pool = opened._plan_executor._pool
            for process in pool._processes:
                os.kill(process.pid, signal.SIGKILL)
                process.join(timeout=10)
            with pytest.raises(EngineError, match="died|replica"):
                opened.spinql(PROGRAM).execute()
        finally:
            opened.close()

    def test_pinned_requests_do_not_fail_over(self, source_and_snapshot):
        _engine, path, _query = source_and_snapshot
        with WorkerPool(read_shard_map(path), NO_HEAL) as pool:
            victim = pool._processes[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            # an explicit worker index pins the request: the death surfaces
            with pytest.raises(EngineError, match="died"):
                pool.request(0, 0, {"op": "ping"})
            # while unpinned routing still answers from the live replica
            assert pool.pick_worker(0) == 2

    def test_failover_events_are_observable(self, source_and_snapshot):
        _engine, path, _query = source_and_snapshot
        events: list[tuple[str, dict]] = []
        pool = WorkerPool(
            read_shard_map(path),
            NO_HEAL,
            on_event=lambda name, detail: events.append((name, detail)),
        )
        try:
            victim = pool._processes[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            # make the dead worker the *preferred* first attempt (not pinned):
            # the send fails and the request fails over to the live replica
            reply = pool.begin_request(0, 0, {"op": "ping"}, pinned=False).result()
            assert reply["shards"] == [0]
        finally:
            pool.close()
        failovers = [detail for name, detail in events if name == "failover"]
        assert failovers and failovers[0]["shard"] == 0


class TestSelfHealing:
    def test_supervisor_restarts_dead_worker(self, source_and_snapshot):
        engine, path, query = source_and_snapshot
        config = ServingConfig(
            replicas=2,
            health_interval_seconds=0.05,
            restart_backoff_seconds=0.05,
            restart_backoff_cap_seconds=0.2,
        )
        events: list[str] = []
        pool = WorkerPool(
            read_shard_map(path),
            config,
            on_event=lambda name, detail: events.append(name),
        )
        try:
            victim = pool._processes[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            assert pool.degraded
            assert wait_until(lambda: not pool.degraded), "worker was not restarted"
            liveness = pool.liveness()
            assert all(entry["alive"] for entry in liveness)
            assert liveness[0]["restarts"] == 1
            assert pool.replication()["restarts"] == 1
            # the restarted worker actually serves its shard again
            assert pool.request(0, 0, {"op": "ping"})["shards"] == [0]
            assert "worker-dead" in events and "worker-restart" in events
        finally:
            pool.close()

    def test_restart_budget_exhaustion_marks_failed(self, source_and_snapshot):
        _engine, path, _query = source_and_snapshot
        config = ServingConfig(
            replicas=2,
            health_interval_seconds=0.05,
            restart_backoff_seconds=0.01,
            restart_backoff_cap_seconds=0.05,
            max_restarts=0,
        )
        pool = WorkerPool(read_shard_map(path), config)
        try:
            victim = pool._processes[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            assert wait_until(lambda: pool.replication()["failed_workers"] == [0])
            assert pool.degraded
            # the surviving replica keeps the shard answerable
            assert pool.begin_request(None, 0, {"op": "ping"}).result()["shards"] == [0]
        finally:
            pool.close()

    def test_degraded_flag_reaches_health_endpoints(self, source_and_snapshot):
        _engine, path, _query = source_and_snapshot
        opened = Engine.open_sharded(path, executor="pool", config=NO_HEAL)
        try:
            router = Router(opened)
            assert router.health()["degraded"] is False
            victim = opened._plan_executor._pool._processes[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            assert router.health()["degraded"] is True
            stats = router.stats()
            assert stats["degraded"] is True
            assert stats["replication"]["replicas"] == 2
        finally:
            opened.close()

    def test_lifecycle_events_land_in_workload_log(self, source_and_snapshot):
        _engine, path, query = source_and_snapshot
        config = ServingConfig(
            replicas=2,
            health_interval_seconds=0.05,
            restart_backoff_seconds=0.05,
            restart_backoff_cap_seconds=0.2,
        )
        opened = Engine.open_sharded(path, executor="pool", config=config)
        try:
            pool = opened._plan_executor._pool
            victim = pool._processes[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            opened.search("docs", query).top(5)  # may fail over -> event record
            assert wait_until(lambda: not pool.degraded)
            records = [
                entry for entry in opened.workload_log.snapshot() if entry.kind == "event"
            ]
            names = {entry.request["event"] for entry in records}
            assert "worker-restart" in names
            assert all(entry.fingerprint.startswith("event::") for entry in records)
        finally:
            opened.close()
