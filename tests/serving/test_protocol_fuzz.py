"""Fuzzing the wire protocol: garbage in, clean errors out.

Every decoder entry point — :func:`decode_message`, :func:`read_frame`,
:func:`split_tagged`, :func:`resolve_tagged` — must map arbitrary bytes to
either a decoded message, :class:`~repro.errors.EngineError`, or (for the
stream reader, at a clean boundary) :class:`EOFError`.  Implementation
internals (``struct.error``, ``pickle.UnpicklingError``, ``KeyError``,
``UnicodeDecodeError``) escaping would crash the pool's receive loop with
an unattributed traceback instead of the worker-scoped error the pool
builds from :class:`EngineError`.

The generator is seeded, so failures reproduce; each case is either a
truncated/mutated prefix of a valid frame (exercises the deep unpickle and
column-unpack paths) or pure random bytes (exercises the header paths).
"""

from __future__ import annotations

import contextlib
import io
import random

import numpy as np
import pytest

try:
    import resource
except ImportError:  # pragma: no cover - Windows
    resource = None  # type: ignore[assignment]

from repro.errors import EngineError
from repro.relational.column import Column, DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.serving.codec import (
    KIND_BATCH,
    KIND_INLINE,
    KIND_SHM,
    decode_message,
    encode_batch,
    encode_message,
    encode_tagged,
    read_frame,
    resolve_tagged,
    split_batch,
    split_tagged,
)

TRIALS = 400

ALLOWED = (EngineError, EOFError)


@pytest.fixture(autouse=True)
def _bounded_address_space():
    """Cap the address space while fuzzing.

    A flipped bit can turn a pickle opcode into one that pre-allocates a
    buffer as large as its (corrupt) length field says — gigabytes from a
    300-byte frame.  With the cap, that allocation fails fast as
    ``MemoryError``, which the decoders must surface as ``EngineError``
    like any other corrupt-payload failure; without it the test box
    thrashes.  Best-effort: skipped where RLIMIT_AS is unsupported.
    """
    if resource is None:
        yield
        return
    limit = 4 * 1024**3
    soft, hard = resource.getrlimit(resource.RLIMIT_AS)
    try:
        resource.setrlimit(resource.RLIMIT_AS, (limit, hard))
    except (ValueError, OSError):  # pragma: no cover - can't lower the limit
        yield
        return
    try:
        yield
    finally:
        with contextlib.suppress(ValueError, OSError):
            resource.setrlimit(resource.RLIMIT_AS, (soft, hard))


def _valid_frame() -> bytes:
    schema = Schema([Field("s", DataType.STRING), Field("n", DataType.INT)])
    relation = Relation(
        schema,
        [
            Column(["alpha", "βέτα", ""], DataType.STRING),
            Column(np.array([1, 2, 3]), DataType.INT),
        ],
    )
    return encode_message(
        {"op": "reply", "relation": relation, "rows": np.arange(8, dtype=np.int64)}
    )


def _mutations(rng: random.Random, seed_frame: bytes):
    """Yield adversarial byte strings derived from a valid frame."""
    for _ in range(TRIALS):
        choice = rng.randrange(3)
        if choice == 0:  # truncated prefix
            yield seed_frame[: rng.randrange(len(seed_frame))]
        elif choice == 1:  # prefix + random tail
            cut = rng.randrange(len(seed_frame))
            tail = bytes(rng.randrange(256) for _ in range(rng.randrange(32)))
            yield seed_frame[:cut] + tail
        else:  # bit flips in place
            mutated = bytearray(seed_frame)
            for _ in range(rng.randrange(1, 8)):
                mutated[rng.randrange(len(mutated))] ^= 1 << rng.randrange(8)
            yield bytes(mutated)


class TestDecodeMessageFuzz:
    def test_mutated_frames_never_escape_raw(self):
        rng = random.Random(0xC0DEC)
        seed_frame = _valid_frame()
        for data in _mutations(rng, seed_frame):
            try:
                decode_message(data)
            except ALLOWED:
                pass
            # anything else (struct.error, pickle internals, KeyError,
            # UnicodeDecodeError) propagates and fails the test

    def test_pure_random_bytes(self):
        rng = random.Random(7)
        for _ in range(TRIALS):
            data = bytes(rng.randrange(256) for _ in range(rng.randrange(64)))
            try:
                decode_message(data)
            except ALLOWED:
                pass


class TestReadFrameFuzz:
    def test_mutated_streams_never_escape_raw(self):
        rng = random.Random(0xF4A3)
        seed_frame = _valid_frame()
        for data in _mutations(rng, seed_frame):
            stream = io.BytesIO(data)
            try:
                while True:
                    read_frame(stream)
            except ALLOWED:
                pass

    def test_random_byte_streams(self):
        rng = random.Random(99)
        for _ in range(TRIALS):
            data = bytes(rng.randrange(256) for _ in range(rng.randrange(128)))
            stream = io.BytesIO(data)
            try:
                while True:
                    read_frame(stream)
            except ALLOWED:
                pass


class TestTaggedFrameFuzz:
    def test_mutated_tagged_frames_never_escape_raw(self):
        rng = random.Random(0x7A66)
        seed_frame = encode_tagged(12345, {"op": "reply", "value": list(range(64))})
        for data in _mutations(rng, seed_frame):
            try:
                request_id, kind, body = split_tagged(data)
            except ALLOWED:
                continue
            assert kind in (KIND_INLINE, KIND_SHM, KIND_BATCH)
            try:
                if kind == KIND_BATCH:
                    for sub in split_batch(body):
                        sub_id, sub_kind, sub_body = split_tagged(sub)
                        resolve_tagged(sub_kind, sub_body)
                else:
                    resolve_tagged(kind, body)
            except ALLOWED:
                pass

    def test_mutated_batch_frames_never_escape_raw(self):
        # coalesced frames: mutations must fail as EngineError at the batch
        # envelope, the sub-frame header, or the sub-frame body — never as a
        # struct/pickle internal
        rng = random.Random(0xBA7C4)
        seed_frame = encode_batch(
            [encode_tagged(index, {"op": "reply", "value": list(range(16))}) for index in range(4)]
        )
        for data in _mutations(rng, seed_frame):
            try:
                request_id, kind, body = split_tagged(data)
                if kind != KIND_BATCH:
                    resolve_tagged(kind, body)
                    continue
                for sub in split_batch(body):
                    sub_id, sub_kind, sub_body = split_tagged(sub)
                    resolve_tagged(sub_kind, sub_body)
            except ALLOWED:
                pass

    def test_random_shm_control_bodies(self):
        # KIND_SHM bodies name segments that do not exist; the claim must
        # fail as EngineError, never KeyError/FileNotFoundError.
        rng = random.Random(3)
        for _ in range(100):
            name = "".join(rng.choice("abcdef0123456789") for _ in range(10))
            body = encode_message({"shm": {"name": f"no_such_{name}", "size": 16}})
            with pytest.raises(EngineError):
                resolve_tagged(KIND_SHM, body)
