"""Online re-sharding: the versioned shard map and the blueprint manager."""

from __future__ import annotations

import threading

import pytest

from repro.engine import Engine
from repro.errors import EngineError, StorageError
from repro.relational.column import Column, DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.serving import ServingConfig
from repro.storage.shards import read_shard_map
from repro.workloads import generate_auction_triples

PROGRAM = 'out = SELECT [$2="hasAuction"] (triples);'


@pytest.fixture(scope="module")
def source_and_snapshot(tmp_path_factory):
    workload = generate_auction_triples(120, seed=47)
    engine = Engine.from_triples(workload.triples)
    schema = Schema([Field("docID", DataType.STRING), Field("data", DataType.STRING)])
    engine.create_table(
        "docs",
        Relation(
            schema,
            [
                Column(list(workload.lot_descriptions.keys()), DataType.STRING),
                Column(list(workload.lot_descriptions.values()), DataType.STRING),
            ],
        ),
    )
    query = " ".join(workload.lot_descriptions["lot1"].split()[:3])
    engine.search("docs", query).execute()
    path = engine.save(tmp_path_factory.mktemp("blueprint") / "snap", shards=4)
    yield engine, path, query
    engine.close()


class TestShardMapAccessors:
    def test_fresh_map_is_epoch_zero(self, source_and_snapshot):
        _engine, path, _query = source_and_snapshot
        shard_map = read_shard_map(path)
        assert shard_map.epoch == 0
        assert shard_map.shards() == [0, 1, 2, 3]

    def test_shard_directory_is_bounds_checked(self, source_and_snapshot):
        _engine, path, _query = source_and_snapshot
        shard_map = read_shard_map(path)
        assert shard_map.shard_directory(2) == shard_map.shard_directories[2]
        with pytest.raises(StorageError):
            shard_map.shard_directory(4)
        with pytest.raises(StorageError):
            shard_map.shard_directory(-1)

    def test_shard_for_is_deterministic_and_in_range(self, source_and_snapshot):
        _engine, path, _query = source_and_snapshot
        shard_map = read_shard_map(path)
        placements = {key: shard_map.shard_for(key) for key in ("lot1", "lot2", "a")}
        assert all(0 <= shard < 4 for shard in placements.values())
        again = read_shard_map(path)
        assert {key: again.shard_for(key) for key in placements} == placements

    def test_at_epoch_is_monotonic(self, source_and_snapshot):
        _engine, path, _query = source_and_snapshot
        shard_map = read_shard_map(path)
        advanced = shard_map.at_epoch(3)
        assert advanced.epoch == 3 and advanced.num_shards == shard_map.num_shards
        with pytest.raises(StorageError, match="monotonic"):
            advanced.at_epoch(2)

    def test_with_layout_builds_and_stamps_next_epoch(
        self, source_and_snapshot, tmp_path
    ):
        _engine, path, _query = source_and_snapshot
        shard_map = read_shard_map(path)
        rebuilt = shard_map.with_layout(2, tmp_path / "two")
        assert rebuilt.epoch == 1 and rebuilt.num_shards == 2
        # same tables, same shard keys — only the layout changed
        assert rebuilt.shard_keys == shard_map.shard_keys
        assert read_shard_map(path).num_shards == 4  # the source is untouched


class TestBlueprintManager:
    def test_requires_a_sharded_engine(self):
        engine = Engine.from_triples([("a", "b", "c", 1.0)])
        try:
            with pytest.raises(EngineError, match="sharded engine"):
                engine.blueprint_manager()
        finally:
            engine.close()

    def test_current_describes_the_serving_layout(self, source_and_snapshot):
        _engine, path, _query = source_and_snapshot
        opened = Engine.open_sharded(path)
        try:
            blueprint = opened.blueprint_manager().current()
            described = blueprint.describe()
            assert described["epoch"] == 0 and described["shards"] == 4
            assert described["executor"] == "sharded"
        finally:
            opened.close()

    def test_swap_requires_epoch_to_advance(self, source_and_snapshot):
        _engine, path, _query = source_and_snapshot
        opened = Engine.open_sharded(path)
        try:
            manager = opened.blueprint_manager()
            stale = read_shard_map(path)  # epoch 0, same as current
            with pytest.raises(EngineError, match="advance"):
                manager.swap_to(stale)
        finally:
            opened.close()

    @pytest.mark.parametrize("executor", ["sharded", "pool"])
    def test_reshard_is_bit_identical(self, source_and_snapshot, tmp_path, executor):
        engine, path, query = source_and_snapshot
        config = ServingConfig(workers=2) if executor == "pool" else None
        opened = Engine.open_sharded(path, executor=executor, config=config)
        try:
            expected_spinql = engine.spinql(PROGRAM).top(8)
            expected_search = engine.search("docs", query).top(8)
            assert opened.spinql(PROGRAM).top(8) == expected_spinql
            summary = opened.reshard(2, out=tmp_path / f"two-{executor}")
            assert summary["from_epoch"] == 0 and summary["to_epoch"] == 1
            assert summary["from_shards"] == 4 and summary["to_shards"] == 2
            info = opened.executor_info()
            assert info["shards"] == 2 and info["epoch"] == 1
            assert opened.spinql(PROGRAM).top(8) == expected_spinql
            assert opened.search("docs", query).top(8) == expected_search
        finally:
            opened.close()

    def test_reshard_chain_keeps_epochs_monotonic(self, source_and_snapshot, tmp_path):
        _engine, path, _query = source_and_snapshot
        opened = Engine.open_sharded(path)
        try:
            first = opened.reshard(2, out=tmp_path / "chain-two")
            second = opened.reshard(3, out=tmp_path / "chain-three")
            assert (first["from_epoch"], first["to_epoch"]) == (0, 1)
            assert (second["from_epoch"], second["to_epoch"]) == (1, 2)
            assert opened.executor_info()["epoch"] == 2
        finally:
            opened.close()

    def test_reshard_under_concurrent_queries(self, source_and_snapshot, tmp_path):
        """Queries racing the swap must all answer, all bit-identically."""
        engine, path, query = source_and_snapshot
        opened = Engine.open_sharded(path)
        expected = engine.search("docs", query).top(8)
        mismatches: list[object] = []
        stop = threading.Event()

        def drive() -> None:
            while not stop.is_set():
                pairs = opened.search("docs", query).top(8)
                if pairs != expected:
                    mismatches.append(pairs)

        thread = threading.Thread(target=drive)
        thread.start()
        try:
            opened.reshard(2, out=tmp_path / "racing-two")
        finally:
            stop.set()
            thread.join(timeout=60)
            opened.close()
        assert not mismatches

    def test_reshard_events_land_in_workload_log(self, source_and_snapshot, tmp_path):
        _engine, path, _query = source_and_snapshot
        opened = Engine.open_sharded(path)
        try:
            opened.reshard(2, out=tmp_path / "logged-two")
            events = [
                entry.request["event"]
                for entry in opened.workload_log.snapshot()
                if entry.kind == "event"
            ]
            assert "reshard-start" in events and "blueprint-swap" in events
        finally:
            opened.close()
