"""Chaos: SIGKILL workers under replayed load — zero visible errors.

The acceptance bar for replicated serving: with ``replicas=2``, killing
workers while a recorded workload replays produces **zero client-visible
errors** and a ``results_digest`` identical to the undisturbed run.  The
load comes from :mod:`repro.workload.replay` (closed-loop schedule through
the router), the same machinery operators use, so the test drives exactly
the production path: router admission -> pool routing -> failover ->
supervisor restart.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time

import pytest

from repro.engine import Engine
from repro.relational.column import Column, DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.serving import Router, ServingConfig
from repro.workload.replay import RouterTarget, run_schedule, synthesize_schedule
from repro.workloads import generate_auction_triples

#: fast heal so killed workers return within the replay run; the retry
#: budget is raised above the default because this run kills workers
#: repeatedly back-to-back — far beyond the single-worker-loss contract —
#: and a request can consume one retry per kill that lands on its replica
CHAOS_CONFIG = ServingConfig(
    replicas=2,
    health_interval_seconds=0.05,
    restart_backoff_seconds=0.05,
    restart_backoff_cap_seconds=0.2,
    max_restarts=20,
    retry_budget=8,
    max_concurrent=4,
)


@pytest.fixture(scope="module")
def snapshot_and_schedule(tmp_path_factory):
    workload = generate_auction_triples(120, seed=53)
    engine = Engine.from_triples(workload.triples)
    schema = Schema([Field("docID", DataType.STRING), Field("data", DataType.STRING)])
    engine.create_table(
        "docs",
        Relation(
            schema,
            [
                Column(list(workload.lot_descriptions.keys()), DataType.STRING),
                Column(list(workload.lot_descriptions.values()), DataType.STRING),
            ],
        ),
    )
    queries = [
        " ".join(description.split()[:3])
        for description in list(workload.lot_descriptions.values())[:6]
    ]
    engine.search("docs", queries[0]).execute()
    path = engine.save(tmp_path_factory.mktemp("chaos") / "snap", shards=2)

    # record a seed workload through a router, then synthesize a larger
    # deterministic schedule shaped like it (the operator's replay loop)
    recorder = Engine.open_sharded(path)
    router = Router(recorder, ServingConfig())
    for query in queries:
        reply = router.handle(
            {"kind": "search", "table": "docs", "query": query, "top_k": 5}
        )
        assert reply["ok"]
    schedule = synthesize_schedule(
        recorder.workload_log.snapshot(), num_requests=48, seed=7, mode="closed"
    )
    recorder.close()
    engine.close()
    return path, schedule


class Killer:
    """SIGKILL random workers, never orphaning a shard entirely."""

    def __init__(self, pool, *, seed: int, interval: float = 0.25):
        self._pool = pool
        self._rng = random.Random(seed)
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, name="chaos-killer")
        self.kills = 0

    def _peer_alive(self, slot: int) -> bool:
        pool = self._pool
        peers = [
            other
            for other in pool.replica_slots(slot % pool.base_workers)
            if other != slot
        ]
        return any(
            pool._connections[other].death is None
            and pool._processes[other].is_alive()
            for other in peers
        )

    def _run(self) -> None:
        pool = self._pool
        while not self._stop.wait(self._interval):
            slots = list(range(pool.num_workers))
            self._rng.shuffle(slots)
            for slot in slots:
                process = pool._processes[slot]
                if not process.is_alive():
                    continue
                # never take out a shard's last live replica: the guarantee
                # under test is single-worker loss, not total shard loss
                if not self._peer_alive(slot):
                    continue
                try:
                    os.kill(process.pid, signal.SIGKILL)
                except ProcessLookupError:  # the supervisor already reaped it
                    continue
                process.join(timeout=10)
                self.kills += 1
                break

    def __enter__(self) -> "Killer":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=30)


def run_replay(path, schedule, *, chaos: bool):
    opened = Engine.open_sharded(path, executor="pool", config=CHAOS_CONFIG)
    try:
        router = Router(opened)
        if chaos:
            pool = opened._plan_executor._pool
            with Killer(pool, seed=11) as killer:
                report = run_schedule(schedule, RouterTarget(router), concurrency=4)
            kills = killer.kills
            # give the supervisor a beat, then prove the pool healed
            deadline = time.monotonic() + 30.0
            while pool.degraded and time.monotonic() < deadline:
                time.sleep(0.05)
            replication = pool.replication()
        else:
            report = run_schedule(schedule, RouterTarget(router), concurrency=4)
            kills, replication = 0, opened._plan_executor._pool.replication()
        return report, kills, replication
    finally:
        opened.close()


def test_sigkill_chaos_is_invisible_to_clients(snapshot_and_schedule):
    path, schedule = snapshot_and_schedule

    baseline, _kills, _replication = run_replay(path, schedule, chaos=False)
    assert baseline.errors == 0 and baseline.completed == 48

    chaotic, kills, replication = run_replay(path, schedule, chaos=True)
    assert kills >= 1, "the chaos run never actually killed a worker"
    assert chaotic.errors == 0, f"{chaotic.errors} client-visible errors under chaos"
    assert chaotic.completed == baseline.completed
    assert chaotic.results_digest == baseline.results_digest
    # the supervisor put the pool back at full strength afterwards
    assert replication["degraded"] is False
    assert replication["restarts"] >= 1
