"""Worker pool and router: parity, admission control, crash handling."""

from __future__ import annotations

import json
import multiprocessing
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.engine import Engine
from repro.errors import EngineError
from repro.relational.column import Column, DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.serving import Router, ServingConfig
from repro.serving import shm
from repro.workloads import generate_auction_triples

PROGRAM = 'out = SELECT [$2="hasAuction"] (triples);'


@pytest.fixture(scope="module")
def source_and_snapshot(tmp_path_factory):
    workload = generate_auction_triples(100, seed=37)
    engine = Engine.from_triples(workload.triples)
    schema = Schema([Field("docID", DataType.STRING), Field("data", DataType.STRING)])
    docs = Relation(
        schema,
        [
            Column(list(workload.lot_descriptions.keys()), DataType.STRING),
            Column(list(workload.lot_descriptions.values()), DataType.STRING),
        ],
    )
    engine.create_table("docs", docs)
    query = " ".join(workload.lot_descriptions["lot1"].split()[:3])
    engine.search("docs", query).execute()
    path = engine.save(tmp_path_factory.mktemp("serving") / "snap", shards=2)
    return engine, path, query


@pytest.fixture(scope="module")
def pool_engine(source_and_snapshot):
    _engine, path, _query = source_and_snapshot
    opened = Engine.open_sharded(path, executor="pool")
    yield opened
    opened.close()


class TestPoolExecutor:
    def test_pool_parity_with_unsharded(self, source_and_snapshot, pool_engine):
        engine, _path, query = source_and_snapshot
        assert pool_engine.executor_info()["executor"] == "pool"
        assert pool_engine.spinql(PROGRAM).top(8) == engine.spinql(PROGRAM).top(8)
        assert pool_engine.search("docs", query).top(8) == engine.search("docs", query).top(8)
        expected = engine.spinql(PROGRAM).execute()
        actual = pool_engine.spinql(PROGRAM).execute()
        assert actual.value_rows() == expected.value_rows()

    def test_fewer_workers_than_shards(self, source_and_snapshot):
        engine, path, _query = source_and_snapshot
        opened = Engine.open_sharded(path, executor="pool", workers=1)
        try:
            info = opened.executor_info()
            assert info["workers"] == 1 and info["shards"] == 2
            assert opened.spinql(PROGRAM).top(5) == engine.spinql(PROGRAM).top(5)
        finally:
            opened.close()

    def test_worker_crash_surfaces_as_engine_error(self, source_and_snapshot):
        _engine, path, _query = source_and_snapshot
        # restart_workers=False: this test asserts the *unhealed* failure
        # mode, so the supervisor must not resurrect the workers mid-assert
        opened = Engine.open_sharded(
            path, executor="pool", config=ServingConfig(restart_workers=False)
        )
        try:
            opened.spinql(PROGRAM).top(3)  # workers are live
            pool = opened._plan_executor._pool
            for process in pool._processes:
                process.kill()
                process.join(timeout=10)
            with pytest.raises(EngineError, match="died"):
                opened.spinql(PROGRAM).execute()
        finally:
            opened.close()


class TestRouter:
    def test_search_request_matches_in_process_results(self, source_and_snapshot, pool_engine):
        engine, _path, query = source_and_snapshot
        router = Router(pool_engine)
        reply = router.handle(
            {"kind": "search", "table": "docs", "query": query, "top_k": 5}
        )
        assert reply["ok"]
        expected = [[doc, score] for doc, score in engine.search("docs", query).top(5)]
        assert reply["results"] == expected

    def test_spinql_request(self, pool_engine):
        router = Router(pool_engine)
        reply = router.handle({"kind": "spinql", "source": PROGRAM, "top_k": 3})
        assert reply["ok"] and len(reply["results"]) == 3

    def test_info_request(self, pool_engine):
        reply = Router(pool_engine).handle({"kind": "info"})
        assert reply["ok"] and reply["executor"]["executor"] == "pool"

    def test_unknown_kind_and_engine_errors_are_contained(self, pool_engine):
        router = Router(pool_engine)
        assert not router.handle({"kind": "nope"})["ok"]
        reply = router.handle({"kind": "spinql", "source": "not valid spinql"})
        assert not reply["ok"] and reply["status"] == 400

    def test_pre_dispatch_gate_rejects_broken_plans_with_diagnostics(self, pool_engine):
        # syntactically valid but statically broken: the verifier gate must
        # answer 400 with the diagnostics instead of a worker round-trip
        router = Router(pool_engine)
        reply = router.handle(
            {"kind": "spinql", "source": 'out = SELECT [$9="x"] (triples);', "top_k": 3}
        )
        assert not reply["ok"] and reply["status"] == 400
        assert reply["error"] == "plan failed static verification"
        codes = [d["code"] for d in reply["analysis"]["diagnostics"]]
        assert "position-out-of-range" in codes

    def test_pre_dispatch_gate_passes_clean_plans_through(self, pool_engine):
        router = Router(pool_engine)
        reply = router.handle({"kind": "spinql", "source": PROGRAM, "top_k": 3})
        assert reply["ok"]

    def test_admission_control_sheds_load(self, pool_engine):
        router = Router(pool_engine, max_concurrent=1, max_queue=1)
        # fill the admission window by hand, then verify shedding
        assert router._admit() and router._admit()
        shed = router.handle({"kind": "info"})
        assert not shed["ok"] and shed["status"] == 503
        router._release()
        router._release()
        assert router.handle({"kind": "info"})["ok"]
        assert router.statistics()["shed"] == 1

    def test_healthz_shape(self, pool_engine):
        health = Router(pool_engine).health()
        assert health["ok"]
        # worker liveness from the pool executor
        assert health["executor"]["executor"] == "pool"
        liveness = health["executor"]["worker_liveness"]
        assert len(liveness) == pool_engine.executor_info()["workers"]
        assert all(worker["alive"] for worker in liveness)
        # admission-queue depth plus both cache counter blocks
        router_stats = health["router"]
        assert {"in_flight", "queue_depth", "served", "shed"} <= set(router_stats)
        assert {"hits", "misses", "entries", "hit_rate"} <= set(health["plan_cache"])
        assert {"hits", "misses", "entries", "hit_rate"} <= set(health["result_cache"])

    def test_statz_summarizes_served_traffic(self, pool_engine):
        router = Router(pool_engine)
        before = router.stats()["workload"]["log"]["appended"]
        router.handle({"kind": "spinql", "source": PROGRAM, "top_k": 3})
        stats = router.stats()
        assert stats["ok"]
        workload = stats["workload"]
        assert workload["log"]["appended"] > before
        assert {"by_kind", "by_status", "latency", "result_cache"} <= set(workload)
        serves = [
            item
            for item in workload["top_fingerprints"]
            if item["fingerprint"].startswith("serve::")
        ]
        assert serves  # the handled request was logged as a serve record

    def test_http_front_end(self, source_and_snapshot, pool_engine):
        engine, _path, query = source_and_snapshot
        router = Router(pool_engine)
        server, _thread = router.start(port=0)
        port = server.server_address[1]
        try:
            health = json.loads(
                urllib.request.urlopen(f"http://127.0.0.1:{port}/healthz").read()
            )
            assert health["ok"] and health["executor"]["executor"] == "pool"
            assert health["result_cache"] is not None
            statz = json.loads(
                urllib.request.urlopen(f"http://127.0.0.1:{port}/statz").read()
            )
            assert statz["ok"] and "workload" in statz
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/query",
                data=json.dumps(
                    {"kind": "search", "table": "docs", "query": query, "top_k": 4}
                ).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            reply = json.loads(urllib.request.urlopen(request).read())
            expected = [[doc, score] for doc, score in engine.search("docs", query).top(4)]
            assert reply["ok"] and reply["results"] == expected
            bad = urllib.request.Request(
                f"http://127.0.0.1:{port}/query", data=b"{broken", method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as caught:
                urllib.request.urlopen(bad)
            assert caught.value.code == 400
        finally:
            server.shutdown()
            server.server_close()


class TestRequestValidation:
    """Client mistakes are 400s naming the problem, never 500-shaped crashes."""

    def test_missing_query_field_is_a_clean_400(self, pool_engine):
        reply = Router(pool_engine).handle({"kind": "search", "table": "docs", "top_k": 3})
        assert not reply["ok"] and reply["status"] == 400
        assert "'query'" in reply["error"]

    def test_non_string_query_is_a_clean_400(self, pool_engine):
        reply = Router(pool_engine).handle(
            {"kind": "search", "table": "docs", "query": 7, "top_k": 3}
        )
        assert not reply["ok"] and reply["status"] == 400
        assert "'query'" in reply["error"]

    def test_missing_source_field_is_a_clean_400(self, pool_engine):
        reply = Router(pool_engine).handle({"kind": "spinql", "top_k": 3})
        assert not reply["ok"] and reply["status"] == 400
        assert "'source'" in reply["error"]


class TestHTTPErrorMapping:
    """The asyncio front end's error taxonomy over a real socket."""

    @pytest.fixture()
    def http_port(self, pool_engine):
        router = Router(pool_engine)
        server, _thread = router.start(port=0)
        yield server.server_address[1]
        server.shutdown()
        server.server_close()

    def test_unknown_path_is_404(self, http_port):
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(f"http://127.0.0.1:{http_port}/nope")
        assert caught.value.code == 404
        assert b"unknown path" in caught.value.read()

    def test_missing_query_field_is_400_naming_the_field(self, http_port):
        request = urllib.request.Request(
            f"http://127.0.0.1:{http_port}/query",
            data=json.dumps({"kind": "search", "table": "docs"}).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request)
        assert caught.value.code == 400
        assert b"'query'" in caught.value.read()

    def test_non_object_body_is_400(self, http_port):
        request = urllib.request.Request(
            f"http://127.0.0.1:{http_port}/query", data=b"[1, 2, 3]", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request)
        assert caught.value.code == 400
        assert b"JSON object" in caught.value.read()

    def test_malformed_content_length_is_400_naming_the_header(self, http_port):
        # urllib always sends a well-formed Content-Length, so speak raw HTTP
        with socket.create_connection(("127.0.0.1", http_port), timeout=30) as client:
            client.sendall(
                b"POST /query HTTP/1.1\r\n"
                b"Host: test\r\n"
                b"Content-Length: banana\r\n"
                b"Connection: close\r\n\r\n"
            )
            response = b""
            while True:
                chunk = client.recv(65536)
                if not chunk:
                    break
                response += chunk
        status_line = response.split(b"\r\n", 1)[0]
        assert b"400" in status_line
        assert b"Content-Length" in response and b"banana" in response

    def test_malformed_request_line_is_400(self, http_port):
        with socket.create_connection(("127.0.0.1", http_port), timeout=30) as client:
            client.sendall(b"NONSENSE\r\nConnection: close\r\n\r\n")
            response = b""
            while True:
                chunk = client.recv(65536)
                if not chunk:
                    break
                response += chunk
        assert b"400" in response.split(b"\r\n", 1)[0]


class TestCorruptReplyHandling:
    def test_corrupt_reply_is_attributed_and_poisons_the_connection(
        self, source_and_snapshot
    ):
        _engine, path, _query = source_and_snapshot
        # the supervisor would restart the poisoned worker and erase the
        # fail-fast state this test asserts; keep it off
        opened = Engine.open_sharded(
            path, executor="pool", config=ServingConfig(restart_workers=False)
        )
        try:
            pool = opened._plan_executor._pool
            pool.ping()  # workers are live
            # splice our own pipe in front of worker 0 and answer the next
            # request by echoing its id with a body the codec must reject
            victim = pool._connections[0]
            original = victim.connection
            parent, child = multiprocessing.Pipe(duplex=True)
            victim.connection = parent

            def echo_garbage():
                request = child.recv_bytes()
                child.send_bytes(request[:8] + b"I" + b"\x00\x00\x00\x08not a frame")

            thread = threading.Thread(target=echo_garbage, daemon=True)
            thread.start()
            with pytest.raises(EngineError, match="corrupt reply") as caught:
                pool.request(0, 0, {"op": "ping"})
            message = str(caught.value)
            assert "worker 0" in message and "shard 0" in message
            thread.join(timeout=10)
            # the connection is poisoned: follow-ups fail fast with the
            # attributed worker-died error instead of reading garbage
            with pytest.raises(EngineError, match="died"):
                pool.request(0, 0, {"op": "ping"})
            original.close()  # the real worker sees EOF and exits
        finally:
            opened.close()


class TestTransports:
    def test_pool_reports_its_reply_transport(self, pool_engine):
        assert pool_engine.executor_info()["transport"] in ("auto", "inline")

    @pytest.mark.parametrize("transport,threshold", [("inline", None), ("shm", 0)])
    def test_forced_transport_parity(self, source_and_snapshot, transport, threshold):
        engine, path, query = source_and_snapshot
        if transport == "shm" and not shm.shared_memory_available():
            pytest.skip("multiprocessing.shared_memory unavailable")
        opened = Engine.open_sharded(
            path, executor="pool", transport=transport, shm_threshold=threshold
        )
        try:
            assert opened.executor_info()["transport"] == transport
            assert opened.search("docs", query).top(8) == engine.search("docs", query).top(8)
            assert opened.spinql(PROGRAM).top(8) == engine.spinql(PROGRAM).top(8)
            expected = engine.spinql(PROGRAM).execute()
            assert opened.spinql(PROGRAM).execute().value_rows() == expected.value_rows()
        finally:
            opened.close()
