"""Unit tests for the SpinQL compiler, evaluation and SQL translation."""

import pytest

from repro.errors import SpinQLCompileError
from repro.pra.assumptions import Assumption
from repro.pra.plan import PraJoin, PraProject, PraScan, PraSelect, PraValues, PraWeight
from repro.pra.relation import ProbabilisticRelation
from repro.relational.column import DataType
from repro.spinql import compile_script, evaluate, to_sql
from repro.spinql.compiler import SpinQLCompiler
from repro.triples.triple_store import TripleStore

PAPER_EXAMPLE = """
docs = PROJECT [$1 AS docID, $6 AS data] (
  JOIN INDEPENDENT [$1=$1] (
    SELECT [$2="category" and $3="toy"] (triples),
    SELECT [$2="description"] (triples) ) );
"""


@pytest.fixture
def paper_store():
    store = TripleStore()
    store.add_all(
        [
            ("product1", "category", "toy"),
            ("product1", "description", "wooden train set"),
            ("product2", "category", "book"),
            ("product2", "description", "history of trains"),
            ("product3", "category", "toy"),
            ("product3", "description", "plastic toy car"),
        ]
    )
    store.load()
    return store


class TestCompiler:
    def test_paper_example_plan_shape(self):
        compiled = compile_script(PAPER_EXAMPLE)
        plan = compiled.final_plan
        assert isinstance(plan, PraProject)
        assert plan.positions == (1, 6)
        assert plan.output_names == ("docID", "data")
        join = plan.child
        assert isinstance(join, PraJoin)
        assert join.assumption is Assumption.INDEPENDENT
        assert join.conditions == ((1, 1),)
        assert all(isinstance(side, PraSelect) for side in (join.left, join.right))
        assert isinstance(join.left.child, PraScan)

    def test_references_resolve_to_prior_statements(self):
        compiled = compile_script("a = SELECT [$1='x'] (t); b = PROJECT [$1] (a);")
        assert isinstance(compiled.plan("b").child, PraSelect)

    def test_unknown_statement_lookup(self):
        compiled = compile_script("a = SELECT [$1='x'] (t);")
        with pytest.raises(SpinQLCompileError):
            compiled.plan("missing")

    def test_bindings_become_values_nodes(self):
        ranked = ProbabilisticRelation.from_rows(
            ["node"], [DataType.STRING], [("lot1", 0.9)]
        )
        compiler = SpinQLCompiler(bindings={"ranked": ranked})
        compiled = compiler.compile("out = PROJECT [$1] (ranked);")
        assert isinstance(compiled.plan("out").child, PraValues)

    def test_weight_compilation(self):
        compiled = compile_script("w = WEIGHT [0.25] (t);")
        plan = compiled.final_plan
        assert isinstance(plan, PraWeight)
        assert plan.factor == 0.25

    def test_traverse_lowering_forward(self):
        compiled = compile_script("x = TRAVERSE ['hasAuction'] (lots);")
        plan = compiled.final_plan
        assert isinstance(plan, PraProject)
        assert isinstance(plan.child, PraJoin)
        assert plan.child.conditions == ((1, 1),)
        assert plan.positions == (4,)  # object of the triple, after the node column

    def test_traverse_lowering_backward(self):
        compiled = compile_script("x = TRAVERSE BACKWARD ['hasAuction'] (lots);")
        plan = compiled.final_plan
        assert plan.child.conditions == ((1, 3),)
        assert plan.positions == (2,)  # subject of the triple

    def test_select_requires_single_predicate(self):
        from repro.spinql.ast import OperatorCall, Reference

        compiler = SpinQLCompiler()
        call = OperatorCall(
            operator="select", assumption=None, arguments=[], operands=[Reference("t")]
        )
        with pytest.raises(SpinQLCompileError):
            compiler._compile_operator(call, compile_script("a = t;"))


class TestEvaluation:
    def test_paper_example_evaluates_to_toy_docs(self, paper_store):
        result = evaluate(PAPER_EXAMPLE, paper_store.database)
        docs = {row["docID"]: row["data"] for row in result.to_dicts()}
        assert docs == {
            "product1": "wooden train set",
            "product3": "plastic toy car",
        }
        assert all(row["p"] == pytest.approx(1.0) for row in result.to_dicts())

    def test_evaluation_with_uncertain_triples(self):
        store = TripleStore()
        store.add("item1", "category", "toy", probability=0.6)
        store.add("item1", "description", "maybe a toy", probability=0.5)
        store.load()
        result = evaluate(PAPER_EXAMPLE, store.database)
        assert result.probabilities()[0] == pytest.approx(0.3)

    def test_evaluate_with_bindings(self, paper_store):
        ranked = ProbabilisticRelation.from_rows(
            ["node"], [DataType.STRING], [("product1", 0.9), ("product3", 0.1)]
        )
        result = evaluate(
            "out = WEIGHT [0.5] (ranked);", paper_store.database, bindings={"ranked": ranked}
        )
        assert sorted(result.probabilities()) == pytest.approx([0.05, 0.45])

    def test_multi_statement_script_returns_last(self, paper_store):
        source = PAPER_EXAMPLE + "\nonly_ids = PROJECT [$1] (docs);"
        result = evaluate(source, paper_store.database)
        # without an alias the projection keeps the original column name
        assert result.value_columns == ["docID"]
        assert result.num_rows == 2

    def test_traverse_end_to_end(self, auction_store):
        source = "auctions = TRAVERSE ['hasAuction'] (lots);"
        lots = ProbabilisticRelation.from_rows(
            ["node"], [DataType.STRING], [("lot1", 1.0), ("lot3", 1.0)]
        )
        result = evaluate(source, auction_store.database, bindings={"lots": lots})
        assert set(result.relation.column("node").to_list()) == {"auction1", "auction2"}


class TestSqlTranslation:
    def test_paper_shape_flattens_to_single_select(self):
        compiled = compile_script(PAPER_EXAMPLE)
        sql = to_sql(compiled.final_plan, view_name="docs")
        assert sql.startswith("CREATE VIEW docs AS")
        assert "FROM triples t1, triples t2" in sql
        assert "t1.p * t2.p AS p" in sql
        assert "t1.property = 'category'" in sql
        assert "t1.object = 'toy'" in sql
        assert "t2.property = 'description'" in sql
        assert "t1.subject = t2.subject" in sql
        assert "t1.subject AS docID" in sql
        assert "t2.object AS data" in sql

    def test_generic_shapes_render_nested_sql(self):
        compiled = compile_script("w = WEIGHT [0.5] (SELECT [$1='x'] (t));")
        sql = to_sql(compiled.final_plan)
        assert "p * 0.5" in sql
        assert "WHERE" in sql

    def test_unite_and_bayes_rendering(self):
        compiled = compile_script("m = UNITE DISJOINT (a, b); n = BAYES [$1] (m);")
        sql = to_sql(compiled.final_plan)
        assert "UNION ALL" in sql
        assert "PARTITION BY $1" in sql
