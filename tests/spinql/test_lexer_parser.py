"""Unit tests for the SpinQL lexer and parser."""

import pytest

from repro.errors import SpinQLSyntaxError
from repro.spinql.ast import (
    BooleanExpr,
    Comparison,
    JoinCondition,
    LiteralValue,
    OperatorCall,
    PositionalColumn,
    ProjectionItem,
    Reference,
)
from repro.spinql.lexer import TokenType, tokenize
from repro.spinql.parser import parse


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize('SELECT [$2="toy"] (triples);')
        types = [token.type for token in tokens]
        assert types[0] is TokenType.KEYWORD
        assert TokenType.POSITIONAL in types
        assert TokenType.STRING in types
        assert types[-1] is TokenType.EOF

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select Project JOIN independent")
        assert all(token.type is TokenType.KEYWORD for token in tokens[:-1])
        assert tokens[0].value == "select"

    def test_identifiers(self):
        tokens = tokenize("docs = triples;")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "docs"

    def test_numbers(self):
        tokens = tokenize("WEIGHT [0.7] (x);")
        number = [token for token in tokens if token.type is TokenType.NUMBER][0]
        assert number.value == "0.7"

    def test_string_escaping(self):
        tokens = tokenize("SELECT [$1='it''s'] (t);")
        string = [token for token in tokens if token.type is TokenType.STRING][0]
        assert string.value == "it's"

    def test_double_quoted_strings(self):
        tokens = tokenize('SELECT [$1="toy"] (t);')
        string = [token for token in tokens if token.type is TokenType.STRING][0]
        assert string.value == "toy"

    def test_comparison_operators(self):
        tokens = tokenize("$1 != $2 <= $3 >= $4 <> $5")
        types = [token.type for token in tokens if token.type is not TokenType.POSITIONAL]
        assert TokenType.NOT_EQUALS in types
        assert TokenType.LESS_EQUALS in types
        assert TokenType.GREATER_EQUALS in types

    def test_comments_are_skipped(self):
        tokens = tokenize("# a comment\ndocs = t; -- trailing comment\n")
        values = [token.value for token in tokens if token.type is TokenType.IDENT]
        assert values == ["docs", "t"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("a =\n  b;")
        b_token = [token for token in tokens if token.value == "b"][0]
        assert b_token.line == 2
        assert b_token.column == 3

    def test_unterminated_string(self):
        with pytest.raises(SpinQLSyntaxError):
            tokenize('SELECT [$1="unterminated] (t);')

    def test_dollar_without_digits(self):
        with pytest.raises(SpinQLSyntaxError):
            tokenize("SELECT [$x=1] (t);")

    def test_unexpected_character(self):
        with pytest.raises(SpinQLSyntaxError):
            tokenize("docs = t @;")


class TestParser:
    def test_paper_example_structure(self):
        source = """
        docs = PROJECT [$1,$6] (
          JOIN INDEPENDENT [$1=$1] (
            SELECT [$2="category" and $3="toy"] (triples),
            SELECT [$2="description"] (triples) ) );
        """
        script = parse(source)
        assert script.names() == ["docs"]
        project = script.statements[0].expression
        assert isinstance(project, OperatorCall) and project.operator == "project"
        assert [item.position for item in project.arguments] == [1, 6]
        join = project.operands[0]
        assert isinstance(join, OperatorCall) and join.operator == "join"
        assert join.assumption == "independent"
        assert join.arguments == [JoinCondition(1, 1)]
        select_left, select_right = join.operands
        assert select_left.operator == "select"
        predicate = select_left.arguments[0]
        assert isinstance(predicate, BooleanExpr) and predicate.operator == "and"
        assert isinstance(select_right.arguments[0], Comparison)
        assert isinstance(select_right.operands[0], Reference)

    def test_anonymous_statement_gets_name(self):
        script = parse("SELECT [$1=1] (t);")
        assert script.result_name.startswith("_result")

    def test_multiple_statements_resolve_in_order(self):
        script = parse("a = SELECT [$1=1] (t); b = PROJECT [$1] (a);")
        assert script.names() == ["a", "b"]
        assert script.result_name == "b"

    def test_projection_aliases(self):
        script = parse("x = PROJECT [$1 AS docID, $2 AS data] (t);")
        items = script.statements[0].expression.arguments
        assert items == [ProjectionItem(1, "docID"), ProjectionItem(2, "data")]

    def test_weight_and_unite(self):
        script = parse("m = UNITE DISJOINT (WEIGHT [0.7] (a), WEIGHT [0.3] (b));")
        unite = script.statements[0].expression
        assert unite.operator == "unite"
        assert unite.assumption == "disjoint"
        weights = [operand.arguments[0] for operand in unite.operands]
        assert [w.value for w in weights] == [0.7, 0.3]

    def test_bayes_with_and_without_evidence(self):
        with_evidence = parse("x = BAYES [$1] (t);").statements[0].expression
        assert [arg.position for arg in with_evidence.arguments] == [1]
        without = parse("x = BAYES [] (t);").statements[0].expression
        assert without.arguments == []

    def test_traverse_directions(self):
        forward = parse("x = TRAVERSE ['hasAuction'] (lots);").statements[0].expression
        assert forward.options.get("direction") != "backward"
        backward = parse("x = TRAVERSE BACKWARD ['hasAuction'] (auctions);").statements[0]
        assert backward.expression.options["direction"] == "backward"

    def test_numeric_comparison_operand(self):
        script = parse("x = SELECT [$3 > 100] (t);")
        comparison = script.statements[0].expression.arguments[0]
        assert isinstance(comparison.right, LiteralValue)
        assert comparison.right.value == 100
        assert comparison.operator == ">"

    def test_not_equals_spellings(self):
        for op_text in ("!=", "<>"):
            script = parse(f"x = SELECT [$1 {op_text} 'a'] (t);")
            assert script.statements[0].expression.arguments[0].operator == "!="

    def test_missing_semicolon(self):
        with pytest.raises(SpinQLSyntaxError):
            parse("x = SELECT [$1=1] (t)")

    def test_missing_argument_list(self):
        with pytest.raises(SpinQLSyntaxError):
            parse("x = SELECT (t);")

    def test_missing_operand_parens(self):
        with pytest.raises(SpinQLSyntaxError):
            parse("x = SELECT [$1=1] t;")

    def test_empty_script(self):
        with pytest.raises(SpinQLSyntaxError):
            parse("   \n  ")

    def test_positional_column_parsed_as_int(self):
        script = parse("x = BAYES [$12] (t);")
        assert script.statements[0].expression.arguments[0] == PositionalColumn(12)
