"""Property-based tests for the probabilistic algebra, text stack and ranking."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.ranking import BM25Model, TfIdfModel
from repro.ir.statistics import build_statistics
from repro.pra import operators as ops
from repro.pra.assumptions import Assumption
from repro.pra.relation import ProbabilisticRelation
from repro.relational.column import DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.text.analyzers import StandardAnalyzer
from repro.text.stemming.porter import PorterStemmer
from repro.text.tokenizer import Tokenizer

PROBABILITY = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
NODE = st.sampled_from(["a", "b", "c", "d", "e"])


def prob_relation(rows):
    schema = Schema([Field("node", DataType.STRING), Field("p", DataType.FLOAT)])
    return ProbabilisticRelation(Relation.from_rows(schema, rows))


class TestProbabilityInvariants:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(NODE, PROBABILITY), min_size=0, max_size=20))
    def test_projection_keeps_probabilities_in_unit_interval(self, rows):
        relation = prob_relation(rows)
        for assumption in Assumption:
            projected = ops.project(relation, ["node"], assumption)
            probabilities = projected.probabilities()
            assert ((probabilities >= 0) & (probabilities <= 1 + 1e-9)).all()
            # one output tuple per distinct node
            assert projected.num_rows == len({node for node, _ in rows})

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.tuples(NODE, PROBABILITY), min_size=0, max_size=15),
        st.lists(st.tuples(NODE, PROBABILITY), min_size=0, max_size=15),
    )
    def test_union_bounds_and_monotonicity(self, left_rows, right_rows):
        left = prob_relation(left_rows)
        right = prob_relation(right_rows)
        for assumption in (Assumption.INDEPENDENT, Assumption.DISJOINT, Assumption.SUBSUMED):
            union = ops.unite(left, right, assumption)
            probabilities = union.probabilities()
            assert ((probabilities >= 0) & (probabilities <= 1 + 1e-9)).all()
            nodes = set(union.relation.column("node").to_list())
            assert nodes == {n for n, _ in left_rows} | {n for n, _ in right_rows}

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.tuples(NODE, PROBABILITY), min_size=0, max_size=15),
        st.lists(st.tuples(NODE, PROBABILITY), min_size=0, max_size=15),
    )
    def test_join_probability_never_exceeds_either_input(self, left_rows, right_rows):
        left = prob_relation(left_rows)
        right = prob_relation(right_rows)
        joined = ops.join(left, right, [("node", "node")])
        left_max = {}
        for node, probability in left_rows:
            left_max[node] = max(left_max.get(node, 0.0), probability)
        for row in joined.relation.to_dicts():
            assert row["p"] <= left_max[row["node"]] + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(NODE, PROBABILITY), min_size=1, max_size=20))
    def test_bayes_normalises_to_one(self, rows):
        relation = prob_relation(rows)
        normalised = ops.bayes(relation, [])
        total = normalised.probabilities().sum()
        if relation.probabilities().sum() > 0:
            assert abs(total - 1.0) < 1e-9
        else:
            assert total == 0.0

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(NODE, PROBABILITY), min_size=0, max_size=20), st.floats(0, 1))
    def test_weight_scales_linearly(self, rows, factor):
        relation = prob_relation(rows)
        weighted = ops.weight(relation, factor)
        for original, scaled in zip(relation.probabilities(), weighted.probabilities()):
            assert abs(scaled - original * factor) < 1e-9


WORD = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=12)


class TestTextInvariants:
    @settings(max_examples=80, deadline=None)
    @given(WORD)
    def test_porter_is_deterministic_and_never_lengthens(self, word):
        stemmer = PorterStemmer()
        stem = stemmer.stem(word)
        assert stem == stemmer.stem(word)
        assert len(stem) <= len(word)
        assert stem == stem.lower()

    @settings(max_examples=80, deadline=None)
    @given(st.text(max_size=200))
    def test_tokenizer_output_is_alphanumeric(self, text):
        tokens = Tokenizer().tokenize(text)
        for token in tokens:
            assert token
            assert all(ch.isalnum() or ch == "'" for ch in token)

    @settings(max_examples=60, deadline=None)
    @given(st.text(max_size=200))
    def test_analyzer_terms_come_from_tokens(self, text):
        analyzer = StandardAnalyzer()
        terms = analyzer.analyze(text)
        tokens = [token.lower() for token in Tokenizer().tokenize(text)]
        assert len(terms) <= len(tokens)


DOCUMENT = st.lists(
    st.sampled_from(["train", "toy", "wooden", "auction", "clock", "book", "cake"]),
    min_size=1,
    max_size=20,
).map(" ".join)


class TestRankingInvariants:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(DOCUMENT, min_size=1, max_size=15),
        st.lists(st.sampled_from(["train", "wooden", "clock"]), min_size=1, max_size=3),
    )
    def test_ranking_only_returns_matching_documents_sorted(self, documents, query_terms):
        # the sampled query terms are invariant under stemming, so raw text
        # membership and analyzed-term matching coincide
        docs = list(enumerate(documents, start=1))
        statistics = build_statistics(docs)
        for model in (BM25Model(), TfIdfModel()):
            ranked = model.rank(statistics, query_terms)
            scores = list(ranked.scores)
            assert scores == sorted(scores, reverse=True)
            returned = set(ranked.doc_ids)
            matching = {
                doc_id
                for doc_id, text in docs
                if any(term in text.split() for term in query_terms)
            }
            assert returned == matching

    @settings(max_examples=50, deadline=None)
    @given(st.lists(DOCUMENT, min_size=1, max_size=15))
    def test_probability_normalisation_respects_order(self, documents):
        docs = list(enumerate(documents, start=1))
        statistics = build_statistics(docs)
        ranked = BM25Model().rank(statistics, ["train", "toy"])
        probabilities = ranked.to_probabilities()
        values = list(probabilities.scores)
        assert values == sorted(values, reverse=True)
        assert all(0 < value <= 1.0 for value in values)
