"""Property-based tests for the relational engine (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.algebra import (
    Aggregate,
    AggregateSpec,
    Distinct,
    Join,
    Limit,
    Scan,
    Select,
    Sort,
    SortKey,
    Values,
)
from repro.relational.column import DataType
from repro.relational.database import Database
from repro.relational.expressions import col, lit
from repro.relational.optimizer import optimize
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema

ROW_STRATEGY = st.tuples(
    st.integers(min_value=0, max_value=20),
    st.sampled_from(["toy", "book", "game", "tool"]),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False),
)

SCHEMA = Schema(
    [Field("id", DataType.INT), Field("category", DataType.STRING), Field("value", DataType.FLOAT)]
)


def make_database(rows):
    database = Database(cache_enabled=False)
    database.create_table("items", Relation.from_rows(SCHEMA, rows))
    return database


@settings(max_examples=40, deadline=None)
@given(st.lists(ROW_STRATEGY, min_size=0, max_size=40))
def test_selection_partitions_rows(rows):
    """Selecting P and NOT P partitions the relation (no rows lost or invented)."""
    database = make_database(rows)
    toys = database.execute(Select(Scan("items"), col("category").eq(lit("toy"))))
    others = database.execute(Select(Scan("items"), col("category").ne(lit("toy"))))
    assert toys.num_rows + others.num_rows == len(rows)
    assert all(row[1] == "toy" for row in toys.rows())
    assert all(row[1] != "toy" for row in others.rows())


@settings(max_examples=40, deadline=None)
@given(st.lists(ROW_STRATEGY, min_size=0, max_size=40))
def test_distinct_is_idempotent_and_bounded(rows):
    database = make_database(rows)
    once = database.execute(Distinct(Scan("items")))
    twice = once.distinct()
    assert once.num_rows == twice.num_rows
    assert once.num_rows <= len(rows)
    assert len(set(once.rows())) == once.num_rows


@settings(max_examples=40, deadline=None)
@given(st.lists(ROW_STRATEGY, min_size=0, max_size=40), st.integers(min_value=0, max_value=50))
def test_limit_never_exceeds_count(rows, count):
    database = make_database(rows)
    limited = database.execute(Limit(Scan("items"), count))
    assert limited.num_rows == min(count, len(rows))


@settings(max_examples=40, deadline=None)
@given(st.lists(ROW_STRATEGY, min_size=1, max_size=40))
def test_sort_produces_ordered_permutation(rows):
    database = make_database(rows)
    ordered = database.execute(Sort(Scan("items"), [SortKey("value", ascending=True)]))
    values = [row[2] for row in ordered.rows()]
    assert values == sorted(values)
    assert sorted(ordered.rows()) == sorted(database.table("items").rows())


@settings(max_examples=40, deadline=None)
@given(st.lists(ROW_STRATEGY, min_size=0, max_size=30))
def test_group_by_counts_sum_to_total(rows):
    database = make_database(rows)
    counts = database.execute(
        Aggregate(Scan("items"), ["category"], [AggregateSpec("count", None, "n")])
    )
    assert sum(row["n"] for row in counts.to_dicts()) == len(rows)
    assert counts.num_rows == len({row[1] for row in rows})


@settings(max_examples=30, deadline=None)
@given(
    st.lists(ROW_STRATEGY, min_size=0, max_size=25),
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=20), st.text(min_size=1, max_size=3)),
        max_size=25,
    ),
)
def test_join_matches_nested_loop_semantics(rows, right_rows):
    """The hash join must agree with a naive nested-loop join."""
    database = make_database(rows)
    right_schema = Schema([Field("ref", DataType.INT), Field("tag", DataType.STRING)])
    right_relation = Relation.from_rows(right_schema, right_rows)
    joined = database.execute(
        Join(Scan("items"), Values(right_relation, label="r"), [("id", "ref")])
    )
    expected = 0
    for row in rows:
        expected += sum(1 for other in right_rows if other[0] == row[0])
    assert joined.num_rows == expected


@settings(max_examples=30, deadline=None)
@given(st.lists(ROW_STRATEGY, min_size=0, max_size=30))
def test_optimizer_preserves_selection_over_join_results(rows):
    """Optimised and unoptimised plans must produce identical result sets."""
    from repro.relational.algebra import Project
    from repro.relational.expressions import col as column_ref

    database = make_database(rows)
    left = Project(Scan("items"), [("id", column_ref("id")), ("category", column_ref("category"))])
    right = Project(Scan("items"), [("ref", column_ref("id")), ("value", column_ref("value"))])
    plan = Select(Join(left, right, [("id", "ref")]), column_ref("category").eq(lit("toy")))
    raw = Database(cache_enabled=False, optimize_plans=False)
    raw.create_table("items", database.table("items"))
    unoptimized = raw.execute(plan)
    optimized_plan = optimize(plan)
    optimized = raw.execute(optimized_plan)
    assert sorted(unoptimized.rows()) == sorted(optimized.rows())


@settings(max_examples=40, deadline=None)
@given(st.lists(ROW_STRATEGY, min_size=0, max_size=40))
def test_cache_returns_identical_relation(rows):
    database = Database(cache_enabled=True)
    database.create_table("items", Relation.from_rows(SCHEMA, rows))
    plan = Select(Scan("items"), col("category").eq(lit("toy")))
    first = database.execute(plan)
    second = database.execute(plan)
    assert first == second
