"""Property-based plan-equivalence harness.

A Hypothesis strategy generates random small PRA plans — every operator,
random assumptions, random predicates — over literal fixture relations, and
asserts the two contracts the rank-aware engine work rests on:

* the optimizer's output evaluates to exactly the same relation as the
  unoptimized plan (rows, probabilities, row identity);
* ``TOP k`` — unoptimized *and* after pushdown — equals the full
  deterministic sort (probability descending, value columns ascending)
  followed by a ``k``-row slice.

Probabilities and weight factors are drawn from dyadic rationals so every
product the operators compute is exact in binary floating point: equivalence
failures are genuine rewrite bugs, never float-reassociation noise, and the
deterministic tie-break never flips on a last-ulp difference.

The suite runs with ``derandomize=True`` (a fixed Hypothesis seed) and an
explicit deadline, so CI failures are reproducible.
"""

from __future__ import annotations

from datetime import timedelta

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pra.assumptions import Assumption
from repro.pra.evaluator import PRAEvaluator
from repro.pra.expressions import PositionalRef
from repro.pra.optimizer import optimize_pra
from repro.pra.plan import (
    PraBayes,
    PraJoin,
    PraPlan,
    PraProject,
    PraSelect,
    PraSubtract,
    PraTop,
    PraUnite,
    PraValues,
    PraWeight,
)
from repro.pra.relation import ProbabilisticRelation
from repro.relational.column import DataType
from repro.relational.database import Database
from repro.relational.expressions import BinaryOp, Literal
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema

EVALUATOR = PRAEvaluator(Database())

NODES = ["a", "b", "c", "d", "e"]
#: dyadic probabilities — exactly representable, so operator arithmetic is exact
DYADIC_P = st.sampled_from([i / 16 for i in range(17)])
#: weight factors that keep products exactly representable
WEIGHTS = st.sampled_from([0.25, 0.5, 0.75, 1.0])
ASSUMPTIONS = st.sampled_from(list(Assumption))
UNITE_ASSUMPTIONS = ASSUMPTIONS  # all three, so pushdown-blocking merges are generated

SETTINGS = settings(
    max_examples=250, deadline=timedelta(seconds=5), derandomize=True
)


def _values_leaf(rows: list[tuple], arity: int) -> PraValues:
    fields = [Field(f"c{index}", DataType.STRING) for index in range(arity)]
    fields.append(Field("p", DataType.FLOAT))
    relation = Relation.from_rows(Schema(fields), rows)
    return PraValues(ProbabilisticRelation(relation), label=f"fixture{arity}")


def _draw_leaf(draw, arity: int) -> PraValues:
    rows = draw(
        st.lists(
            st.tuples(*([st.sampled_from(NODES)] * arity + [DYADIC_P])),
            min_size=0,
            max_size=8,
        )
    )
    return _values_leaf(rows, arity)


def _draw_plan(draw, depth: int, arity: int | None = None) -> tuple[PraPlan, int]:
    """Recursively draw a plan; ``arity`` pins the number of value columns."""
    if depth <= 0 or draw(st.integers(0, 3)) == 0:
        if arity is None:
            arity = draw(st.integers(1, 2))
        return _draw_leaf(draw, arity), arity

    # project/join change arity, so they are only drawn when it is free
    choices = ["select", "weight", "top", "bayes", "unite", "subtract"]
    if arity is None:
        choices += ["project", "join"]
    op = draw(st.sampled_from(choices))

    if op == "select":
        child, child_arity = _draw_plan(draw, depth - 1, arity)
        position = draw(st.integers(1, child_arity))
        predicate = BinaryOp(
            "=", PositionalRef(position), Literal(draw(st.sampled_from(NODES)))
        )
        return PraSelect(child, predicate), child_arity
    if op == "weight":
        child, child_arity = _draw_plan(draw, depth - 1, arity)
        return PraWeight(child, draw(WEIGHTS)), child_arity
    if op == "top":
        child, child_arity = _draw_plan(draw, depth - 1, arity)
        return PraTop(child, draw(st.integers(1, 6))), child_arity
    if op == "bayes":
        child, child_arity = _draw_plan(draw, depth - 1, arity)
        evidence = draw(
            st.lists(st.integers(1, child_arity), unique=True, max_size=child_arity)
        )
        return PraBayes(child, evidence), child_arity
    if op == "unite":
        left, child_arity = _draw_plan(draw, depth - 1, arity)
        right, _ = _draw_plan(draw, depth - 1, child_arity)
        return PraUnite(left, right, draw(UNITE_ASSUMPTIONS)), child_arity
    if op == "subtract":
        left, child_arity = _draw_plan(draw, depth - 1, arity)
        right, _ = _draw_plan(draw, depth - 1, child_arity)
        return PraSubtract(left, right), child_arity
    if op == "project":
        child, child_arity = _draw_plan(draw, depth - 1, None)
        positions = draw(
            st.lists(st.integers(1, child_arity), unique=True, min_size=1)
        )
        return (
            PraProject(child, positions, draw(ASSUMPTIONS)),
            len(positions),
        )
    # join
    left, left_arity = _draw_plan(draw, depth - 1, None)
    right, right_arity = _draw_plan(draw, depth - 1, None)
    conditions = [
        (draw(st.integers(1, left_arity)), draw(st.integers(1, right_arity)))
    ]
    return PraJoin(left, right, conditions, Assumption.INDEPENDENT), left_arity + right_arity


@st.composite
def plans(draw) -> tuple[PraPlan, int]:
    return _draw_plan(draw, depth=3)


def _comparable_rows(relation: ProbabilisticRelation) -> list[tuple]:
    """Rows as a canonically sorted list: value columns, then probability."""
    return sorted(
        (tuple(map(str, row[:-1])), float(row[-1])) for row in relation.rows()
    )


def assert_same_relation(actual: ProbabilisticRelation, expected: ProbabilisticRelation):
    left = _comparable_rows(actual)
    right = _comparable_rows(expected)
    assert len(left) == len(right)
    for (lvalues, lp), (rvalues, rp) in zip(left, right):
        assert lvalues == rvalues
        assert lp == pytest.approx(rp, abs=1e-9)


class TestOptimizerEquivalence:
    @SETTINGS
    @given(st.data())
    def test_optimized_plan_evaluates_identically(self, data):
        plan, _ = data.draw(plans())
        original = EVALUATOR.evaluate(plan)
        optimized = EVALUATOR.evaluate(optimize_pra(plan))
        assert_same_relation(optimized, original)

    @SETTINGS
    @given(st.data())
    def test_optimizer_is_idempotent(self, data):
        plan, _ = data.draw(plans())
        once = optimize_pra(plan)
        twice = optimize_pra(once)
        assert twice.fingerprint() == once.fingerprint()


class TestTopEquivalence:
    @SETTINGS
    @given(st.data())
    def test_top_equals_full_sort_then_slice(self, data):
        plan, _ = data.draw(plans())
        k = data.draw(st.integers(1, 6))
        full = EVALUATOR.evaluate(plan)
        expected = ProbabilisticRelation(
            full.sorted_by_probability().relation.head(k), validate=False
        )
        top = EVALUATOR.evaluate(PraTop(plan, k))
        # same evaluation feeds both paths: the partial-sort kernel must match
        # the full sort exactly, ordering and tie-breaking included
        assert list(top.rows()) == list(expected.rows())

    @SETTINGS
    @given(st.data())
    def test_pushed_down_top_equals_full_sort_then_slice(self, data):
        plan, _ = data.draw(plans())
        k = data.draw(st.integers(1, 6))
        full = EVALUATOR.evaluate(plan)
        expected = full.sorted_by_probability().relation.head(k)
        pushed = optimize_pra(PraTop(plan, k))
        result = EVALUATOR.evaluate(pushed)
        assert result.num_rows == min(k, full.num_rows)
        for actual_row, expected_row in zip(result.rows(), expected.rows()):
            assert tuple(actual_row[:-1]) == tuple(expected_row[:-1])
            assert float(actual_row[-1]) == pytest.approx(float(expected_row[-1]), abs=1e-9)
