"""Property-based shard-equivalence harness.

For random base tables and random PRA plans over them, execution through
the partitioned engine — :class:`ShardedExecutor` for shard counts 1–4 and
:class:`PoolExecutor` over worker processes — must be **bit-identical** to
:class:`LocalExecutor`: same rows, same order, same probabilities, ties
included.  No tolerance: the scatter-gather design reconstructs exact
original row order before any order-sensitive merge runs, so equality is
exact, not approximate.

Probabilities are dyadic so the fixtures are byte-stable; the comparison
itself never relies on that (it asserts plain ``==`` on whatever floats
both paths produce).  Like the plan-equivalence suite, the tests run
derandomized with an explicit deadline.
"""

from __future__ import annotations

from datetime import timedelta

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Engine
from repro.pra.assumptions import Assumption
from repro.pra.expressions import PositionalRef
from repro.pra.plan import (
    PraBayes,
    PraJoin,
    PraPlan,
    PraProject,
    PraScan,
    PraSelect,
    PraSubtract,
    PraTop,
    PraUnite,
    PraWeight,
)
from repro.relational.column import Column, DataType
from repro.relational.expressions import BinaryOp, Literal
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.workloads import generate_auction_triples

NODES = ["a", "b", "c", "d", "e"]
DYADIC_P = [i / 16 for i in range(17)]
WEIGHTS = st.sampled_from([0.25, 0.5, 0.75, 1.0])
ASSUMPTIONS = st.sampled_from(list(Assumption))

SETTINGS = settings(max_examples=60, deadline=timedelta(seconds=10), derandomize=True)
POOL_SETTINGS = settings(max_examples=15, deadline=timedelta(seconds=20), derandomize=True)

#: every scannable leaf has two string value columns
TABLES = {"data": 40, "aux": 17}


def _random_table(rng: np.random.Generator, rows: int) -> Relation:
    schema = Schema(
        [
            Field("c0", DataType.STRING),
            Field("c1", DataType.STRING),
            Field("p", DataType.FLOAT),
        ]
    )
    return Relation(
        schema,
        [
            Column([str(rng.choice(NODES)) for _ in range(rows)], DataType.STRING),
            Column([str(rng.choice(NODES)) for _ in range(rows)], DataType.STRING),
            Column(rng.choice(DYADIC_P, size=rows), DataType.FLOAT),
        ],
    )


def _build_source_engine() -> Engine:
    # a real workload's triples plus two random tables with probabilities,
    # so scans exercise both lifted and stored-p paths
    workload = generate_auction_triples(60, seed=11)
    engine = Engine.from_triples(workload.triples)
    rng = np.random.default_rng(1234)
    for name, rows in TABLES.items():
        engine.create_table(name, _random_table(rng, rows))
    return engine


@pytest.fixture(scope="module")
def local_engine():
    return _build_source_engine()


@pytest.fixture(scope="module")
def sharded_engines(local_engine, tmp_path_factory):
    engines = {}
    base = tmp_path_factory.mktemp("shard-equivalence")
    for shards in (1, 2, 3, 4):
        path = local_engine.save(base / f"s{shards}", shards=shards)
        engines[shards] = Engine.open_sharded(path)
    yield engines
    for engine in engines.values():
        engine.close()


@pytest.fixture(scope="module")
def swap_engine(local_engine, tmp_path_factory):
    """A live sharded engine plus alternate layouts to swap through.

    The alternate 2/3/4-shard layouts are materialized once; the test then
    cycles the serving executor across them with atomic epoch-advancing
    swaps *between and during* plan executions, proving the online-reshard
    path preserves bit-identity for arbitrary plans.
    """
    from repro.storage.shards import read_shard_map

    base = tmp_path_factory.mktemp("swap-equivalence")
    engine = Engine.open_sharded(local_engine.save(base / "s4", shards=4))
    layouts = [
        read_shard_map(local_engine.save(base / f"alt{shards}", shards=shards))
        for shards in (2, 3, 4)
    ]
    state = {"engine": engine, "layouts": layouts, "swaps": 0}
    yield state
    engine.close()


@pytest.fixture(scope="module")
def pool_engine(local_engine, tmp_path_factory):
    path = local_engine.save(tmp_path_factory.mktemp("pool-equivalence") / "p2", shards=2)
    engine = Engine.open_sharded(path, executor="pool")
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def batched_pool_engine(local_engine, tmp_path_factory):
    """A pool with write coalescing on and both shards on one connection.

    ``workers=1`` forces every scatter's begin-all-then-wait fan-out through
    a single pipe, so sub-requests genuinely travel in multi-frame batches
    and run through the worker's batch-execution path.
    """
    from repro.serving import ServingConfig

    path = local_engine.save(tmp_path_factory.mktemp("batch-equivalence") / "p2", shards=2)
    engine = Engine.open_sharded(
        path,
        executor="pool",
        config=ServingConfig(workers=1, max_batch_size=8),
    )
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def shm_pool_engine(local_engine, tmp_path_factory):
    """A pool with *every* reply forced through the shared-memory path."""
    from repro.serving.shm import shared_memory_available

    if not shared_memory_available():
        pytest.skip("multiprocessing.shared_memory unavailable")
    path = local_engine.save(tmp_path_factory.mktemp("shm-equivalence") / "p2", shards=2)
    engine = Engine.open_sharded(path, executor="pool", transport="shm", shm_threshold=0)
    yield engine
    engine.close()


def _leaf_with_arity(draw, arity: int) -> PraPlan:
    """A scannable leaf with exactly ``arity`` value columns."""
    if arity == 1:
        return PraProject(
            PraScan(draw(st.sampled_from(sorted(TABLES)))), [1], Assumption.INDEPENDENT
        )
    if arity == 2:
        return PraScan(draw(st.sampled_from(sorted(TABLES))))
    if arity == 3:
        return PraScan("triples")
    return PraJoin(
        _leaf_with_arity(draw, 2),
        _leaf_with_arity(draw, arity - 2),
        [(1, 1)],
        Assumption.INDEPENDENT,
    )


def _draw_plan(draw, depth: int, arity: int | None = None) -> tuple[PraPlan, int]:
    if depth <= 0 or draw(st.integers(0, 3)) == 0:
        if arity is None:
            table = draw(st.sampled_from(sorted(TABLES) + ["triples"]))
            return PraScan(table), 3 if table == "triples" else 2
        return _leaf_with_arity(draw, arity), arity

    choices = ["select", "weight", "top", "bayes", "unite", "subtract"]
    if arity is None:
        choices += ["project", "join"]
    op = draw(st.sampled_from(choices))

    if op == "select":
        child, child_arity = _draw_plan(draw, depth - 1, arity)
        predicate = BinaryOp(
            "=",
            PositionalRef(draw(st.integers(1, child_arity))),
            Literal(draw(st.sampled_from(NODES))),
        )
        return PraSelect(child, predicate), child_arity
    if op == "weight":
        child, child_arity = _draw_plan(draw, depth - 1, arity)
        return PraWeight(child, draw(WEIGHTS)), child_arity
    if op == "top":
        child, child_arity = _draw_plan(draw, depth - 1, arity)
        return PraTop(child, draw(st.integers(1, 8))), child_arity
    if op == "bayes":
        child, child_arity = _draw_plan(draw, depth - 1, arity)
        evidence = draw(
            st.lists(st.integers(1, child_arity), unique=True, max_size=child_arity)
        )
        return PraBayes(child, evidence), child_arity
    if op == "unite":
        left, child_arity = _draw_plan(draw, depth - 1, arity)
        right, _ = _draw_plan(draw, depth - 1, child_arity)
        return PraUnite(left, right, draw(ASSUMPTIONS)), child_arity
    if op == "subtract":
        left, child_arity = _draw_plan(draw, depth - 1, arity)
        right, _ = _draw_plan(draw, depth - 1, child_arity)
        return PraSubtract(left, right), child_arity
    if op == "project":
        child, child_arity = _draw_plan(draw, depth - 1, None)
        positions = draw(st.lists(st.integers(1, child_arity), unique=True, min_size=1))
        return PraProject(child, positions, draw(ASSUMPTIONS)), len(positions)
    left, left_arity = _draw_plan(draw, depth - 1, None)
    right, right_arity = _draw_plan(draw, depth - 1, None)
    conditions = [(draw(st.integers(1, left_arity)), draw(st.integers(1, right_arity)))]
    return PraJoin(left, right, conditions, Assumption.INDEPENDENT), left_arity + right_arity


@st.composite
def plans(draw) -> PraPlan:
    plan, _arity = _draw_plan(draw, depth=3)
    return plan


def assert_bit_identical(actual, expected):
    """Rows, order, and probabilities must match exactly — no tolerance."""
    assert actual.relation.schema.names == expected.relation.schema.names
    assert actual.value_rows() == expected.value_rows()
    assert np.array_equal(actual.probabilities(), expected.probabilities())


class TestShardedBitIdentity:
    @SETTINGS
    @given(plan=plans())
    def test_sharded_equals_local_for_shard_counts_1_to_4(
        self, plan, local_engine, sharded_engines
    ):
        expected = local_engine._execute_plan(plan)
        for shards, engine in sharded_engines.items():
            actual = engine._execute_plan(plan)
            assert_bit_identical(actual, expected)

    @SETTINGS
    @given(plan=plans(), k=st.integers(1, 8))
    def test_sharded_top_equals_local_top(self, plan, k, local_engine, sharded_engines):
        expected = local_engine._execute_plan(PraTop(plan, k))
        for _shards, engine in sharded_engines.items():
            assert_bit_identical(engine._execute_plan(PraTop(plan, k)), expected)


class TestPoolBitIdentity:
    @POOL_SETTINGS
    @given(plan=plans())
    def test_pool_equals_local(self, plan, local_engine, pool_engine):
        expected = local_engine._execute_plan(plan)
        assert_bit_identical(pool_engine._execute_plan(plan), expected)

    @POOL_SETTINGS
    @given(plan=plans())
    def test_batched_pool_equals_local(self, plan, local_engine, batched_pool_engine):
        # coalesced wire frames + worker batch execution must be invisible
        # in results for arbitrary plans, not just the curated search cases
        expected = local_engine._execute_plan(plan)
        assert_bit_identical(batched_pool_engine._execute_plan(plan), expected)

    @POOL_SETTINGS
    @given(plan=plans())
    def test_shm_transport_equals_local(self, plan, local_engine, shm_pool_engine):
        # shm_threshold=0 routes every reply frame through shared memory, so
        # the out-of-band result path must be bit-identical too
        expected = local_engine._execute_plan(plan)
        assert_bit_identical(shm_pool_engine._execute_plan(plan), expected)


class TestSwapBitIdentity:
    @POOL_SETTINGS
    @given(plan=plans())
    def test_mid_stream_swap_keeps_bit_identity(self, plan, local_engine, swap_engine):
        """An online layout swap between executions never changes an answer.

        Each Hypothesis example runs the plan, atomically swaps the serving
        layout to a different shard count (epoch + 1), and runs the same
        plan again: both answers must be bit-identical to the local engine.
        Over the example stream this cycles 2 -> 3 -> 4 shards repeatedly,
        so every transition direction is exercised mid-stream.
        """
        engine = swap_engine["engine"]
        expected = local_engine._execute_plan(plan)
        assert_bit_identical(engine._execute_plan(plan), expected)
        layouts = swap_engine["layouts"]
        swap_engine["swaps"] += 1
        target = layouts[swap_engine["swaps"] % len(layouts)]
        epoch = engine.executor_info()["epoch"]
        engine.blueprint_manager().swap_to(target.at_epoch(epoch + 1))
        assert engine.executor_info()["epoch"] == epoch + 1
        assert_bit_identical(engine._execute_plan(plan), expected)
