"""Property-based guarantees for the workload subsystem.

Two bit-identity contracts ride on the workload PR:

* the **cost-model-steered optimizer** (TOP-pushdown gate) and the
  **cost-model-steered scatter decision** choose between result-identical
  plans only — any gate function, however adversarial, yields a plan that
  evaluates to exactly the same relation;
* the **result cache** returns answers bit-identical to recomputation,
  under arbitrary interleavings of repeated execution, cache clears and
  distinct parameter bindings.

Like the plan-equivalence suite, probabilities are dyadic so exact float
equality is meaningful, and Hypothesis runs derandomized for reproducible
CI failures.
"""

from __future__ import annotations

from datetime import timedelta

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Engine
from repro.pra.optimizer import optimize_pra
from repro.pra.plan import PraTop
from repro.workload.cost import CostModel

from tests.property.test_plan_equivalence import (
    EVALUATOR,
    assert_same_relation,
    plans,
)

SETTINGS = settings(max_examples=150, deadline=timedelta(seconds=5), derandomize=True)

TRIPLES = [
    ("lot1", "type", "lot"),
    ("lot2", "type", "lot"),
    ("lot3", "type", "lot"),
    ("lot1", "hasAuction", "auction1"),
    ("lot2", "hasAuction", "auction2"),
    ("lot3", "hasAuction", "auction1"),
    ("lot1", "material", "oak", 0.5),
    ("lot2", "material", "oak", 0.25),
    ("lot3", "material", "bronze", 0.75),
]

TRAVERSE = "auctions = TRAVERSE ['hasAuction'] (seeds);"

SEED_POOL = ["lot1", "lot2", "lot3"]

_THRESHOLD_MODEL = CostModel(top_pushdown_threshold=3.0)

#: gates a cost model (or an adversary) could plug into the optimizer
GATES = st.sampled_from(
    [
        None,
        lambda child: True,
        lambda child: False,
        # the real shape: estimate the child, compare against the threshold
        lambda child: _THRESHOLD_MODEL.should_push_top(
            _THRESHOLD_MODEL.estimate(child, lambda name: None).output_rows
        ),
        # an adversarial, plan-dependent but deterministic gate
        lambda child: len(child.fingerprint()) % 2 == 0,
    ]
)


class TestGatedOptimizerEquivalence:
    @SETTINGS
    @given(st.data())
    def test_any_top_gate_yields_identical_results(self, data):
        plan, _ = data.draw(plans())
        k = data.draw(st.integers(1, 6))
        gate = data.draw(GATES)
        topped = PraTop(plan, k)
        baseline = EVALUATOR.evaluate(optimize_pra(topped))
        gated = EVALUATOR.evaluate(optimize_pra(topped, top_gate=gate))
        assert_same_relation(gated, baseline)

    @SETTINGS
    @given(st.data())
    def test_gated_optimizer_matches_unoptimized_plan(self, data):
        plan, _ = data.draw(plans())
        gate = data.draw(GATES)
        original = EVALUATOR.evaluate(plan)
        gated = EVALUATOR.evaluate(optimize_pra(plan, top_gate=gate))
        assert_same_relation(gated, original)


class TestResultCacheEquivalence:
    @SETTINGS
    @given(
        st.lists(
            st.tuples(
                st.lists(st.sampled_from(SEED_POOL), min_size=1, max_size=3),
                st.booleans(),  # clear the caches before this execution?
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_cached_executions_bit_identical_to_uncached(self, script):
        cached = Engine.from_triples(TRIPLES)
        plain = Engine.from_triples(TRIPLES, result_cache_size=None)
        for seeds, clear in script:
            if clear:
                cached.clear_caches()
            # repeat so the adaptive admission (bypass -> store -> hit)
            # cycles through every cache state within one script step
            for _ in range(3):
                hot = cached.spinql(TRAVERSE, seeds=seeds).execute(seeds=seeds)
                cold = plain.spinql(TRAVERSE, seeds=seeds).execute(seeds=seeds)
                assert hot.value_rows() == cold.value_rows()
                assert list(map(float, hot.probabilities())) == list(
                    map(float, cold.probabilities())
                )

    @SETTINGS
    @given(st.lists(st.sampled_from(SEED_POOL), min_size=1, max_size=3))
    def test_steered_engine_matches_default_engine(self, seeds):
        steered = Engine.from_triples(
            TRIPLES,
            cost_model=CostModel(top_pushdown_threshold=1e9, scatter_threshold=1e9),
        )
        default = Engine.from_triples(TRIPLES)
        assert steered.spinql(TRAVERSE, seeds=seeds).top(3) == default.spinql(
            TRAVERSE, seeds=seeds
        ).top(3)
        hot = steered.spinql(TRAVERSE, seeds=seeds).execute(seeds=seeds)
        cold = default.spinql(TRAVERSE, seeds=seeds).execute(seeds=seeds)
        assert hot.value_rows() == cold.value_rows()
