"""Unit tests for the benchmark harness utilities."""

import pytest

from repro.bench.harness import LatencyStats, Sweep, measure_latency, throughput_per_day
from repro.bench.reporting import ResultTable


class TestLatencyStats:
    def test_summary_statistics(self):
        stats = LatencyStats([10.0, 20.0, 30.0, 40.0])
        assert stats.count == 4
        assert stats.mean_ms == pytest.approx(25.0)
        assert stats.median_ms == pytest.approx(25.0)
        assert stats.min_ms == 10.0
        assert stats.max_ms == 40.0
        assert stats.p95_ms == 40.0

    def test_empty_samples(self):
        stats = LatencyStats([])
        assert stats.mean_ms == 0.0
        assert stats.p95_ms == 0.0

    def test_summary_dict(self):
        summary = LatencyStats([1.0]).summary()
        assert set(summary) == {"count", "mean_ms", "median_ms", "p95_ms", "min_ms", "max_ms"}

    def test_measure_latency_counts_and_warmup(self):
        calls = []
        stats = measure_latency(lambda: calls.append(1), repetitions=3, warmup=2)
        assert stats.count == 3
        assert len(calls) == 5
        assert all(sample >= 0 for sample in stats.samples_ms)


class TestThroughput:
    def test_conversion(self):
        # 100 ms per request -> 10 requests/s -> 864,000 requests/day
        assert throughput_per_day(100.0) == pytest.approx(864_000)

    def test_concurrency_scales_linearly(self):
        assert throughput_per_day(100.0, concurrency=4) == pytest.approx(4 * 864_000)

    def test_degenerate_latency(self):
        assert throughput_per_day(0.0) == float("inf")


class TestSweep:
    def test_cartesian_combinations(self):
        sweep = Sweep({"docs": [10, 100], "terms": [1, 3, 5]})
        combinations = list(sweep.combinations())
        assert len(combinations) == len(sweep) == 6
        assert {"docs": 10, "terms": 5} in combinations

    def test_single_parameter(self):
        sweep = Sweep({"x": [1]})
        assert list(sweep.combinations()) == [{"x": 1}]


class TestResultTable:
    def test_positional_and_named_rows(self):
        table = ResultTable("demo", ["a", "b"])
        table.add_row(1, 2.5)
        table.add_row(a="x", b="y")
        text = table.render()
        assert "demo" in text
        assert "2.500" in text
        assert "x" in text and "y" in text

    def test_wrong_arity_rejected(self):
        table = ResultTable("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_mixing_positional_and_named_rejected(self):
        table = ResultTable("demo", ["a"])
        with pytest.raises(ValueError):
            table.add_row(1, a=2)

    def test_alignment(self):
        table = ResultTable("t", ["name", "value"])
        table.add_row("a-very-long-name", 1)
        table.add_row("x", 2)
        lines = table.render().splitlines()
        assert len(lines[2]) == len(lines[4])
