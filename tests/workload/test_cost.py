"""The cost model: estimation, calibration, and optimizer/executor steering."""

from __future__ import annotations

import pytest

from repro.engine import Engine
from repro.pra.assumptions import Assumption
from repro.pra.expressions import PositionalRef
from repro.pra.optimizer import optimize_pra
from repro.pra.plan import PraScan, PraSelect, PraTop, PraUnite, PraWeight
from repro.relational.expressions import BinaryOp, Literal
from repro.workload.cost import DEFAULT_UNKNOWN_ROWS, CostModel
from repro.workload.log import WorkloadRecord

TRIPLES = [
    ("lot1", "type", "lot"),
    ("lot2", "type", "lot"),
    ("lot1", "hasAuction", "auction1"),
    ("lot2", "hasAuction", "auction2"),
    ("lot1", "material", "oak", 0.9),
]

TRAVERSE = "auctions = TRAVERSE ['hasAuction'] (seeds);"


def predicate(position, value):
    return BinaryOp("=", PositionalRef(position), Literal(value))


@pytest.fixture
def engine():
    return Engine.from_triples(TRIPLES)


class TestEstimation:
    def test_scan_uses_catalog_cardinality(self):
        model = CostModel()
        estimate = model.estimate(PraScan("triples"), lambda name: 500.0)
        assert estimate.output_rows == 500.0
        assert estimate.per_kind_units == {"scan": 500.0}
        assert estimate.estimated_ms > 0

    def test_unknown_cardinality_falls_back_to_default(self):
        model = CostModel()
        estimate = model.estimate(PraScan("lazy"), lambda name: None)
        assert estimate.output_rows == DEFAULT_UNKNOWN_ROWS

    def test_selection_reduces_estimated_rows(self):
        model = CostModel()
        plan = PraSelect(PraScan("triples"), predicate(2, "material"))
        estimate = model.estimate(plan, lambda name: 100.0)
        assert estimate.output_rows < 100.0
        assert estimate.per_kind_units["select"] == 100.0  # work = input rows

    def test_top_caps_output_rows(self):
        model = CostModel()
        plan = PraTop(PraScan("triples"), 5)
        estimate = model.estimate(plan, lambda name: 100.0)
        assert estimate.output_rows == 5.0

    def test_estimate_is_deterministic(self):
        model = CostModel()
        plan = PraUnite(
            PraScan("a"), PraWeight(PraScan("b"), 0.5), Assumption.INDEPENDENT
        )
        first = model.estimate(plan, lambda name: 50.0)
        second = model.estimate(plan, lambda name: 50.0)
        assert first.to_dict() == second.to_dict()


class TestCalibration:
    def _records(self, coefficient_ms_per_row: float, n: int = 20):
        return [
            WorkloadRecord(
                seq=index,
                kind="plan",
                fingerprint="plan::x",
                latency_ms=coefficient_ms_per_row * rows,
                cost_units={"scan": float(rows)},
            )
            for index, rows in enumerate(range(10, 10 + n))
        ]

    def test_calibrate_recovers_linear_coefficient(self):
        model = CostModel()
        assert model.calibrate(self._records(0.004)) is True
        assert model.coefficients["scan"] == pytest.approx(0.004, rel=1e-6)
        assert model.calibrated_from == 20

    def test_calibrate_needs_min_samples(self):
        model = CostModel()
        before = dict(model.coefficients)
        assert model.calibrate(self._records(0.004, n=3)) is False
        assert model.coefficients == before

    def test_fitted_coefficients_stay_positive(self):
        model = CostModel()
        records = self._records(0.004) + [
            WorkloadRecord(
                seq=100 + i,
                kind="plan",
                fingerprint="plan::y",
                latency_ms=0.0,
                cost_units={"top": 1000.0},
            )
            for i in range(10)
        ]
        assert model.calibrate(records) is True
        assert all(value > 0 for value in model.coefficients.values())

    def test_engine_calibrates_from_its_own_log(self):
        # cache hits skip the executor and log no unit vector, so calibrate
        # from an uncached engine where every execution measures real work
        engine = Engine.from_triples(TRIPLES, result_cache_size=None)
        for _ in range(10):
            engine.spinql(TRAVERSE, seeds=["lot1"]).execute()
        assert engine.calibrate_cost_model(min_samples=5) is True
        assert engine.cost_model.calibrated_from >= 5


class TestSteering:
    def test_thresholds_default_to_always(self):
        model = CostModel()
        assert model.should_push_top(1.0) is True
        assert model.should_scatter(1.0) is True

    def test_threshold_vetoes_small_inputs(self):
        model = CostModel(top_pushdown_threshold=100.0, scatter_threshold=100.0)
        assert model.should_push_top(10.0) is False
        assert model.should_push_top(100.0) is True
        assert model.should_scatter(10.0) is False
        assert model.should_scatter(1000.0) is True

    def test_unknown_rows_always_push_and_scatter(self):
        model = CostModel(top_pushdown_threshold=100.0, scatter_threshold=100.0)
        assert model.should_push_top(None) is True
        assert model.should_scatter(None) is True

    def test_top_gate_blocks_the_weight_pushdown(self):
        plan = PraTop(PraWeight(PraScan("triples"), 0.5), 2)
        pushed = optimize_pra(plan)
        assert isinstance(pushed, PraWeight)  # TOP sank below the weight
        gated = optimize_pra(plan, top_gate=lambda child: False)
        assert isinstance(gated, PraTop)  # gate vetoed: TOP stays on top
        assert isinstance(gated.child, PraWeight)

    def test_gated_engine_explains_the_same_results(self, engine):
        steered = Engine.from_triples(
            TRIPLES, cost_model=CostModel(top_pushdown_threshold=1e9)
        )
        default_top = engine.spinql(TRAVERSE, seeds=["lot1", "lot2"]).top(2)
        steered_top = steered.spinql(TRAVERSE, seeds=["lot1", "lot2"]).top(2)
        assert steered_top == default_top


class TestExplainSurface:
    def test_explain_includes_cost_estimate(self, engine):
        report = engine.spinql(TRAVERSE, seeds=["lot1"]).explain()
        assert "Cost estimate:" in report
        assert "estimated:" in report

    def test_explain_data_includes_cost_dict(self, engine):
        data = engine.spinql(TRAVERSE, seeds=["lot1"]).explain_data()
        cost = data["cost"]
        assert cost["estimated_ms"] >= 0
        assert cost["output_rows"] >= 0
        assert isinstance(cost["per_kind_units"], dict)
