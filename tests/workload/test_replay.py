"""Replay and load generation: deterministic schedules, targets, reports."""

from __future__ import annotations

import pytest

from repro.engine import Engine
from repro.errors import ReproError
from repro.serving import Router
from repro.workload.log import WorkloadRecord
from repro.workload.replay import (
    EngineTarget,
    RouterTarget,
    replay_schedule,
    request_templates,
    run_schedule,
    synthesize_schedule,
)

TRIPLES = [
    ("lot1", "type", "lot"),
    ("lot2", "type", "lot"),
    ("lot3", "type", "lot"),
    ("lot1", "hasAuction", "auction1"),
    ("lot2", "hasAuction", "auction2"),
    ("lot1", "material", "oak", 0.9),
    ("lot2", "material", "oak", 0.4),
    ("lot3", "material", "bronze", 0.8),
]

SOURCES = [
    'a = SELECT [$2="type"] (triples);',
    'b = SELECT [$2="material"] (triples);',
    'c = SELECT [$2="material" and $3="oak"] (triples);',
]


def _record(seq, request):
    return WorkloadRecord(
        seq=seq, kind="plan", fingerprint=f"plan::{seq}", latency_ms=1.0,
        request=request,
    )


def _log_records():
    records = []
    seq = 0
    for repeat, source in zip((4, 2, 1), SOURCES):
        for _ in range(repeat):
            records.append(_record(seq, {"kind": "spinql", "source": source}))
            seq += 1
    return records


@pytest.fixture
def engine():
    return Engine.from_triples(TRIPLES)


class TestScheduleConstruction:
    def test_templates_ranked_by_frequency(self):
        templates = request_templates(_log_records())
        assert [count for _request, count in templates] == [4, 2, 1]
        assert templates[0][0]["source"] == SOURCES[0]

    def test_replay_preserves_log_order(self):
        schedule = replay_schedule(_log_records())
        assert len(schedule.requests) == 7
        assert schedule.requests[0].request["source"] == SOURCES[0]
        assert schedule.requests[-1].request["source"] == SOURCES[2]

    def test_replay_skips_unreplayable_records(self):
        records = _log_records() + [
            WorkloadRecord(seq=99, kind="plan", fingerprint="plan::x", latency_ms=1.0)
        ]
        assert len(replay_schedule(records).requests) == 7

    def test_replay_of_empty_log_raises(self):
        with pytest.raises(ReproError):
            replay_schedule([])

    def test_same_seed_same_hash(self):
        a = synthesize_schedule(_log_records(), num_requests=50, seed=7)
        b = synthesize_schedule(_log_records(), num_requests=50, seed=7)
        assert a.schedule_hash() == b.schedule_hash()
        assert [s.request for s in a.requests] == [s.request for s in b.requests]

    def test_different_seed_different_hash(self):
        a = synthesize_schedule(_log_records(), num_requests=50, seed=7)
        b = synthesize_schedule(_log_records(), num_requests=50, seed=8)
        assert a.schedule_hash() != b.schedule_hash()

    def test_zipf_skew_prefers_hot_templates(self):
        schedule = synthesize_schedule(
            _log_records(), num_requests=300, seed=7, zipf_s=1.5
        )
        counts = {}
        for spec in schedule.requests:
            counts[spec.request["source"]] = counts.get(spec.request["source"], 0) + 1
        assert counts[SOURCES[0]] > counts[SOURCES[2]]

    def test_open_mode_offsets_are_nondecreasing(self):
        schedule = synthesize_schedule(
            _log_records(), num_requests=20, seed=7, mode="open", rate_qps=500.0
        )
        offsets = [spec.offset_ms for spec in schedule.requests]
        assert offsets == sorted(offsets)
        assert offsets[-1] > 0

    def test_unknown_mode_raises(self):
        with pytest.raises(ReproError):
            synthesize_schedule(_log_records(), num_requests=5, seed=1, mode="banana")


class TestRunSchedule:
    def test_closed_loop_against_engine(self, engine):
        schedule = synthesize_schedule(_log_records(), num_requests=20, seed=3)
        report = run_schedule(schedule, EngineTarget(engine), concurrency=4)
        assert report.completed == 20
        assert report.errors == 0
        assert report.throughput_qps > 0
        assert set(report.latency) == {"p50_ms", "p95_ms", "p99_ms", "mean_ms"}

    def test_results_digest_is_deterministic(self, engine):
        schedule = synthesize_schedule(_log_records(), num_requests=20, seed=3)
        first = run_schedule(schedule, EngineTarget(engine), concurrency=4)
        second = run_schedule(
            schedule, EngineTarget(Engine.from_triples(TRIPLES)), concurrency=2
        )
        assert first.results_digest == second.results_digest

    def test_open_loop_runs_to_completion(self, engine):
        schedule = synthesize_schedule(
            _log_records(), num_requests=10, seed=3, mode="open", rate_qps=2000.0
        )
        report = run_schedule(schedule, EngineTarget(engine), concurrency=4)
        assert report.completed == 10
        assert report.mode == "open"

    def test_router_target_records_serve_entries(self, engine):
        router = Router(engine, max_concurrent=2, max_queue=8)
        schedule = replay_schedule(_log_records())
        report = run_schedule(schedule, RouterTarget(router), concurrency=2)
        assert report.completed == 7
        serves = [e for e in engine.workload_log.snapshot() if e.kind == "serve"]
        assert len(serves) == 7
        assert all(e.fingerprint.startswith("serve::") for e in serves)

    def test_bad_requests_count_as_errors(self, engine):
        records = [_record(0, {"kind": "spinql", "source": "this is not spinql"})]
        schedule = replay_schedule(records)
        report = run_schedule(schedule, RouterTarget(Router(engine)), concurrency=1)
        assert report.completed == 0
        assert report.errors == 1


class TestEndToEndFromEngineLog:
    def test_recorded_traffic_replays_identically(self, engine):
        for source in SOURCES:
            engine.spinql(source).execute()
        schedule = replay_schedule(engine.workload_log.snapshot())
        assert len(schedule.requests) == 3
        fresh = Engine.from_triples(TRIPLES)
        report = run_schedule(schedule, EngineTarget(fresh), concurrency=2)
        assert report.completed == 3
        assert report.errors == 0
