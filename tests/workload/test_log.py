"""The workload log: bounded ring buffer, JSONL sink, summaries, engine wiring."""

from __future__ import annotations

import json

import pytest

from repro.engine import Engine
from repro.workload.log import (
    RECORD_SCHEMA_VERSION,
    WorkloadLog,
    WorkloadRecord,
    latency_percentiles,
    load_records,
    summarize,
    top_fingerprints,
)

TRIPLES = [
    ("lot1", "type", "lot"),
    ("lot2", "type", "lot"),
    ("lot3", "type", "lot"),
    ("lot1", "hasAuction", "auction1"),
    ("lot2", "hasAuction", "auction2"),
    ("lot1", "material", "oak", 0.9),
    ("lot2", "material", "oak", 0.4),
    ("lot3", "material", "bronze", 0.8),
]

TRAVERSE = "auctions = TRAVERSE ['hasAuction'] (seeds);"


@pytest.fixture
def engine():
    return Engine.from_triples(TRIPLES)


class TestRingBuffer:
    def test_capacity_bounds_the_buffer(self):
        log = WorkloadLog(capacity=4)
        for index in range(10):
            log.record("plan", f"plan::{index}", 1.0)
        stats = log.statistics()
        assert stats["size"] == 4
        assert stats["appended"] == 10
        assert stats["evicted"] == 6
        # the ring keeps the newest records
        assert [entry.fingerprint for entry in log.snapshot()] == [
            "plan::6",
            "plan::7",
            "plan::8",
            "plan::9",
        ]

    def test_sequence_numbers_are_monotonic(self):
        log = WorkloadLog(capacity=8)
        for _ in range(5):
            log.record("plan", "plan::x", 1.0)
        seqs = [entry.seq for entry in log.snapshot()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_records_carry_the_schema_version(self):
        log = WorkloadLog()
        log.record("plan", "plan::x", 1.0)
        assert log.snapshot()[0].to_dict()["v"] == RECORD_SCHEMA_VERSION


class TestJsonlRoundtrip:
    def test_export_and_load(self, tmp_path):
        log = WorkloadLog(capacity=16)
        log.record("plan", "plan::a", 2.0, rows_out=3, parameters={"seeds": ["lot1"]})
        log.record("search", "search::docs::oak", 1.0, rows_out=2, status="ok")
        path = tmp_path / "log.jsonl"
        log.export(path)
        loaded = load_records(path)
        assert [entry.fingerprint for entry in loaded] == [
            "plan::a",
            "search::docs::oak",
        ]
        assert loaded[0].parameters == {"seeds": ["lot1"]}

    def test_sink_appends_while_recording(self, tmp_path):
        path = tmp_path / "sink.jsonl"
        log = WorkloadLog(capacity=2)
        log.attach_sink(path)
        for index in range(5):
            log.record("plan", f"plan::{index}", 1.0)
        log.close()
        # the sink is unbounded even though the ring evicts
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 5
        assert json.loads(lines[0])["fingerprint"] == "plan::0"

    def test_unknown_fields_are_ignored_on_load(self, tmp_path):
        path = tmp_path / "future.jsonl"
        record = WorkloadRecord(seq=1, kind="plan", fingerprint="plan::x", latency_ms=1.0)
        payload = {**record.to_dict(), "some_future_field": 42}
        path.write_text(json.dumps(payload) + "\n")
        loaded = load_records(path)
        assert len(loaded) == 1
        assert loaded[0].fingerprint == "plan::x"


class TestSummaries:
    def _records(self):
        return [
            WorkloadRecord(seq=1, kind="plan", fingerprint="plan::a", latency_ms=1.0),
            WorkloadRecord(seq=2, kind="plan", fingerprint="plan::a", latency_ms=3.0),
            WorkloadRecord(seq=3, kind="plan", fingerprint="plan::b", latency_ms=2.0),
            WorkloadRecord(
                seq=4, kind="search", fingerprint="search::x", latency_ms=4.0,
                status="error",
            ),
        ]

    def test_summarize_shape(self):
        summary = summarize(self._records())
        assert summary["records"] == 4
        assert summary["by_kind"] == {"plan": 3, "search": 1}
        assert summary["by_status"] == {"ok": 3, "error": 1}
        assert set(summary["latency"]) == {"p50_ms", "p95_ms", "p99_ms", "mean_ms"}
        assert summary["top_fingerprints"][0]["fingerprint"] == "plan::a"
        assert summary["top_fingerprints"][0]["count"] == 2

    def test_top_fingerprints_orders_by_count_then_name(self):
        ranked = top_fingerprints(self._records(), 10)
        assert [item["fingerprint"] for item in ranked] == [
            "plan::a",
            "plan::b",
            "search::x",
        ]

    def test_percentiles_on_known_data(self):
        # 0..100 inclusive: percentile indices land exactly on their values
        stats = latency_percentiles([float(v) for v in range(101)])
        assert stats["p50_ms"] == 50.0
        assert stats["p95_ms"] == 95.0
        assert stats["p99_ms"] == 99.0
        assert stats["mean_ms"] == 50.0

    def test_percentiles_empty(self):
        stats = latency_percentiles([])
        assert stats["p50_ms"] == 0.0


class TestEngineWiring:
    def test_execute_appends_plan_records(self, engine):
        engine.spinql(TRAVERSE, seeds=["lot1"]).execute()
        records = engine.workload_log.snapshot()
        assert len(records) == 1
        entry = records[0]
        assert entry.kind == "plan"
        assert entry.fingerprint.startswith("plan::")
        assert entry.rows_out == 1
        assert entry.latency_ms > 0
        assert entry.request == {"kind": "spinql", "source": TRAVERSE}
        assert entry.cost_units  # the estimator ran over the executed plan

    def test_result_cache_statuses_progress(self, engine):
        for _ in range(3):
            engine.spinql(TRAVERSE, seeds=["lot1"]).execute()
        statuses = [entry.result_cache for entry in engine.workload_log.snapshot()]
        # adaptive admission: bypassed on first sighting, admitted on the
        # second, served from cache on the third
        assert statuses == ["bypass", "miss", "hit"]

    def test_search_appends_search_records(self, engine):
        engine.store.register_docs_view(
            "docs", filter_property="type", filter_value="lot",
            text_property="material",
        )
        engine.search("docs", "oak").execute()
        records = [e for e in engine.workload_log.snapshot() if e.kind == "search"]
        assert len(records) == 1
        assert records[0].fingerprint == "search::docs::oak"
        assert records[0].request == {"kind": "search", "table": "docs", "query": "oak"}
        assert records[0].rows_out == 2

    def test_statz_surface_in_connect_info(self, engine):
        engine.spinql(TRAVERSE, seeds=["lot1"]).execute()
        info = engine.connect_info()
        assert info["workload_log"]["appended"] == 1
        assert info["result_cache"]["misses"] == 1
        assert info["result_cache"]["bypassed"] == 1
