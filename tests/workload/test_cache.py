"""The adaptive result cache: admission, LRU bound, invalidation, engine wiring."""

from __future__ import annotations

import pytest

from repro.engine import Engine
from repro.pra.relation import ProbabilisticRelation
from repro.relational.column import DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.workload.cache import ResultCache, binding_fingerprint

TRIPLES = [
    ("lot1", "type", "lot"),
    ("lot2", "type", "lot"),
    ("lot1", "hasAuction", "auction1"),
    ("lot2", "hasAuction", "auction2"),
]

TRAVERSE = "auctions = TRAVERSE ['hasAuction'] (seeds);"


def _relation(rows):
    plain = Relation.from_rows(Schema([Field("x", DataType.STRING)]), rows)
    return ProbabilisticRelation.lift(plain)


@pytest.fixture
def engine():
    return Engine.from_triples(TRIPLES)


class TestAdmission:
    def test_first_sighting_is_bypassed_second_admitted(self):
        cache = ResultCache(max_entries=4)
        value = _relation([("a",)])
        assert cache.store(("fp", ""), value) is False
        assert cache.statistics.bypassed == 1
        assert len(cache) == 0
        assert cache.store(("fp", ""), value) is True
        assert cache.statistics.admitted == 1
        assert cache.lookup(("fp", "")) is value

    def test_distinct_bindings_share_the_sighting_count(self):
        cache = ResultCache(max_entries=4)
        value = _relation([("a",)])
        assert cache.store(("fp", "x=1"), value) is False
        # same plan fingerprint, different bindings: second sighting admits
        assert cache.store(("fp", "x=2"), value) is True

    def test_threshold_one_admits_immediately(self):
        cache = ResultCache(max_entries=4, admission_threshold=1)
        assert cache.store(("fp", ""), _relation([("a",)])) is True


class TestBounds:
    def test_lru_eviction_never_exceeds_max_entries(self):
        cache = ResultCache(max_entries=2, admission_threshold=1)
        for index in range(5):
            cache.store((f"fp{index}", ""), _relation([(str(index),)]))
        assert len(cache) == 2
        assert cache.statistics.evictions == 3
        assert ("fp4", "") in cache and ("fp3", "") in cache

    def test_sightings_tracker_is_bounded(self):
        cache = ResultCache(max_entries=4)
        for index in range(1000):
            cache.store((f"fp{index}", ""), _relation([("a",)]))
        assert len(cache._sightings) <= cache._sightings_capacity


class TestInvalidation:
    def test_invalidate_table_drops_dependent_entries(self):
        cache = ResultCache(max_entries=4, admission_threshold=1)
        cache.store(("a", ""), _relation([("a",)]), dependencies=frozenset({"triples"}))
        cache.store(("b", ""), _relation([("b",)]), dependencies=frozenset({"docs"}))
        assert cache.invalidate_table("triples") == 1
        assert ("a", "") not in cache
        assert ("b", "") in cache
        assert cache.statistics.invalidations == 1

    def test_clear_resets_entries_and_sightings(self):
        cache = ResultCache(max_entries=4, admission_threshold=1)
        cache.store(("a", ""), _relation([("a",)]))
        cache.clear()
        assert len(cache) == 0
        # sightings were cleared too: the next store starts from scratch
        cache2 = ResultCache(max_entries=4)
        cache2.store(("a", ""), _relation([("a",)]))
        cache2.clear()
        assert cache2.store(("a", ""), _relation([("a",)])) is False


class TestBindingFingerprint:
    def test_empty_bindings(self):
        assert binding_fingerprint(None) == ""
        assert binding_fingerprint({}) == ""

    def test_sorted_and_content_based(self):
        a, b = _relation([("a",)]), _relation([("b",)])
        forward = binding_fingerprint({"x": a, "y": b})
        backward = binding_fingerprint({"y": b, "x": a})
        assert forward == backward
        assert binding_fingerprint({"x": a}) != binding_fingerprint({"x": b})

    def test_same_content_same_fingerprint(self):
        assert binding_fingerprint({"x": _relation([("a",)])}) == binding_fingerprint(
            {"x": _relation([("a",)])}
        )


class TestEngineWiring:
    def test_third_execution_returns_the_cached_object(self, engine):
        first = engine.spinql(TRAVERSE, seeds=["lot1"]).execute()
        second = engine.spinql(TRAVERSE, seeds=["lot1"]).execute()
        third = engine.spinql(TRAVERSE, seeds=["lot1"]).execute()
        assert third is second  # served from cache: the identical object
        assert first is not second
        assert engine.result_cache.statistics.hits == 1

    def test_cached_result_is_bit_identical(self, engine):
        baseline = Engine.from_triples(TRIPLES, result_cache_size=None)
        for _ in range(3):
            cached = engine.spinql(TRAVERSE, seeds=["lot1"]).execute()
            plain = baseline.spinql(TRAVERSE, seeds=["lot1"]).execute()
            assert cached.value_rows() == plain.value_rows()
            assert list(cached.probabilities()) == list(plain.probabilities())

    def test_reload_invalidates_cached_results(self, engine):
        for _ in range(3):
            engine.spinql(TRAVERSE, seeds=["lot1"]).execute()
        assert len(engine.result_cache) == 1
        engine.load_triples([("lot1", "hasAuction", "auction9")])
        result = engine.spinql(TRAVERSE, seeds=["lot1"]).execute()
        assert sorted(result.value_rows()) == [("auction1",), ("auction9",)]

    def test_result_cache_can_be_disabled(self):
        engine = Engine.from_triples(TRIPLES, result_cache_size=None)
        assert engine.result_cache is None
        for _ in range(3):
            engine.spinql(TRAVERSE, seeds=["lot1"]).execute()
        statuses = [e.result_cache for e in engine.workload_log.snapshot()]
        assert statuses == [None, None, None]
