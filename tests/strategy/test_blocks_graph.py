"""Unit tests for strategy blocks, ports and the strategy graph."""

import pytest

from repro.errors import BlockError, PortError, StrategyError
from repro.ir.ranking import TfIdfModel
from repro.strategy.blocks import PortKind, StrategyContext
from repro.strategy.graph import StrategyGraph
from repro.strategy.library import (
    ExtractTextBlock,
    IntersectBlock,
    LimitBlock,
    MixBlock,
    QueryInputBlock,
    RankByTextBlock,
    SelectByPropertyBlock,
    SelectByTypeBlock,
    TraversePropertyBlock,
)


class TestPortKinds:
    def test_ranked_and_resources_are_interchangeable(self):
        assert PortKind.RANKED.compatible_with(PortKind.RESOURCES)
        assert PortKind.RESOURCES.compatible_with(PortKind.RANKED)

    def test_other_kinds_require_exact_match(self):
        assert PortKind.QUERY.compatible_with(PortKind.QUERY)
        assert not PortKind.QUERY.compatible_with(PortKind.DOCUMENTS)
        assert not PortKind.DOCUMENTS.compatible_with(PortKind.RESOURCES)


class TestBlockExecution:
    def test_query_input_analyzes_query(self, toy_store):
        block = QueryInputBlock()
        context = StrategyContext(store=toy_store, query="Wooden Trains")
        assert block.execute(context, {}) == ["wooden", "train"]

    def test_select_by_type(self, toy_store):
        block = SelectByTypeBlock("product")
        result = block.execute(StrategyContext(store=toy_store), {})
        assert result.num_rows == 4
        assert result.value_columns == ["node"]

    def test_select_by_property(self, toy_store):
        block = SelectByPropertyBlock("category", "toy")
        result = block.execute(StrategyContext(store=toy_store), {})
        assert set(result.relation.column("node").to_list()) == {
            "product1",
            "product3",
            "product4",
        }

    def test_extract_text(self, toy_store):
        resources = SelectByPropertyBlock("category", "toy").execute(
            StrategyContext(store=toy_store), {}
        )
        docs = ExtractTextBlock("description").execute(
            StrategyContext(store=toy_store), {"resources": resources}
        )
        assert docs.value_columns == ["docID", "data"]
        assert docs.num_rows == 3

    def test_extract_text_requires_input(self, toy_store):
        with pytest.raises(BlockError):
            ExtractTextBlock().execute(StrategyContext(store=toy_store), {})

    def test_traverse_property(self, auction_store):
        resources = SelectByTypeBlock("lot").execute(StrategyContext(store=auction_store), {})
        auctions = TraversePropertyBlock("hasAuction").execute(
            StrategyContext(store=auction_store), {"resources": resources}
        )
        assert set(auctions.relation.column("node").to_list()) == {"auction1", "auction2"}

    def test_rank_by_text(self, toy_store):
        context = StrategyContext(store=toy_store, query="wooden train")
        resources = SelectByPropertyBlock("category", "toy").execute(context, {})
        docs = ExtractTextBlock().execute(context, {"resources": resources})
        query = QueryInputBlock().execute(context, {})
        ranked = RankByTextBlock().execute(context, {"documents": docs, "query": query})
        assert ranked.value_columns == ["node"]
        top_node = ranked.sorted_by_probability().relation.column("node").to_list()[0]
        assert top_node == "product1"

    def test_rank_by_text_caches_statistics(self, toy_store):
        context = StrategyContext(store=toy_store, query="wooden")
        resources = SelectByPropertyBlock("category", "toy").execute(context, {})
        docs = ExtractTextBlock().execute(context, {"resources": resources})
        block = RankByTextBlock()
        block.execute(context, {"documents": docs, "query": ["wooden"]})
        assert len(block._statistics_cache) == 1
        block.execute(context, {"documents": docs, "query": ["train"]})
        assert len(block._statistics_cache) == 1

    def test_rank_by_text_rejects_non_list_query(self, toy_store):
        context = StrategyContext(store=toy_store)
        resources = SelectByPropertyBlock("category", "toy").execute(context, {})
        docs = ExtractTextBlock().execute(context, {"resources": resources})
        with pytest.raises(BlockError):
            RankByTextBlock().execute(context, {"documents": docs, "query": "wooden"})

    def test_rank_by_text_with_alternative_model(self, toy_store):
        context = StrategyContext(store=toy_store)
        resources = SelectByPropertyBlock("category", "toy").execute(context, {})
        docs = ExtractTextBlock().execute(context, {"resources": resources})
        ranked = RankByTextBlock(TfIdfModel()).execute(
            context, {"documents": docs, "query": ["wooden"]}
        )
        assert ranked.num_rows >= 1

    def test_mix_weights_validation(self):
        with pytest.raises(BlockError):
            MixBlock([])
        with pytest.raises(BlockError):
            MixBlock([-1.0, 2.0])
        with pytest.raises(BlockError):
            MixBlock([0.0, 0.0])

    def test_mix_normalizes_weights(self):
        block = MixBlock([7, 3])
        assert block.weights == pytest.approx([0.7, 0.3])

    def test_mix_combines_ranked_lists(self, toy_store):
        from repro.pra.relation import ProbabilisticRelation
        from repro.relational.column import DataType

        left = ProbabilisticRelation.from_rows(
            ["node"], [DataType.STRING], [("a", 1.0), ("b", 0.5)]
        )
        right = ProbabilisticRelation.from_rows(
            ["node"], [DataType.STRING], [("b", 1.0), ("c", 0.5)]
        )
        mixed = MixBlock([0.7, 0.3]).execute(
            StrategyContext(store=toy_store), {"ranked_0": left, "ranked_1": right}
        )
        values = dict(zip(mixed.relation.column("node").to_list(), mixed.probabilities()))
        assert values["a"] == pytest.approx(0.7)
        assert values["b"] == pytest.approx(0.7 * 0.5 + 0.3 * 1.0)
        assert values["c"] == pytest.approx(0.15)

    def test_intersect_block(self, toy_store):
        from repro.pra.relation import ProbabilisticRelation
        from repro.relational.column import DataType

        left = ProbabilisticRelation.from_rows(
            ["node"], [DataType.STRING], [("a", 0.5), ("b", 1.0)]
        )
        right = ProbabilisticRelation.from_rows(["node"], [DataType.STRING], [("b", 0.5)])
        result = IntersectBlock().execute(
            StrategyContext(store=toy_store), {"left": left, "right": right}
        )
        assert result.relation.column("node").to_list() == ["b"]
        assert result.probabilities()[0] == pytest.approx(0.5)

    def test_limit_block(self, toy_store):
        from repro.pra.relation import ProbabilisticRelation
        from repro.relational.column import DataType

        ranked = ProbabilisticRelation.from_rows(
            ["node"], [DataType.STRING], [("a", 0.9), ("b", 0.5), ("c", 0.1)]
        )
        limited = LimitBlock(2).execute(StrategyContext(store=toy_store), {"ranked": ranked})
        assert limited.num_rows == 2
        with pytest.raises(BlockError):
            LimitBlock(0)

    def test_port_payload_type_checked(self, toy_store):
        with pytest.raises(PortError):
            ExtractTextBlock().execute(
                StrategyContext(store=toy_store), {"resources": ["not", "a", "relation"]}
            )


class TestStrategyGraph:
    def build_minimal(self):
        graph = StrategyGraph("test")
        graph.add_block("select", SelectByPropertyBlock("category", "toy"))
        graph.add_block("extract", ExtractTextBlock())
        graph.add_block("query", QueryInputBlock())
        graph.add_block("rank", RankByTextBlock())
        return graph

    def test_duplicate_block_name_rejected(self):
        graph = self.build_minimal()
        with pytest.raises(StrategyError):
            graph.add_block("select", SelectByTypeBlock("product"))

    def test_connect_auto_port(self):
        graph = self.build_minimal()
        graph.connect("select", "extract")
        assert graph.inputs_of("extract") == {"resources": "select"}

    def test_connect_named_port(self):
        graph = self.build_minimal()
        graph.connect("extract", "rank", port="documents")
        graph.connect("query", "rank", port="query")
        assert graph.inputs_of("rank") == {"documents": "extract", "query": "query"}

    def test_connect_unknown_block_or_port(self):
        graph = self.build_minimal()
        with pytest.raises(StrategyError):
            graph.connect("select", "missing")
        with pytest.raises(StrategyError):
            graph.connect("select", "rank", port="nonexistent")

    def test_incompatible_port_kinds_rejected(self):
        graph = self.build_minimal()
        # query output (QUERY) cannot feed the documents port (DOCUMENTS)
        with pytest.raises(PortError):
            graph.connect("query", "rank", port="documents")

    def test_double_connection_rejected(self):
        graph = self.build_minimal()
        graph.connect("select", "extract")
        with pytest.raises(StrategyError):
            graph.connect("query", "extract", port="resources")

    def test_connect_to_block_without_inputs(self):
        graph = self.build_minimal()
        with pytest.raises(StrategyError):
            graph.connect("extract", "select")

    def test_validation_requires_all_ports_connected(self):
        graph = self.build_minimal()
        graph.connect("select", "extract")
        graph.connect("extract", "rank", port="documents")
        with pytest.raises(StrategyError):
            graph.validate()
        graph.connect("query", "rank", port="query")
        graph.validate()

    def test_execution_order_is_topological(self):
        graph = self.build_minimal()
        graph.connect("select", "extract")
        graph.connect("extract", "rank", port="documents")
        graph.connect("query", "rank", port="query")
        order = graph.execution_order()
        assert order.index("select") < order.index("extract") < order.index("rank")

    def test_sinks(self):
        graph = self.build_minimal()
        graph.connect("select", "extract")
        graph.connect("extract", "rank", port="documents")
        graph.connect("query", "rank", port="query")
        assert graph.sinks() == ["rank"]

    def test_cycle_detection(self, toy_store):
        graph = StrategyGraph()
        graph.add_block("a", TraversePropertyBlock("p"))
        graph.add_block("b", TraversePropertyBlock("q"))
        graph.connect("a", "b")
        graph.connect("b", "a")
        with pytest.raises(StrategyError):
            graph.execution_order()
