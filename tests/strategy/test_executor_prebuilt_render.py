"""Unit tests for strategy execution, the pre-built strategies and rendering."""

import pytest

from repro.errors import StrategyError
from repro.ir.query_expansion import SynonymExpander
from repro.strategy.executor import StrategyExecutor
from repro.strategy.graph import StrategyGraph
from repro.strategy.library import (
    ExtractTextBlock,
    MixBlock,
    QueryInputBlock,
    SelectByPropertyBlock,
    SelectByTypeBlock,
)
from repro.strategy.prebuilt import (
    build_auction_strategy,
    build_expanded_auction_strategy,
    build_toy_strategy,
)
from repro.strategy.render import render_ascii, render_dot


class TestExecutor:
    def test_runs_toy_strategy(self, toy_store):
        run = StrategyExecutor(toy_store).run(build_toy_strategy(), query="wooden train")
        assert run.query == "wooden train"
        nodes = [node for node, _ in run.top(5)]
        assert nodes[0] == "product1"
        assert set(nodes) <= {"product1", "product3", "product4"}

    def test_block_timings_and_outputs_recorded(self, toy_store):
        run = StrategyExecutor(toy_store).run(build_toy_strategy(), query="train")
        assert set(run.block_timings) == set(build_toy_strategy().block_names())
        assert "rank_bm25" in run.block_outputs
        assert run.elapsed_seconds > 0

    def test_result_sorted_by_probability(self, toy_store):
        run = StrategyExecutor(toy_store).run(build_toy_strategy(), query="train toy")
        probabilities = list(run.result.probabilities())
        assert probabilities == sorted(probabilities, reverse=True)

    def test_multiple_sinks_require_explicit_result_block(self, toy_store):
        graph = StrategyGraph()
        graph.add_block("a", SelectByTypeBlock("product"))
        graph.add_block("b", SelectByPropertyBlock("category", "toy"))
        executor = StrategyExecutor(toy_store)
        with pytest.raises(StrategyError):
            executor.run(graph, query="x")
        run = executor.run(graph, query="x", result_block="b")
        assert run.result.num_rows == 3

    def test_non_relation_result_block_rejected(self, toy_store):
        graph = StrategyGraph()
        graph.add_block("query", QueryInputBlock())
        with pytest.raises(StrategyError):
            StrategyExecutor(toy_store).run(graph, query="x", result_block="query")

    def test_invalid_graph_rejected_before_execution(self, toy_store):
        graph = StrategyGraph()
        graph.add_block("extract", ExtractTextBlock())
        with pytest.raises(StrategyError):
            StrategyExecutor(toy_store).run(graph, query="x")


class TestToyStrategy:
    def test_structure_matches_figure2(self):
        graph = build_toy_strategy()
        names = set(graph.block_names())
        assert names == {"select_category", "extract_description", "query", "rank_bm25"}
        assert graph.sinks() == ["rank_bm25"]

    def test_only_toy_products_are_ranked(self, toy_store):
        run = StrategyExecutor(toy_store).run(build_toy_strategy(), query="history of trains")
        nodes = {node for node, _ in run.top(10)}
        # product2 is a book about trains: it must NOT appear, the category
        # filter restricts the collection to toys (the point of the scenario)
        assert "product2" not in nodes

    def test_custom_category(self, toy_store):
        strategy = build_toy_strategy(category="book")
        run = StrategyExecutor(toy_store).run(strategy, query="history of trains")
        assert [node for node, _ in run.top(5)] == ["product2"]


class TestAuctionStrategy:
    def test_structure_matches_figure3(self):
        graph = build_auction_strategy()
        names = set(graph.block_names())
        assert {
            "select_lots",
            "query",
            "lot_descriptions",
            "rank_lots",
            "to_auctions",
            "auction_descriptions",
            "rank_auctions",
            "back_to_lots",
            "mix",
        } == names
        assert graph.sinks() == ["mix"]

    def test_returns_only_lots(self, auction_store):
        run = StrategyExecutor(auction_store).run(build_auction_strategy(), query="antique clock")
        nodes = [node for node, _ in run.top(10)]
        assert nodes and all(node.startswith("lot") for node in nodes)

    def test_own_description_match_ranks_first(self, auction_store):
        run = StrategyExecutor(auction_store).run(
            build_auction_strategy(), query="grandfather clock"
        )
        assert run.top(1)[0][0] == "lot2"

    def test_auction_description_contributes_sibling_lots(self, auction_store):
        # 'vintage furniture' only occurs in auction1's description; both of its
        # lots must be reachable through the right branch
        run = StrategyExecutor(auction_store).run(
            build_auction_strategy(), query="vintage furniture"
        )
        nodes = {node for node, _ in run.top(10)}
        assert {"lot1", "lot2"} <= nodes
        assert "lot3" not in nodes

    def test_weights_change_the_mix(self, auction_store):
        lot_heavy = StrategyExecutor(auction_store).run(
            build_auction_strategy(lot_weight=0.9, auction_weight=0.1), query="antique clocks"
        )
        auction_heavy = StrategyExecutor(auction_store).run(
            build_auction_strategy(lot_weight=0.1, auction_weight=0.9), query="antique clocks"
        )
        assert lot_heavy.top(4) != auction_heavy.top(4)

    def test_expanded_strategy_uses_synonyms(self, auction_store):
        expander = SynonymExpander({"timepiece": ["clock"]})
        strategy = build_expanded_auction_strategy(expander)
        run = StrategyExecutor(auction_store).run(strategy, query="timepiece")
        nodes = {node for node, _ in run.top(10)}
        assert "lot2" in nodes  # found only via the synonym 'clock'

    def test_plain_strategy_misses_synonym_only_query(self, auction_store):
        run = StrategyExecutor(auction_store).run(build_auction_strategy(), query="timepiece")
        assert run.result.num_rows == 0


class TestRendering:
    def test_ascii_contains_blocks_and_edges(self):
        text = render_ascii(build_auction_strategy())
        assert "rank auction lots" in text
        assert "Rank by Text" in text
        assert "mix" in text
        assert "<-- [rank_lots]" in text or "ranked_0 <-- [rank_lots]" in text
        assert "Result block(s): mix" in text

    def test_ascii_of_toy_strategy_mentions_category_filter(self):
        text = render_ascii(build_toy_strategy())
        assert "Select by property" in text
        assert "category" in text and "toy" in text

    def test_dot_output_is_well_formed(self):
        dot = render_dot(build_auction_strategy())
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"rank_lots" -> "mix"' in dot
        assert "Mix" in dot

    def test_mix_block_ports_render_weights(self):
        block = MixBlock([0.7, 0.3])
        ports = block.input_ports()
        assert len(ports) == 2
        assert "0.70" in ports[0].description
