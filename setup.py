"""Setup shim for environments without PEP 660 editable-install support.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that ``pip install -e .`` (legacy path) and ``python setup.py develop``
also work on machines whose setuptools lacks the ``wheel`` package required
for PEP 660 editable wheels.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.6.0",
    description=(
        "Industrial-strength Information Retrieval on Databases: a reproduction of "
        "Cornacchia et al., EDBT 2017"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24"],
    python_requires=">=3.10",
)
