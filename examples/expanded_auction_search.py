#!/usr/bin/env python3
"""The production variant of the auction strategy: query expansion enabled.

Section 3 notes that the production strategy adds "query expansion with
synonyms and compound terms" on top of the Figure 3 strategy, at no extra
engineering cost.  This example builds a synonym dictionary and a compound
expander over the collection vocabulary, runs the same queries through the
plain and the expanded strategy (both lazy queries off one engine), and
reports the recall difference and the latency overhead.

Run with:  python examples/expanded_auction_search.py [num_lots]
"""

import sys

from repro import Engine
from repro.bench.harness import LatencyStats
from repro.ir.query_expansion import ChainedExpander, CompoundExpander, SynonymExpander
from repro.workloads import generate_auction_triples


def main() -> None:
    num_lots = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    workload = generate_auction_triples(num_lots, seed=53)
    engine = Engine.from_triples(workload.triples)

    # synonym dictionary: invented user vocabulary mapped to collection terms
    frequent = workload.vocabulary.frequent_terms(20)
    synonyms = {f"userword{index}": [term] for index, term in enumerate(frequent[:10])}
    expander = ChainedExpander(
        [
            SynonymExpander(synonyms),
            CompoundExpander(vocabulary=set(workload.vocabulary.words)),
        ]
    )

    plain = engine.strategy("auction")
    expanded = engine.strategy("expanded-auction", expander=expander)

    # queries phrased in the "user vocabulary": only the expanded strategy can
    # map them onto collection terms
    user_queries = [f"userword{index} userword{index + 1}" for index in range(0, 8, 2)]
    # queries phrased in collection terms: both strategies handle them
    collection_queries = [" ".join(frequent[index : index + 3]) for index in range(0, 9, 3)]

    print("Recall on user-vocabulary queries (results found):")
    for query in user_queries:
        plain_run = plain.execute(query=query)
        expanded_run = expanded.execute(query=query)
        print(
            f"  {query!r:<28} plain: {plain_run.result.num_rows:5d}   "
            f"expanded: {expanded_run.result.num_rows:5d}"
        )

    print("\nLatency on collection-term queries (hot, ms):")
    plain.execute(query=collection_queries[0])      # warm up indexes
    expanded.execute(query=collection_queries[0])
    plain_runs = plain.execute_many([{"query": q} for q in collection_queries])
    expanded_runs = expanded.execute_many([{"query": q} for q in collection_queries])
    plain_stats = LatencyStats([run.elapsed_seconds * 1000 for run in plain_runs])
    expanded_stats = LatencyStats([run.elapsed_seconds * 1000 for run in expanded_runs])
    print(f"  plain    mean {plain_stats.mean_ms:7.1f} ms")
    print(f"  expanded mean {expanded_stats.mean_ms:7.1f} ms")
    overhead = (
        (expanded_stats.mean_ms / plain_stats.mean_ms - 1.0) * 100 if plain_stats.mean_ms else 0
    )
    print(f"  expansion overhead: {overhead:+.1f}%  (the paper reports the production")
    print("  strategy with 5 branches + expansion still answers in ~150 ms)")


if __name__ == "__main__":
    main()
