#!/usr/bin/env python3
"""Quickstart: IR-on-DB in a few lines, through the unified Engine facade.

The whole stack — triple store, probabilistic algebra, SpinQL, keyword
search, strategies — hangs off one session object::

    engine = connect().load_triples([...])

This example walks the core ideas of the paper on a tiny hand-made product
catalog:

1. load triples into the probabilistic triple store (Section 2.2/2.3);
2. run the Figure 2 strategy ("rank toy products by their description");
3. ask the same question with the fluent builder (filter → extract → rank);
4. show the SpinQL program for the sub-collection filter, its optimized PRA
   plan and its SQL translation (Section 2.3) — all from ``Query.explain()``.

Run with:  python examples/quickstart.py
"""

from repro import connect

TRIPLES = [
    ("product1", "category", "toy"),
    ("product1", "description", "wooden train set for children"),
    ("product2", "category", "book"),
    ("product2", "description", "history of trains and railways"),
    ("product3", "category", "toy"),
    ("product3", "description", "plastic toy car with remote control"),
    ("product4", "category", "toy"),
    ("product4", "description", "board game about trains and stations"),
]

SPINQL_DOCS = """
docs = PROJECT [$1 AS docID, $6 AS data] (
  JOIN INDEPENDENT [$1=$1] (
    SELECT [$2="category" and $3="toy"] (triples),
    SELECT [$2="description"] (triples) ) );
"""


def main() -> None:
    engine = connect().load_triples(TRIPLES)

    print("=" * 72)
    print("Figure 2 — rank toy products by their description (strategy front end)")
    print("=" * 72)
    strategy = engine.strategy("toy", category="toy")
    for query in ("wooden train", "remote control car", "history of trains"):
        run = strategy.execute(query=query)
        print(f"query: {query!r}")
        for node, probability in run.top(3):
            print(f"    {node:<12} p = {probability:.3f}")
        print(f"    ({run.elapsed_seconds * 1000:.1f} ms)")
    print()
    print("Note: 'history of trains' matches product2 best, but product2 is a")
    print("book — the category filter keeps it out of the ranked sub-collection.")
    print()

    print("=" * 72)
    print("The same question through the fluent builder")
    print("=" * 72)
    toy_docs = (
        engine.table("triples")
        .where(property="category", object="toy")
        .select("subject")
        .traverse("description")
    )
    ranked = (
        engine.table("triples")
        .where(property="description")
        .select("subject", "object")
        .rank("wooden train")
    )
    print(f"toy descriptions found: {toy_docs.execute().num_rows}")
    print("rank over all descriptions for 'wooden train':")
    for node, probability in ranked.top(3):
        print(f"    {node:<12} p = {probability:.3f}")
    print()

    print("=" * 72)
    print("Section 2.3 — SpinQL and its translation to SQL (Query.explain())")
    print("=" * 72)
    print(engine.spinql(SPINQL_DOCS).explain())
    print()


if __name__ == "__main__":
    main()
