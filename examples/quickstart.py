#!/usr/bin/env python3
"""Quickstart: IR-on-DB in a few lines.

This example walks through the core ideas of the paper on a tiny hand-made
product catalog:

1. load triples into the probabilistic triple store (Section 2.2/2.3);
2. reproduce Figure 1: an inverted index is a relational table and term
   lookup is a join;
3. run the Figure 2 strategy ("rank toy products by their description") and
   print the ranked results;
4. show the SpinQL program for the sub-collection filter and its SQL
   translation (Section 2.3).

Run with:  python examples/quickstart.py
"""

from repro.ir.inverted_index import InvertedIndex, term_lookup_join
from repro.spinql import compile_script, to_sql
from repro.strategy import StrategyExecutor, build_toy_strategy, render_ascii
from repro.text.analyzers import StandardAnalyzer
from repro.triples import TripleStore


def build_store() -> TripleStore:
    """A handful of products, three of them in the 'toy' category."""
    store = TripleStore()
    store.add_all(
        [
            ("product1", "type", "product"),
            ("product1", "category", "toy"),
            ("product1", "description", "wooden train set for children"),
            ("product2", "type", "product"),
            ("product2", "category", "book"),
            ("product2", "description", "history of trains and railways"),
            ("product3", "type", "product"),
            ("product3", "category", "toy"),
            ("product3", "description", "plastic toy car with remote control"),
            ("product4", "type", "product"),
            ("product4", "category", "toy"),
            ("product4", "description", "board game about trains and stations"),
        ]
    )
    store.load()
    return store


def demonstrate_figure1(store: TripleStore) -> None:
    """Figure 1: the inverted index as a relation, term lookup as a join."""
    print("=" * 72)
    print("Figure 1 — term look-up as a relational join")
    print("=" * 72)
    descriptions = store.select_property("description")
    documents = list(
        zip(
            descriptions.relation.column("subject").to_list(),
            descriptions.relation.column("object").to_list(),
        )
    )
    index = InvertedIndex.from_documents(documents, StandardAnalyzer("none"))
    index_relation = index.to_relation()
    print("\nInverted index as a (term, doc, pos) relation (first rows):")
    print(index_relation.to_text(max_rows=8))

    result = term_lookup_join(store.database, index_relation, ["train", "history"])
    print("\nJoin of query terms {train, history} with the term-doc table:")
    print(result.to_text())
    print()


def demonstrate_toy_strategy(store: TripleStore) -> None:
    """Figure 2: rank toy products by their description."""
    print("=" * 72)
    print("Figure 2 — rank toy products by their description")
    print("=" * 72)
    strategy = build_toy_strategy(category="toy")
    print()
    print(render_ascii(strategy))
    print()

    executor = StrategyExecutor(store)
    for query in ("wooden train", "remote control car", "history of trains"):
        run = executor.run(strategy, query=query)
        print(f"query: {query!r}")
        for node, probability in run.top(3):
            print(f"    {node:<12} p = {probability:.3f}")
        print(f"    ({run.elapsed_seconds * 1000:.1f} ms)")
    print()
    print("Note: 'history of trains' matches product2 best, but product2 is a")
    print("book — the category filter keeps it out of the ranked sub-collection.")
    print()


def demonstrate_spinql() -> None:
    """Section 2.3: SpinQL and its SQL translation."""
    print("=" * 72)
    print("Section 2.3 — SpinQL and its translation to SQL")
    print("=" * 72)
    source = """
    docs = PROJECT [$1 AS docID, $6 AS data] (
      JOIN INDEPENDENT [$1=$1] (
        SELECT [$2="category" and $3="toy"] (triples),
        SELECT [$2="description"] (triples) ) );
    """
    print("\nSpinQL program:")
    print(source)
    compiled = compile_script(source)
    print("Compiled PRA plan:")
    print(compiled.final_plan.describe())
    print("\nSQL translation (compare with the listing in the paper):")
    print(to_sql(compiled.final_plan, view_name="docs"))
    print()


def main() -> None:
    store = build_store()
    demonstrate_figure1(store)
    demonstrate_toy_strategy(store)
    demonstrate_spinql()


if __name__ == "__main__":
    main()
