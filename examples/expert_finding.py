#!/usr/bin/env python3
"""Expert finding: one of the heterogeneous search tasks the paper motivates.

The strategy has the same shape as the paper's auction scenario: rank
*documents* by the query, then traverse the ``authoredBy`` property to reach
*people*, merging the document-level evidence per person through the
probabilistic algebra.  Ground truth is known by construction (a person is an
expert on a topic if they authored documents about it), so the example also
reports effectiveness with the evaluation package.

Run with:  python examples/expert_finding.py [num_people] [num_documents]
"""

import sys

from repro import Engine
from repro.eval import Qrels, evaluate_strategy
from repro.workloads.experts import generate_expert_triples


def main() -> None:
    num_people = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    num_documents = int(sys.argv[2]) if len(sys.argv) > 2 else 500

    print(f"Generating {num_people} people, {num_documents} documents ...")
    workload = generate_expert_triples(num_people, num_documents, seed=77)
    engine = Engine.from_triples(workload.triples)

    strategy = engine.strategy("experts")
    print()
    print(strategy.explain())

    # one query per topic, phrased in the topic's distinctive vocabulary
    print("Top experts per topic query:")
    for topic in workload.topics[:4]:
        query = workload.query_for_topic(topic)
        run = strategy.execute(query=query)
        true_experts = set(workload.experts_on(topic))
        print(f"\n  topic {topic}  (query: {query!r}, {len(true_experts)} true experts)")
        for person, probability in run.top(5):
            marker = "*" if person in true_experts else " "
            print(f"    {marker} {person:<10} p = {probability:.3f}")

    # effectiveness over all topics
    qrels = Qrels()
    for topic in workload.topics:
        query = workload.query_for_topic(topic)
        for person in workload.experts_on(topic):
            qrels.add(query, person, 1.0)
    report = evaluate_strategy(engine.executor, strategy.graph, qrels, cutoff=10)
    means = report.means()
    print("\nEffectiveness over all topic queries (ground truth by construction):")
    print(f"  queries           : {report.num_queries}")
    print(f"  precision@10      : {means['precision@10']:.3f}")
    print(f"  recall@10         : {means['recall@10']:.3f}")
    print(f"  MAP               : {means['average_precision']:.3f}")
    print(f"  nDCG@10           : {means['ndcg@10']:.3f}")
    print(f"  mean reciprocal rank: {means['reciprocal_rank']:.3f}")


if __name__ == "__main__":
    main()
