#!/usr/bin/env python3
"""The real-world scenario (Section 3, Figure 3): rank auction lots.

The script generates a synthetic auction graph (a scaled-down stand-in for
the paper's 8M-lot customer database), builds the Figure 3 strategy through
the engine facade — rank lots by their own description and by the
description of the auction they belong to, mixed with weights — and replays
a small query workload with :meth:`~repro.engine.query.Query.execute_many`,
printing per-query latency and the requests-per-day extrapolation that
corresponds to the paper's production numbers (150,000 requests/day at
~150 ms).

Run with:  python examples/auction_search.py [num_lots] [num_queries]
"""

import sys

from repro import Engine
from repro.bench.harness import LatencyStats, throughput_per_day
from repro.workloads import generate_auction_triples, generate_queries


def main() -> None:
    num_lots = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    num_queries = int(sys.argv[2]) if len(sys.argv) > 2 else 20

    print(f"Generating an auction graph with {num_lots} lots ...")
    workload = generate_auction_triples(num_lots, seed=37)
    print(
        f"  {workload.num_lots} lots in {workload.num_auctions} auctions, "
        f"{len(workload.triples)} triples"
    )

    engine = Engine.from_triples(workload.triples)
    strategy = engine.strategy("auction", lot_weight=0.7, auction_weight=0.3)
    print()
    print(strategy.explain())

    queries = generate_queries(workload.vocabulary, num_queries, terms_per_query=3, seed=5)

    # the first query is "cold": it builds both on-demand indexes
    first_query = queries.queries[0]
    cold_run = strategy.execute(query=first_query)
    print(f"Cold query ({first_query!r}): {cold_run.elapsed_seconds * 1000:.1f} ms "
          "(builds two on-demand inverted indexes)")

    runs = strategy.execute_many([{"query": query} for query in queries.queries[1:]])
    samples = [run.elapsed_seconds * 1000.0 for run in runs]
    stats = LatencyStats(samples)

    print(f"\nHot queries ({len(samples)}):")
    print(f"  mean   {stats.mean_ms:8.1f} ms")
    print(f"  median {stats.median_ms:8.1f} ms")
    print(f"  p95    {stats.p95_ms:8.1f} ms")
    print(
        "  sustainable throughput at this latency: "
        f"{throughput_per_day(stats.mean_ms):,.0f} requests/day "
        "(paper: 150,000/day at ~150 ms on one VM)"
    )

    print("\nSample result for the last query:")
    last_run = runs[-1]
    for node, probability in last_run.top(5):
        auction = workload.lot_auction[node]
        print(f"  {node:<10} p = {probability:.3f}   (in {auction})")


if __name__ == "__main__":
    main()
