#!/usr/bin/env python3
"""A tour of SpinQL: every operator, its PRA plan and its SQL translation.

SpinQL is the paper's DSL for the probabilistic relational algebra
(Section 2.3).  This example builds a small uncertain triple store (some
triples carry extraction confidences below 1.0) behind an engine session and
walks through each operator: selection, projection with duplicate merging,
independent join, weighted disjoint union, subtraction, the relational Bayes
operator and the TRAVERSE convenience form.  Each program is shown through
``Query.explain()`` (raw plan, optimized plan, SQL) and then executed.

Run with:  python examples/spinql_tour.py
"""

from repro import Engine, connect


def show(title: str, source: str, engine: Engine) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)
    query = engine.spinql(source)
    print(query.explain())
    result = query.execute()
    print("\nResult:")
    print(result.relation.to_text(max_rows=8))
    print()


def build_engine() -> Engine:
    return connect().load_triples(
        [
            # certain facts
            ("lot1", "type", "lot"),
            ("lot2", "type", "lot"),
            ("lot3", "type", "lot"),
            ("lot1", "hasAuction", "auction1"),
            ("lot2", "hasAuction", "auction1"),
            ("lot3", "hasAuction", "auction2"),
            # uncertain facts, e.g. produced by confidence-based extraction
            ("lot1", "material", "oak", 0.9),
            ("lot2", "material", "oak", 0.4),
            ("lot3", "material", "bronze", 0.8),
            ("lot1", "style", "antique", 0.7),
            ("lot3", "style", "antique", 0.3),
        ]
    )


def main() -> None:
    engine = build_engine()

    show(
        "SELECT — uncertain facts keep their probabilities",
        'oak_lots = SELECT [$2="material" and $3="oak"] (triples);',
        engine,
    )

    show(
        "PROJECT — duplicate subjects merge under an assumption",
        'antique_or_oak = PROJECT [$1 AS lot] ('
        ' SELECT [$2="material" and $3="oak"] (triples));',
        engine,
    )

    show(
        "JOIN INDEPENDENT — probabilities multiply (the paper's docs view)",
        """
        oak_antiques = PROJECT [$1 AS lot] (
          JOIN INDEPENDENT [$1=$1] (
            SELECT [$2="material" and $3="oak"] (triples),
            SELECT [$2="style" and $3="antique"] (triples) ) );
        """,
        engine,
    )

    show(
        "WEIGHT + UNITE DISJOINT — the Mix block's linear combination",
        """
        oak = PROJECT [$1 AS lot] (SELECT [$2="material" and $3="oak"] (triples));
        antique = PROJECT [$1 AS lot] (SELECT [$2="style" and $3="antique"] (triples));
        mixed = UNITE DISJOINT (WEIGHT [0.7] (oak), WEIGHT [0.3] (antique));
        """,
        engine,
    )

    show(
        "SUBTRACT — lots that are oak but (probably) not antique",
        """
        oak = PROJECT [$1 AS lot] (SELECT [$2="material" and $3="oak"] (triples));
        antique = PROJECT [$1 AS lot] (SELECT [$2="style" and $3="antique"] (triples));
        oak_not_antique = SUBTRACT (oak, antique);
        """,
        engine,
    )

    show(
        "BAYES — normalise into a probability distribution over lots",
        """
        oak = PROJECT [$1 AS lot] (SELECT [$2="material" and $3="oak"] (triples));
        distribution = BAYES [] (oak);
        """,
        engine,
    )

    show(
        "TRAVERSE — follow hasAuction from ranked lots (probabilities propagate)",
        """
        oak = PROJECT [$1 AS lot] (SELECT [$2="material" and $3="oak"] (triples));
        auctions = TRAVERSE ['hasAuction'] (oak);
        """,
        engine,
    )

    # parameterized TRAVERSE: one compiled plan, many seed sets — the pattern
    # behind the engine's plan cache
    print("=" * 72)
    print("Parameterized TRAVERSE — one plan, many bindings")
    print("=" * 72)
    hop = engine.spinql("auctions = TRAVERSE ['hasAuction'] (seeds);", seeds=[])
    for seeds in (["lot1"], ["lot2", "lot3"], [("lot1", 0.5)]):
        result = hop.execute(seeds=seeds)
        print(f"  seeds={seeds!r:<24} -> {result.value_rows()}")
    stats = engine.plan_cache.statistics
    print(f"  plan cache: {stats.hits} hits / {stats.misses} misses")


if __name__ == "__main__":
    main()
