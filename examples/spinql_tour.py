#!/usr/bin/env python3
"""A tour of SpinQL: every operator, its PRA plan and its SQL translation.

SpinQL is the paper's DSL for the probabilistic relational algebra
(Section 2.3).  This example builds a small uncertain triple store (some
triples carry extraction confidences below 1.0) and walks through each
operator: selection, projection with duplicate merging, independent join,
weighted disjoint union, subtraction, the relational Bayes operator and the
TRAVERSE convenience form.

Run with:  python examples/spinql_tour.py
"""

from repro.spinql import compile_script, evaluate, to_sql
from repro.triples import TripleStore


def show(title: str, source: str, store: TripleStore) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(source.strip())
    compiled = compile_script(source)
    print("\nPRA plan:")
    print(compiled.final_plan.describe())
    print("\nSQL translation:")
    print(to_sql(compiled.final_plan))
    result = evaluate(source, store.database)
    print("\nResult:")
    print(result.relation.to_text(max_rows=8))
    print()


def build_store() -> TripleStore:
    store = TripleStore()
    store.add_all(
        [
            # certain facts
            ("lot1", "type", "lot"),
            ("lot2", "type", "lot"),
            ("lot3", "type", "lot"),
            ("lot1", "hasAuction", "auction1"),
            ("lot2", "hasAuction", "auction1"),
            ("lot3", "hasAuction", "auction2"),
            # uncertain facts, e.g. produced by confidence-based extraction
            ("lot1", "material", "oak", 0.9),
            ("lot2", "material", "oak", 0.4),
            ("lot3", "material", "bronze", 0.8),
            ("lot1", "style", "antique", 0.7),
            ("lot3", "style", "antique", 0.3),
        ]
    )
    store.load()
    return store


def main() -> None:
    store = build_store()

    show(
        "SELECT — uncertain facts keep their probabilities",
        'oak_lots = SELECT [$2="material" and $3="oak"] (triples);',
        store,
    )

    show(
        "PROJECT — duplicate subjects merge under an assumption",
        'antique_or_oak = PROJECT [$1 AS lot] ('
        ' SELECT [$2="material" and $3="oak"] (triples));',
        store,
    )

    show(
        "JOIN INDEPENDENT — probabilities multiply (the paper's docs view)",
        """
        oak_antiques = PROJECT [$1 AS lot] (
          JOIN INDEPENDENT [$1=$1] (
            SELECT [$2="material" and $3="oak"] (triples),
            SELECT [$2="style" and $3="antique"] (triples) ) );
        """,
        store,
    )

    show(
        "WEIGHT + UNITE DISJOINT — the Mix block's linear combination",
        """
        oak = PROJECT [$1 AS lot] (SELECT [$2="material" and $3="oak"] (triples));
        antique = PROJECT [$1 AS lot] (SELECT [$2="style" and $3="antique"] (triples));
        mixed = UNITE DISJOINT (WEIGHT [0.7] (oak), WEIGHT [0.3] (antique));
        """,
        store,
    )

    show(
        "SUBTRACT — lots that are oak but (probably) not antique",
        """
        oak = PROJECT [$1 AS lot] (SELECT [$2="material" and $3="oak"] (triples));
        antique = PROJECT [$1 AS lot] (SELECT [$2="style" and $3="antique"] (triples));
        oak_not_antique = SUBTRACT (oak, antique);
        """,
        store,
    )

    show(
        "BAYES — normalise into a probability distribution over lots",
        """
        oak = PROJECT [$1 AS lot] (SELECT [$2="material" and $3="oak"] (triples));
        distribution = BAYES [] (oak);
        """,
        store,
    )

    show(
        "TRAVERSE — follow hasAuction from ranked lots (probabilities propagate)",
        """
        oak = PROJECT [$1 AS lot] (SELECT [$2="material" and $3="oak"] (triples));
        auctions = TRAVERSE ['hasAuction'] (oak);
        """,
        store,
    )


if __name__ == "__main__":
    main()
