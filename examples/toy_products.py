#!/usr/bin/env python3
"""The toy scenario (Section 2, Figure 2) on a generated product catalog.

The script generates a synthetic product catalog as triples, then answers the
same information need three ways through one :class:`~repro.engine.Engine`
and checks they agree:

* the **strategy** path: the Figure 2 block graph (``engine.strategy``);
* the **SpinQL** path: the sub-collection filter written in SpinQL
  (``engine.spinql``), its SQL translation printed, and keyword search run
  over the resulting docs view (``engine.search``);
* the **SQL-view** path: the docs view registered in the database and the
  paper's BM25 pipeline (the view chain of Section 2.1) run over it with the
  faithful relational statistics builder.

Run with:  python examples/toy_products.py [num_products]
"""

import sys

from repro import Engine
from repro.workloads import generate_product_triples

SPINQL_DOCS = """
docs = PROJECT [$1 AS docID, $6 AS data] (
  JOIN INDEPENDENT [$1=$1] (
    SELECT [$2="category" and $3="toy"] (triples),
    SELECT [$2="description"] (triples) ) );
"""


def main() -> None:
    num_products = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    print(f"Generating a catalog of {num_products} products ...")
    workload = generate_product_triples(num_products, seed=21)
    engine = Engine.from_triples(workload.triples)

    toy_products = workload.products_in_category("toy")
    print(f"  {len(workload.triples)} triples, {len(toy_products)} products in category 'toy'")

    # the query: the first three description terms of some toy product
    target = sorted(toy_products)[0]
    query = " ".join(workload.descriptions[target].split()[:3])
    print(f"  query: {query!r} (taken from {target})\n")

    # -- path 1: the strategy ------------------------------------------------------
    run = engine.strategy("toy", query=query, category="toy").execute()
    strategy_top = run.top(10)
    print("Strategy path (Figure 2):")
    for node, probability in strategy_top[:5]:
        print(f"    {node:<12} p = {probability:.3f}")
    print(f"    elapsed: {run.elapsed_seconds * 1000:.1f} ms")
    timings = ", ".join(f"{k}={v * 1000:.1f}ms" for k, v in run.block_timings.items())
    print("    per-block: " + timings)
    print()

    # -- path 2: SpinQL -------------------------------------------------------------
    print("SpinQL path (Section 2.3):")
    docs_query = engine.spinql(SPINQL_DOCS)
    docs = docs_query.execute()
    print(f"    the docs view holds {docs.num_rows} toy descriptions")
    engine.create_table("spinql_docs", docs.relation, replace=True)
    spinql_top = [doc for doc, _ in engine.search("spinql_docs", query).top(10)]
    print(f"    top-5 by BM25 over that view: {spinql_top[:5]}")
    print()

    # -- path 3: the SQL view chain of Section 2.1 ----------------------------------
    print("SQL-view path (Section 2.1, relational statistics builder):")
    engine.store.register_docs_view(
        "docs_sql",
        filter_property="category",
        filter_value="toy",
        text_property="description",
    )
    sql_top = [doc for doc, _ in engine.search("docs_sql", query, pipeline="relational").top(10)]
    print(f"    top-5: {sql_top[:5]}")
    print()

    # -- agreement -------------------------------------------------------------------
    strategy_ids = [node for node, _ in strategy_top]
    agreement = strategy_ids[:5] == spinql_top[:5] == sql_top[:5]
    print(f"All three paths agree on the top-5: {agreement}")
    in_category = all(node in toy_products for node in strategy_ids)
    print(f"Every result is a toy product (category filter respected): {in_category}")


if __name__ == "__main__":
    main()
