"""Exception hierarchy shared by every subsystem of the library.

Every error raised by the library derives from :class:`ReproError`, so that
applications embedding the engine can catch a single base class.  More
specific subclasses mirror the subsystems described in DESIGN.md: the
relational engine, the text-analysis stack, the IR layer, the triple store,
the probabilistic relational algebra, the SpinQL compiler and the strategy
layer.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class SchemaError(ReproError):
    """A relation was constructed or used with an inconsistent schema."""


class ColumnError(ReproError):
    """A column was referenced that does not exist, or has the wrong type."""


class TypeMismatchError(ReproError):
    """An expression combined values of incompatible data types."""


class CatalogError(ReproError):
    """A table or view name could not be resolved, or already exists."""


class ExpressionError(ReproError):
    """An expression tree is malformed or cannot be evaluated."""


class PlanError(ReproError):
    """A logical plan is malformed or cannot be executed."""


class FunctionError(ReproError):
    """A user-defined function is unknown or was called incorrectly."""


class TextAnalysisError(ReproError):
    """The tokenizer or a stemmer was configured incorrectly."""


class UnknownLanguageError(TextAnalysisError):
    """A stemmer was requested for a language that is not registered."""


class IndexingError(ReproError):
    """An inverted index could not be built for the given input relation."""


class RankingError(ReproError):
    """A ranking model was configured or invoked incorrectly."""


class TripleStoreError(ReproError):
    """The triple store was loaded or queried incorrectly."""


class PartitioningError(TripleStoreError):
    """A vertical-partitioning strategy could not be applied."""


class ProbabilityError(ReproError):
    """A probability value or combination rule is invalid."""


class PRAError(ReproError):
    """A probabilistic-relational-algebra plan is malformed."""


class SpinQLError(ReproError):
    """Base class for SpinQL front-end errors."""


class SpinQLSyntaxError(SpinQLError):
    """The SpinQL source text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None) -> None:
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SpinQLCompileError(SpinQLError):
    """The SpinQL AST could not be compiled into a PRA plan."""


class StrategyError(ReproError):
    """A search strategy graph is malformed."""


class BlockError(StrategyError):
    """A strategy block was configured incorrectly."""


class PortError(StrategyError):
    """Two strategy ports with incompatible kinds were connected."""


class WorkloadError(ReproError):
    """A synthetic workload generator received invalid parameters."""


class EngineError(ReproError):
    """The engine facade was used incorrectly (bad binding, malformed chain)."""


class AnalysisError(ReproError):
    """A plan failed static verification.

    Raised by :meth:`repro.analysis.AnalysisReport.raise_if_errors` (and by
    surfaces built on it, such as the serving router's pre-dispatch gate).
    Carries the error-severity diagnostics so callers can render structured
    output instead of one flattened message.
    """

    def __init__(self, message: str, diagnostics: "tuple | list | None" = None) -> None:
        super().__init__(message)
        self.diagnostics = tuple(diagnostics or ())


class AnalysisWarning(Warning):
    """Warning category for non-fatal findings of the static plan verifier."""


class StorageError(ReproError):
    """A snapshot could not be written or read (missing files, bad manifest)."""

    def __init__(self, message: str, path: "str | None" = None) -> None:
        if path is not None:
            message = f"{message} (path: {path})"
        super().__init__(message)
        self.path = path


class SnapshotVersionError(StorageError):
    """A snapshot was written by an incompatible format version.

    Raised with a "rebuild or upgrade" hint: the data is not corrupt, it just
    needs to be re-saved by the current library version (or read by the one
    that wrote it).
    """
