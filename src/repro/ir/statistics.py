"""Collection statistics: the materialised views of the paper's BM25 listing.

Section 2.1 derives keyword search from a ``docs(docID, data)`` table through
a chain of views::

    term_doc  — stemmed, lower-cased (term, docID) pairs from ``tokenize``
    doc_len   — document lengths
    termdict  — distinct terms numbered with ``row_number()``
    tf        — integer term frequencies per (termID, docID)
    idf       — Robertson/Sparck-Jones inverse document frequency per termID

Two builders produce these statistics:

* :class:`RelationalStatisticsBuilder` constructs the *literal* logical plans
  (the reproduction's equivalent of the CREATE VIEW statements) and executes
  them through the database, exercising the on-demand materialization cache —
  this is the faithful, paper-shaped path;
* :func:`build_statistics` computes the same numbers in a single vectorised
  pass over the documents — the fast path used for larger synthetic
  collections.  Tests assert that both paths produce identical statistics.

The resulting :class:`CollectionStatistics` is the input of every ranking
model in :mod:`repro.ir.ranking`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import IndexingError
from repro.relational.algebra import (
    Aggregate,
    AggregateSpec,
    Distinct,
    Join,
    LogicalPlan,
    Project,
    Scan,
    TableFunctionScan,
)
from repro.relational.column import Column, DataType
from repro.relational.database import Database
from repro.relational.expressions import FunctionCall, col
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.text.analyzers import Analyzer, StandardAnalyzer


@dataclass
class CollectionStatistics:
    """Per-collection statistics required by the ranking models.

    Documents are identified both by their original identifier (``doc_ids``)
    and by a dense internal index (0..num_docs-1) used in the posting arrays.
    """

    doc_ids: list[Any]
    doc_lengths: np.ndarray
    term_ids: dict[str, int]
    postings: dict[int, tuple[np.ndarray, np.ndarray]] = field(repr=False)
    document_frequency: dict[int, int]
    total_terms: int

    # -- derived quantities --------------------------------------------------

    @property
    def num_docs(self) -> int:
        return len(self.doc_ids)

    @property
    def accumulator_size(self) -> int:
        """How many dense document slots the posting arrays index into.

        Equal to :attr:`num_docs` here; the sharded view overrides
        ``num_docs`` to the *global* count (ranking formulas need it) while
        keeping this local, so per-shard scoring arrays stay O(shard).
        """
        return len(self.doc_ids)

    @property
    def num_terms(self) -> int:
        return len(self.term_ids)

    def doc_positions(self) -> dict[Any, int]:
        """``docID -> dense index`` for the posting arrays, built once."""
        cache = getattr(self, "_doc_position_cache", None)
        if cache is None:
            cache = {doc_id: position for position, doc_id in enumerate(self.doc_ids)}
            self._doc_position_cache = cache
        return cache

    @property
    def average_doc_length(self) -> float:
        if self.num_docs == 0:
            return 0.0
        return float(self.doc_lengths.mean())

    def term_id(self, term: str) -> int | None:
        """Return the internal term identifier of ``term`` or ``None`` if absent."""
        return self.term_ids.get(term)

    def postings_for(self, term: str) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(doc_indices, frequencies)`` for ``term`` (empty arrays if absent)."""
        term_id = self.term_ids.get(term)
        if term_id is None:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        return self.postings[term_id]

    def df(self, term: str) -> int:
        """Return the document frequency of ``term`` (0 if absent)."""
        term_id = self.term_ids.get(term)
        if term_id is None:
            return 0
        return self.document_frequency[term_id]

    def robertson_idf(self, term: str) -> float:
        """Robertson/Sparck-Jones IDF: ``log((N - df + 0.5) / (df + 0.5))``.

        This is the formula of the paper's ``idf`` view.  It can be negative
        for terms occurring in more than half the documents; the BM25 model
        keeps that behaviour to stay faithful to the listing.
        """
        df = self.df(term)
        if df == 0:
            return 0.0
        n = self.num_docs
        return float(np.log((n - df + 0.5) / (df + 0.5)))

    def smoothed_idf(self, term: str) -> float:
        """Plain smoothed IDF ``log(1 + N / df)`` used by the TF-IDF model."""
        df = self.df(term)
        if df == 0:
            return 0.0
        return float(np.log(1.0 + self.num_docs / df))

    def collection_frequency(self, term: str) -> int:
        """Total number of occurrences of ``term`` in the collection."""
        term_id = self.term_ids.get(term)
        if term_id is None:
            return 0
        _, frequencies = self.postings[term_id]
        return int(frequencies.sum())

    # -- persistence -------------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Serialize the statistics (postings as concatenated doc/tf arrays)."""
        from repro.storage.index_io import save_statistics

        return save_statistics(self, path)

    @classmethod
    def open(cls, path: str | Path, *, mmap: bool = True) -> "CollectionStatistics":
        """Open a statistics snapshot; posting arrays come back as memmap slices."""
        from repro.storage.index_io import open_statistics

        return open_statistics(path, mmap=mmap)

    # -- relation views ----------------------------------------------------------

    def doc_len_relation(self) -> Relation:
        """The ``doc_len(docID, len)`` view as a relation."""
        schema = Schema([Field("docID", _dtype_of(self.doc_ids)), Field("len", DataType.INT)])
        return Relation(
            schema,
            [
                Column(self.doc_ids, schema.dtype_of("docID")),
                Column(self.doc_lengths.astype(np.int64), DataType.INT),
            ],
        )

    def termdict_relation(self) -> Relation:
        """The ``termdict(termID, term)`` view as a relation."""
        terms = sorted(self.term_ids, key=lambda term: self.term_ids[term])
        ids = [self.term_ids[term] for term in terms]
        schema = Schema([Field("termID", DataType.INT), Field("term", DataType.STRING)])
        return Relation(schema, [Column(ids, DataType.INT), Column(terms, DataType.STRING)])

    def tf_relation(self) -> Relation:
        """The ``tf(termID, docID, tf)`` view as a relation (term-major order)."""
        term_column: list[int] = []
        doc_column: list[Any] = []
        tf_column: list[int] = []
        for term_id in sorted(self.postings):
            doc_indices, frequencies = self.postings[term_id]
            for doc_index, frequency in zip(doc_indices, frequencies):
                term_column.append(term_id)
                doc_column.append(self.doc_ids[doc_index])
                tf_column.append(int(frequency))
        schema = Schema(
            [
                Field("termID", DataType.INT),
                Field("docID", _dtype_of(self.doc_ids)),
                Field("tf", DataType.INT),
            ]
        )
        return Relation(
            schema,
            [
                Column(term_column, DataType.INT),
                Column(doc_column, schema.dtype_of("docID")),
                Column(tf_column, DataType.INT),
            ],
        )

    def idf_relation(self) -> Relation:
        """The ``idf(termID, idf)`` view as a relation (Robertson IDF)."""
        terms = sorted(self.term_ids, key=lambda term: self.term_ids[term])
        ids = [self.term_ids[term] for term in terms]
        idfs = [self.robertson_idf(term) for term in terms]
        schema = Schema([Field("termID", DataType.INT), Field("idf", DataType.FLOAT)])
        return Relation(schema, [Column(ids, DataType.INT), Column(idfs, DataType.FLOAT)])


def _dtype_of(values: Sequence[Any]) -> DataType:
    if not values:
        return DataType.INT
    return DataType.of_value(values[0])


# ---------------------------------------------------------------------------
# Sharded collections: split, global reduce, shard-local scoring views
# ---------------------------------------------------------------------------


@dataclass
class GlobalStatistics:
    """Collection-wide quantities reduced across shard-local statistics.

    Per-shard ranking needs the *global* document count, document/collection
    frequencies and total term count to produce scores bit-identical to the
    unsharded engine; everything here is an exact integer reduce (sums of
    int64 counts), so merge order can never perturb a score.
    """

    num_docs: int
    total_terms: int
    total_doc_length: int
    document_frequency: dict[str, int]
    collection_frequency: dict[str, int]

    @classmethod
    def reduce(cls, shard_statistics: Sequence["CollectionStatistics"]) -> "GlobalStatistics":
        """Merge shard-local statistics into the global view (df/cf/N sums)."""
        num_docs = 0
        total_terms = 0
        total_doc_length = 0
        document_frequency: dict[str, int] = {}
        collection_frequency: dict[str, int] = {}
        for statistics in shard_statistics:
            num_docs += statistics.num_docs
            total_terms += statistics.total_terms
            total_doc_length += int(statistics.doc_lengths.sum()) if statistics.num_docs else 0
            for term, term_id in statistics.term_ids.items():
                document_frequency[term] = (
                    document_frequency.get(term, 0) + statistics.document_frequency[term_id]
                )
                collection_frequency[term] = (
                    collection_frequency.get(term, 0) + statistics.collection_frequency(term)
                )
        return cls(
            num_docs=num_docs,
            total_terms=total_terms,
            total_doc_length=total_doc_length,
            document_frequency=document_frequency,
            collection_frequency=collection_frequency,
        )

    @classmethod
    def merge(cls, parts: Sequence["GlobalStatistics"]) -> "GlobalStatistics":
        """Reduce per-shard summaries (exact integer sums, order-insensitive)."""
        document_frequency: dict[str, int] = {}
        collection_frequency: dict[str, int] = {}
        for part in parts:
            for term, count in part.document_frequency.items():
                document_frequency[term] = document_frequency.get(term, 0) + count
            for term, count in part.collection_frequency.items():
                collection_frequency[term] = collection_frequency.get(term, 0) + count
        return cls(
            num_docs=sum(part.num_docs for part in parts),
            total_terms=sum(part.total_terms for part in parts),
            total_doc_length=sum(part.total_doc_length for part in parts),
            document_frequency=document_frequency,
            collection_frequency=collection_frequency,
        )

    def to_payload(self) -> dict[str, Any]:
        """A JSON/pickle-friendly form (sent from router to pool workers)."""
        return {
            "num_docs": self.num_docs,
            "total_terms": self.total_terms,
            "total_doc_length": self.total_doc_length,
            "document_frequency": self.document_frequency,
            "collection_frequency": self.collection_frequency,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "GlobalStatistics":
        return cls(
            num_docs=int(payload["num_docs"]),
            total_terms=int(payload["total_terms"]),
            total_doc_length=int(payload["total_doc_length"]),
            document_frequency=dict(payload["document_frequency"]),
            collection_frequency=dict(payload["collection_frequency"]),
        )


class ShardCollectionStatistics(CollectionStatistics):
    """Shard-local postings scored against global collection statistics.

    ``doc_ids``/``doc_lengths``/``postings`` describe only this shard's
    documents (indices are shard-local), while every collection-wide
    quantity a ranking model reads — ``num_docs``, ``average_doc_length``,
    ``df``, ``collection_frequency``, ``total_terms`` — comes from the
    :class:`GlobalStatistics` reduce.  A model scoring a shard through this
    view therefore computes, document by document, exactly the numbers the
    unsharded engine computes: the per-term inputs (idf, avgdl, background
    probabilities) are scalar-identical and the per-document arithmetic is
    element-wise.
    """

    def __init__(self, local: CollectionStatistics, global_statistics: GlobalStatistics):
        super().__init__(
            doc_ids=local.doc_ids,
            doc_lengths=local.doc_lengths,
            term_ids=local.term_ids,
            postings=local.postings,
            document_frequency=local.document_frequency,
            total_terms=global_statistics.total_terms,
        )
        self.global_statistics = global_statistics

    @property
    def num_docs(self) -> int:  # type: ignore[override]
        return self.global_statistics.num_docs

    @property
    def local_num_docs(self) -> int:
        return len(self.doc_ids)

    @property
    def accumulator_size(self) -> int:  # type: ignore[override]
        """Scoring arrays stay O(shard): posting indices are shard-local."""
        return len(self.doc_ids)

    @property
    def average_doc_length(self) -> float:  # type: ignore[override]
        if self.global_statistics.num_docs == 0:
            return 0.0
        # identical to float(concatenated_lengths.mean()): the lengths are
        # int64, so every partial sum is exact and the single division matches
        return float(
            np.float64(self.global_statistics.total_doc_length)
            / np.float64(self.global_statistics.num_docs)
        )

    def df(self, term: str) -> int:
        return self.global_statistics.document_frequency.get(term, 0)

    def collection_frequency(self, term: str) -> int:
        return self.global_statistics.collection_frequency.get(term, 0)


def split_statistics(
    statistics: CollectionStatistics, shard_doc_indices: Sequence[np.ndarray]
) -> list[CollectionStatistics]:
    """Split statistics into shard-local pieces by document partition.

    ``shard_doc_indices[s]`` holds the (ascending) global document indices
    assigned to shard ``s`` — the same per-table row partition the sharded
    snapshot layout uses for the docs table, so shard-local document index
    ``i`` corresponds to global index ``shard_doc_indices[s][i]``.  Term ids
    keep their global numbering; per-term postings are sliced to each
    shard's documents and remapped to shard-local indices.
    """
    num_docs = statistics.num_docs
    assignment = np.full(num_docs, -1, dtype=np.int64)
    local_index = np.zeros(num_docs, dtype=np.int64)
    for shard, indices in enumerate(shard_doc_indices):
        assignment[indices] = shard
        local_index[indices] = np.arange(len(indices), dtype=np.int64)
    if num_docs and np.any(assignment < 0):
        raise IndexingError("shard document partition does not cover every document")

    pieces: list[CollectionStatistics] = []
    for shard, indices in enumerate(shard_doc_indices):
        postings: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        term_ids: dict[str, int] = {}
        document_frequency: dict[int, int] = {}
        for term, term_id in statistics.term_ids.items():
            doc_indices, frequencies = statistics.postings[term_id]
            keep = assignment[doc_indices] == shard
            if not np.any(keep):
                continue
            term_ids[term] = term_id
            postings[term_id] = (
                local_index[doc_indices[keep]],
                np.asarray(frequencies[keep], dtype=np.int64),
            )
            document_frequency[term_id] = int(np.count_nonzero(keep))
        lengths = statistics.doc_lengths[indices] if len(indices) else np.empty(0, np.int64)
        pieces.append(
            CollectionStatistics(
                doc_ids=[statistics.doc_ids[index] for index in indices],
                doc_lengths=np.asarray(lengths, dtype=np.int64),
                term_ids=term_ids,
                postings=postings,
                document_frequency=document_frequency,
                total_terms=int(np.asarray(lengths, dtype=np.int64).sum()) if len(indices) else 0,
            )
        )
    return pieces


# ---------------------------------------------------------------------------
# Fast vectorised builder
# ---------------------------------------------------------------------------


def build_statistics(
    documents: Sequence[tuple[Any, str]],
    analyzer: Analyzer | None = None,
) -> CollectionStatistics:
    """Compute collection statistics in one pass over ``(docID, text)`` pairs."""
    analyzer = analyzer if analyzer is not None else StandardAnalyzer()
    doc_ids: list[Any] = []
    doc_lengths: list[int] = []
    term_ids: dict[str, int] = {}
    # per-term dict of doc_index -> frequency, converted to arrays at the end
    term_postings: dict[int, dict[int, int]] = {}

    for doc_index, (doc_id, text) in enumerate(documents):
        terms = analyzer.analyze(text)
        doc_ids.append(doc_id)
        doc_lengths.append(len(terms))
        for term in terms:
            term_id = term_ids.setdefault(term, len(term_ids) + 1)
            postings = term_postings.setdefault(term_id, {})
            postings[doc_index] = postings.get(doc_index, 0) + 1

    postings_arrays: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    document_frequency: dict[int, int] = {}
    for term_id, doc_map in term_postings.items():
        doc_indices = np.fromiter(doc_map.keys(), dtype=np.int64, count=len(doc_map))
        frequencies = np.fromiter(doc_map.values(), dtype=np.int64, count=len(doc_map))
        order = np.argsort(doc_indices, kind="stable")
        postings_arrays[term_id] = (doc_indices[order], frequencies[order])
        document_frequency[term_id] = len(doc_map)

    return CollectionStatistics(
        doc_ids=doc_ids,
        doc_lengths=np.asarray(doc_lengths, dtype=np.int64),
        term_ids=term_ids,
        postings=postings_arrays,
        document_frequency=document_frequency,
        total_terms=int(sum(doc_lengths)),
    )


def statistics_from_relation(
    docs: Relation,
    analyzer: Analyzer | None = None,
    *,
    id_column: str = "docID",
    text_column: str = "data",
) -> CollectionStatistics:
    """Build statistics from a ``docs(docID, data)`` relation."""
    if id_column not in docs.schema or text_column not in docs.schema:
        raise IndexingError(
            f"docs relation must have columns {id_column!r} and {text_column!r}, "
            f"got {docs.schema.names}"
        )
    ids = docs.column(id_column).to_list()
    texts = docs.column(text_column).to_list()
    return build_statistics(list(zip(ids, texts)), analyzer)


# ---------------------------------------------------------------------------
# Faithful relational builder (the paper's CREATE VIEW chain)
# ---------------------------------------------------------------------------


class RelationalStatisticsBuilder:
    """Builds the paper's statistics views as logical plans over a database.

    The builder registers the views ``<prefix>term_doc``, ``<prefix>doc_len``,
    ``<prefix>termdict``, ``<prefix>tf`` and ``<prefix>idf`` in the database
    catalog, each defined exactly as in Section 2.1, and can materialise them
    through the database's on-demand cache (so the first materialisation is
    "cold" and later ones are "hot").
    """

    def __init__(
        self,
        database: Database,
        docs_source: str,
        *,
        language: str = "english",
        prefix: str = "",
    ):
        self.database = database
        self.docs_source = docs_source
        self.language = language
        self.prefix = prefix

    # -- view names --------------------------------------------------------------

    def _name(self, base: str) -> str:
        return f"{self.prefix}{base}"

    @property
    def term_doc_view(self) -> str:
        return self._name("term_doc")

    @property
    def doc_len_view(self) -> str:
        return self._name("doc_len")

    @property
    def termdict_view(self) -> str:
        return self._name("termdict")

    @property
    def tf_view(self) -> str:
        return self._name("tf")

    @property
    def idf_view(self) -> str:
        return self._name("idf")

    # -- plan construction ----------------------------------------------------------

    def term_doc_plan(self) -> LogicalPlan:
        """``SELECT stem(lcase(token), 'sb-<lang>') AS term, docID FROM tokenize(docs)``."""
        tokenized = TableFunctionScan(Scan(self.docs_source), "tokenize")
        stemmed = Project(
            tokenized,
            [
                (
                    "term",
                    FunctionCall(
                        "stem",
                        [FunctionCall("lcase", [col("token")]), f"sb-{self.language}"],
                    ),
                ),
                ("docID", col("docID")),
            ],
        )
        return stemmed

    def doc_len_plan(self) -> LogicalPlan:
        """``SELECT docID, count(*) AS len FROM term_doc GROUP BY docID``."""
        return Aggregate(
            Scan(self.term_doc_view),
            keys=["docID"],
            aggregates=[AggregateSpec("count", None, "len")],
        )

    def termdict_plan(self) -> LogicalPlan:
        """Distinct terms; termIDs are assigned during materialisation."""
        return Distinct(Project(Scan(self.term_doc_view), [("term", col("term"))]))

    def tf_plan(self) -> LogicalPlan:
        """``SELECT termID, docID, count(*) AS tf FROM term_doc JOIN termdict GROUP BY ...``."""
        joined = Join(
            Scan(self.term_doc_view),
            Scan(self.termdict_view),
            conditions=[("term", "term")],
        )
        return Aggregate(
            joined,
            keys=["termID", "docID"],
            aggregates=[AggregateSpec("count", None, "tf")],
        )

    def idf_plan(self) -> LogicalPlan:
        """Robertson IDF per termID, computed from the ``tf`` view.

        The paper uses a correlated scalar subquery ``(SELECT count(*) FROM
        doc_len)``; the engine has no subqueries, so the document count is
        computed during materialisation and injected as a literal — the
        resulting relation is identical.
        """
        return Aggregate(
            Scan(self.tf_view),
            keys=["termID"],
            aggregates=[AggregateSpec("count", None, "df")],
        )

    # -- registration and materialisation ----------------------------------------------

    def register_views(self) -> None:
        """Register all statistics views in the database catalog.

        Re-registering an identical view definition is skipped so that
        repeated materialisations keep their cache entries (the "hot" path).
        """
        views = {
            self.term_doc_view: self.term_doc_plan(),
            self.doc_len_view: self.doc_len_plan(),
            self.termdict_view: self.termdict_plan(),
        }
        for name, plan in views.items():
            if self.database.catalog.has_view(name):
                existing = self.database.catalog.view(name)
                if existing.fingerprint() == plan.fingerprint():
                    continue
            self.database.create_view(name, plan, replace=True)

    def materialize(self) -> CollectionStatistics:
        """Materialise the view chain through the database and assemble statistics.

        Every intermediate relation passes through the database's
        materialization cache, so repeated calls are served from cache until a
        base table changes (the paper's hot/cold distinction).
        """
        self.register_views()
        term_doc = self.database.query(self.term_doc_view)
        doc_len = self.database.query(self.doc_len_view)
        distinct_terms = self.database.query(self.termdict_view)

        # Assign termIDs in first-seen order of the distinct-term relation,
        # mirroring the paper's row_number() over the distinct terms.
        term_ids = {
            term: position + 1
            for position, term in enumerate(distinct_terms.column("term").to_list())
        }

        doc_ids = doc_len.column("docID").to_list()
        doc_index = {doc_id: position for position, doc_id in enumerate(doc_ids)}
        lengths = np.asarray(doc_len.column("len").to_list(), dtype=np.int64)

        # Term frequencies from the term_doc relation (equivalent to the tf view).
        term_postings: dict[int, dict[int, int]] = {}
        terms = term_doc.column("term").to_list()
        docs = term_doc.column("docID").to_list()
        for term, doc_id in zip(terms, docs):
            term_id = term_ids[term]
            postings = term_postings.setdefault(term_id, {})
            position = doc_index[doc_id]
            postings[position] = postings.get(position, 0) + 1

        postings_arrays: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        document_frequency: dict[int, int] = {}
        for term_id, doc_map in term_postings.items():
            doc_indices = np.fromiter(doc_map.keys(), dtype=np.int64, count=len(doc_map))
            frequencies = np.fromiter(doc_map.values(), dtype=np.int64, count=len(doc_map))
            order = np.argsort(doc_indices, kind="stable")
            postings_arrays[term_id] = (doc_indices[order], frequencies[order])
            document_frequency[term_id] = len(doc_map)

        return CollectionStatistics(
            doc_ids=doc_ids,
            doc_lengths=lengths,
            term_ids=term_ids,
            postings=postings_arrays,
            document_frequency=document_frequency,
            total_terms=int(lengths.sum()),
        )

    def view_sql(self) -> dict[str, str]:
        """Return the CREATE VIEW SQL for every statistics view (documentation aid)."""
        from repro.relational.sqlgen import view_definition

        return {
            self.term_doc_view: view_definition(self.term_doc_view, self.term_doc_plan()),
            self.doc_len_view: view_definition(self.doc_len_view, self.doc_len_plan()),
            self.termdict_view: view_definition(self.termdict_view, self.termdict_plan()),
            self.tf_view: view_definition(self.tf_view, self.tf_plan()),
            self.idf_view: view_definition(self.idf_view, self.idf_plan()),
        }
