"""Result snippets and query-term highlighting.

A production search front-end (the paper's customer runs one on top of the
auction strategy) needs to show *why* a result matched: a short extract of
the document with the query terms highlighted.  This module generates such
snippets from raw document text without any pre-computed structures — in the
spirit of the platform, everything is derived on demand from the stored text
and the same analyzer the ranking used, so highlighting agrees with matching
(stemmed query terms highlight their inflected occurrences).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.text.analyzers import Analyzer, StandardAnalyzer
from repro.text.tokenizer import Tokenizer


@dataclass
class Snippet:
    """A generated snippet: the text fragment and the matched term positions."""

    text: str
    matched_terms: list[str]
    window_start: int
    window_end: int

    @property
    def num_matches(self) -> int:
        return len(self.matched_terms)


class SnippetGenerator:
    """Generates highlighted snippets for query/document pairs."""

    def __init__(
        self,
        analyzer: Analyzer | None = None,
        *,
        window_size: int = 20,
        highlight_prefix: str = "**",
        highlight_suffix: str = "**",
        ellipsis: str = "...",
    ):
        self.analyzer = analyzer if analyzer is not None else StandardAnalyzer()
        self.window_size = max(window_size, 1)
        self.highlight_prefix = highlight_prefix
        self.highlight_suffix = highlight_suffix
        self.ellipsis = ellipsis
        # raw tokens are needed to map analyzed terms back to surface forms
        self._raw_tokenizer = Tokenizer()

    # -- internals ----------------------------------------------------------------

    def _analyzed_token(self, token: str) -> str | None:
        analyzed = self.analyzer.analyze(token)
        return analyzed[0] if analyzed else None

    def _match_positions(self, tokens: list[str], query_terms: set[str]) -> list[int]:
        positions = []
        for position, token in enumerate(tokens):
            analyzed = self._analyzed_token(token)
            if analyzed is not None and analyzed in query_terms:
                positions.append(position)
        return positions

    def _best_window(self, positions: list[int], num_tokens: int) -> tuple[int, int]:
        """The window of ``window_size`` tokens covering the most matches."""
        if not positions:
            return 0, min(self.window_size, num_tokens)
        best_start, best_count = positions[0], 0
        for anchor in positions:
            start = max(0, anchor - self.window_size // 4)
            end = start + self.window_size
            count = sum(1 for p in positions if start <= p < end)
            if count > best_count:
                best_start, best_count = start, count
        return best_start, min(best_start + self.window_size, num_tokens)

    # -- public API ----------------------------------------------------------------

    def snippet(self, query: str, text: str) -> Snippet:
        """Return the best highlighted snippet of ``text`` for ``query``."""
        query_terms = set(self.analyzer.analyze_query(query))
        tokens = self._raw_tokenizer.tokenize(text)
        positions = self._match_positions(tokens, query_terms)
        start, end = self._best_window(positions, len(tokens))

        rendered: list[str] = []
        matched: list[str] = []
        position_set = set(positions)
        for position in range(start, end):
            token = tokens[position]
            if position in position_set:
                rendered.append(f"{self.highlight_prefix}{token}{self.highlight_suffix}")
                matched.append(token)
            else:
                rendered.append(token)
        text_fragment = " ".join(rendered)
        if start > 0:
            text_fragment = f"{self.ellipsis} {text_fragment}"
        if end < len(tokens):
            text_fragment = f"{text_fragment} {self.ellipsis}"
        return Snippet(
            text=text_fragment,
            matched_terms=matched,
            window_start=start,
            window_end=end,
        )

    def snippets_for_results(
        self,
        query: str,
        documents: dict,
        result_ids: list,
    ) -> dict:
        """Snippets for a ranked result list: ``{docID: Snippet}``.

        ``documents`` maps document identifiers to their raw text; identifiers
        missing from the mapping are skipped (e.g. results whose text lives in
        another property).
        """
        snippets = {}
        for doc_id in result_ids:
            text = documents.get(doc_id)
            if text is None:
                continue
            snippets[doc_id] = self.snippet(query, text)
        return snippets
