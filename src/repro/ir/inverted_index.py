"""On-demand inverted indexes and the Figure 1 demonstration.

Figure 1 of the paper shows that an inverted index *is* a relational table
``(term, doc, pos)`` and that term lookup *is* an inner join between a query
relation and that table.  This module provides:

* :class:`InvertedIndex` — a positional index built on demand from a
  ``docs(docID, data)`` relation (or any ``(docID, text)`` pairs) with a
  configurable analyzer, exposed both as posting lists and as the relational
  table of Figure 1b;
* :func:`term_lookup_join` — the literal "term look-up as a join" of the
  figure, implemented with the engine's join operator.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import IndexingError
from repro.relational.algebra import Join, Values
from repro.relational.column import Column, DataType
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.text.analyzers import Analyzer, StandardAnalyzer


class PackedPostings(Mapping):
    """Read-only postings backed by concatenated per-term arrays.

    This is how a snapshot-backed index keeps its postings: one doc-index
    array and one position array (both usually memmaps), sliced per term via
    an offsets array — ``posting_list()`` therefore slices the memmap instead
    of rebuilding anything.  The mapping interface matches the plain
    ``dict[str, list[(doc, pos)]]`` the in-memory index uses; mutation goes
    through :meth:`thaw` first.
    """

    __slots__ = ("_terms", "_slots", "_offsets", "_doc_indices", "_positions", "_doc_ids")

    def __init__(
        self,
        terms: Sequence[str],
        offsets: np.ndarray,
        doc_indices: np.ndarray,
        positions: np.ndarray,
        doc_ids: Sequence[Any],
    ):
        self._terms = list(terms)
        self._slots = {term: slot for slot, term in enumerate(self._terms)}
        self._offsets = offsets
        self._doc_indices = doc_indices
        self._positions = positions
        self._doc_ids = list(doc_ids)

    def __getitem__(self, term: str) -> list[tuple[Any, int]]:
        slot = self._slots[term]
        start, stop = int(self._offsets[slot]), int(self._offsets[slot + 1])
        doc_ids = self._doc_ids
        return [
            (doc_ids[int(doc_index)], int(position))
            for doc_index, position in zip(
                self._doc_indices[start:stop], self._positions[start:stop]
            )
        ]

    def __iter__(self):
        return iter(self._terms)

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: object) -> bool:
        return term in self._slots

    def thaw(self) -> dict[str, list[tuple[Any, int]]]:
        """Materialise every posting list into a plain mutable dictionary."""
        return {term: self[term] for term in self._terms}


class InvertedIndex:
    """A positional inverted index built on demand.

    The index maps each term to its posting list: the ``(document, position)``
    pairs at which the term occurs, exactly as in Figure 1a of the paper.
    """

    def __init__(self, analyzer: Analyzer | None = None):
        self.analyzer = analyzer if analyzer is not None else StandardAnalyzer()
        self._postings: Mapping[str, list[tuple[Any, int]]] = {}
        self._doc_ids: list[Any] = []
        self._doc_lengths: dict[Any, int] = {}

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_documents(
        cls,
        documents: Sequence[tuple[Any, str]],
        analyzer: Analyzer | None = None,
    ) -> "InvertedIndex":
        """Build an index from ``(docID, text)`` pairs."""
        index = cls(analyzer)
        for doc_id, text in documents:
            index.add_document(doc_id, text)
        return index

    @classmethod
    def from_relation(
        cls,
        docs: Relation,
        analyzer: Analyzer | None = None,
        *,
        id_column: str = "docID",
        text_column: str = "data",
    ) -> "InvertedIndex":
        """Build an index from a ``docs(docID, data)`` relation."""
        if id_column not in docs.schema or text_column not in docs.schema:
            raise IndexingError(
                f"docs relation must have columns {id_column!r} and {text_column!r}, "
                f"got {docs.schema.names}"
            )
        ids = docs.column(id_column).to_list()
        texts = docs.column(text_column).to_list()
        return cls.from_documents(list(zip(ids, texts)), analyzer)

    def add_document(self, doc_id: Any, text: str) -> None:
        """Add one document to the index."""
        if doc_id in self._doc_lengths:
            raise IndexingError(f"document {doc_id!r} was already indexed")
        if isinstance(self._postings, PackedPostings):
            # snapshot-backed postings are read-only; copy-on-write
            self._postings = self._postings.thaw()
        terms = self.analyzer.analyze(text)
        self._doc_ids.append(doc_id)
        self._doc_lengths[doc_id] = len(terms)
        for position, term in enumerate(terms):
            self._postings.setdefault(term, []).append((doc_id, position))

    @classmethod
    def from_packed(
        cls,
        postings: PackedPostings,
        doc_ids: Sequence[Any],
        doc_lengths: Sequence[int],
        analyzer: Analyzer | None = None,
    ) -> "InvertedIndex":
        """Assemble an index around snapshot-backed postings (see :mod:`repro.storage`)."""
        index = cls(analyzer)
        index._postings = postings
        index._doc_ids = list(doc_ids)
        index._doc_lengths = {
            doc_id: int(length) for doc_id, length in zip(index._doc_ids, doc_lengths)
        }
        return index

    # -- persistence -------------------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Serialize the index (postings as concatenated arrays plus term offsets)."""
        from repro.storage.index_io import save_inverted_index

        return save_inverted_index(self, path)

    @classmethod
    def open(
        cls, path: str | Path, *, analyzer: Analyzer | None = None, mmap: bool = True
    ) -> "InvertedIndex":
        """Open an index snapshot; ``posting_list`` then slices memmaps.

        Without an explicit ``analyzer`` the snapshot's recorded language
        rebuilds the standard analyzer, keeping query-time normalization
        consistent with how the documents were indexed.
        """
        from repro.storage.index_io import open_inverted_index

        return open_inverted_index(path, analyzer=analyzer, mmap=mmap)

    # -- lookup ----------------------------------------------------------------------

    @property
    def num_documents(self) -> int:
        return len(self._doc_ids)

    @property
    def vocabulary(self) -> list[str]:
        return sorted(self._postings)

    def posting_list(self, term: str) -> list[tuple[Any, int]]:
        """Return the ``(doc, pos)`` posting list of ``term`` (Figure 1a).

        ``term`` may be either raw query text or an already-normalized
        vocabulary term.  The raw spelling is tried first: stemming is not
        idempotent (e.g. Porter maps "agreed" to "agre" but re-stems "agre"
        to "agr"), so re-analyzing a vocabulary term can miss its postings.
        """
        postings = self._postings.get(term)
        if postings is None:
            postings = self._postings.get(self._normalize(term), [])
        return list(postings)

    def document_frequency(self, term: str) -> int:
        """Number of distinct documents containing ``term``."""
        return len({doc for doc, _ in self.posting_list(term)})

    def term_frequency(self, term: str, doc_id: Any) -> int:
        """Number of occurrences of ``term`` in document ``doc_id``."""
        return sum(1 for doc, _ in self.posting_list(term) if doc == doc_id)

    def doc_length(self, doc_id: Any) -> int:
        return self._doc_lengths.get(doc_id, 0)

    def matching_documents(self, terms: Sequence[str]) -> set[Any]:
        """Documents containing at least one of ``terms`` (disjunctive match)."""
        matches: set[Any] = set()
        for term in terms:
            matches.update(doc for doc, _ in self.posting_list(term))
        return matches

    def _normalize(self, term: str) -> str:
        analyzed = self.analyzer.analyze(term)
        return analyzed[0] if analyzed else term

    # -- relational form (Figure 1b) --------------------------------------------------

    def to_relation(self) -> Relation:
        """Return the index as the ``(term, doc, pos)`` relation of Figure 1b."""
        terms: list[str] = []
        docs: list[Any] = []
        positions: list[int] = []
        for term in sorted(self._postings):
            for doc_id, position in self._postings[term]:
                terms.append(term)
                docs.append(doc_id)
                positions.append(position)
        doc_dtype = DataType.of_value(docs[0]) if docs else DataType.INT
        schema = Schema(
            [
                Field("term", DataType.STRING),
                Field("doc", doc_dtype),
                Field("pos", DataType.INT),
            ]
        )
        return Relation(
            schema,
            [
                Column(np.asarray(terms, dtype=object), DataType.STRING),
                Column(docs, doc_dtype),
                Column(positions, DataType.INT),
            ],
        )


def query_terms_relation(terms: Sequence[str]) -> Relation:
    """Return a single-column ``(term)`` relation holding the query terms."""
    schema = Schema([Field("term", DataType.STRING)])
    return Relation(schema, [Column(list(terms), DataType.STRING)])


def term_lookup_join(
    database: Database,
    index_relation: Relation,
    query_terms: Sequence[str],
) -> Relation:
    """Figure 1b: term lookup as an inner join on ``term``.

    The query terms become a tiny relation which is joined against the
    term-doc table; the result lists every occurrence of every query term.
    """
    plan = Join(
        Values(query_terms_relation(list(query_terms)), label="query"),
        Values(index_relation, label="term_doc"),
        conditions=[("term", "term")],
    )
    return database.execute(plan, use_cache=False)
