"""Boolean / coordination-level matching baseline.

Structured search produces "certain answers from facts" (Section 2.3); the
boolean model is its unstructured analogue and serves as the simplest
baseline in the ranking-model comparison benchmark: a document scores the
number of distinct query terms it contains.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ir.ranking.base import RankingModel
from repro.ir.statistics import CollectionStatistics


class BooleanModel(RankingModel):
    """Coordination-level matching: score = number of distinct query terms present."""

    name = "boolean"

    def term_score(
        self,
        statistics: CollectionStatistics,
        term: str,
        doc_indices: np.ndarray,
        frequencies: np.ndarray,
    ) -> np.ndarray:
        return np.ones(len(doc_indices), dtype=np.float64)

    def term_upper_bound(self, statistics: CollectionStatistics, term: str) -> float:
        """Every contribution is exactly 1, so pruning is always available."""
        return 1.0

    def describe(self) -> dict[str, Any]:
        return {"model": self.name}
