"""Query-likelihood language model ranking (Dirichlet or Jelinek-Mercer).

Another "alternative ranking function" over the same statistics.  Scores are
log-probabilities of generating the query from the document's smoothed
language model; only documents containing at least one query term are
scored, consistent with the accumulator pattern shared by all models.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import RankingError
from repro.ir.ranking.base import RankingModel
from repro.ir.statistics import CollectionStatistics


class LanguageModel(RankingModel):
    """Query-likelihood ranking with Dirichlet or Jelinek-Mercer smoothing."""

    name = "lm"

    def __init__(self, smoothing: str = "dirichlet", mu: float = 2000.0, lam: float = 0.1):
        if smoothing not in ("dirichlet", "jelinek-mercer"):
            raise RankingError(
                f"unknown smoothing {smoothing!r}; use 'dirichlet' or 'jelinek-mercer'"
            )
        if mu <= 0:
            raise RankingError("mu must be positive")
        if not 0.0 < lam < 1.0:
            raise RankingError("lambda must lie in (0, 1)")
        self.smoothing = smoothing
        self.mu = mu
        self.lam = lam

    def term_score(
        self,
        statistics: CollectionStatistics,
        term: str,
        doc_indices: np.ndarray,
        frequencies: np.ndarray,
    ) -> np.ndarray:
        collection_frequency = statistics.collection_frequency(term)
        total_terms = max(statistics.total_terms, 1)
        background = collection_frequency / total_terms
        if background <= 0:
            return np.zeros(len(doc_indices), dtype=np.float64)
        tf = frequencies.astype(np.float64)
        lengths = statistics.doc_lengths[doc_indices].astype(np.float64)
        if self.smoothing == "dirichlet":
            probabilities = (tf + self.mu * background) / (lengths + self.mu)
        else:
            lengths_safe = np.where(lengths > 0, lengths, 1.0)
            probabilities = (1.0 - self.lam) * (tf / lengths_safe) + self.lam * background
        probabilities = np.clip(probabilities, 1e-12, None)
        # subtract the background log-probability so that absent terms contribute
        # zero, keeping the accumulator pattern (documents never seen keep score 0)
        return np.log(probabilities) - np.log(background)

    def describe(self) -> dict[str, Any]:
        return {
            "model": self.name,
            "smoothing": self.smoothing,
            "mu": self.mu,
            "lambda": self.lam,
        }
