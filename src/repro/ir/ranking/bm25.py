"""Okapi BM25, the ranking function of the paper's SQL listing.

The formula follows Section 2.1 exactly:

* saturated, length-normalised term frequency
  ``tf / (tf + k1 * (1 - b + b * len / avgdl))`` (the ``tf_bm25`` view);
* Robertson/Sparck-Jones IDF ``log((N - df + 0.5) / (df + 0.5))``
  (the ``idf`` view);
* the document score is the sum of ``tf_bm25 * idf`` over the query terms
  (the final SELECT ... GROUP BY docID).

``k1`` (saturation) and ``b`` (document-length normalisation) are the two
free parameters the paper names.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import RankingError
from repro.ir.ranking.base import RankingModel
from repro.ir.statistics import CollectionStatistics


class BM25Model(RankingModel):
    """Okapi BM25 with the paper's parameterisation."""

    name = "bm25"

    def __init__(self, k1: float = 1.2, b: float = 0.75, *, non_negative_idf: bool = False):
        if k1 < 0:
            raise RankingError("k1 must be non-negative")
        if not 0.0 <= b <= 1.0:
            raise RankingError("b must lie in [0, 1]")
        self.k1 = k1
        self.b = b
        self.non_negative_idf = non_negative_idf

    def term_score(
        self,
        statistics: CollectionStatistics,
        term: str,
        doc_indices: np.ndarray,
        frequencies: np.ndarray,
    ) -> np.ndarray:
        idf = statistics.robertson_idf(term)
        if self.non_negative_idf:
            idf = max(idf, 0.0)
        lengths = statistics.doc_lengths[doc_indices].astype(np.float64)
        average = statistics.average_doc_length or 1.0
        tf = frequencies.astype(np.float64)
        normaliser = tf + self.k1 * (1.0 - self.b + self.b * lengths / average)
        saturated_tf = np.divide(tf, normaliser, out=np.zeros_like(tf), where=normaliser > 0)
        return saturated_tf * idf

    def term_upper_bound(self, statistics: CollectionStatistics, term: str) -> float | None:
        """The saturated term frequency never exceeds 1, so ``idf`` bounds the score.

        Robertson IDF goes negative for terms in more than half the collection;
        a negative contribution breaks the non-negativity contract of the
        early-termination threshold, so such terms disable pruning (unless the
        model clamps IDF at zero).
        """
        idf = statistics.robertson_idf(term)
        if self.non_negative_idf:
            return max(idf, 0.0)
        if idf < 0:
            return None
        return idf

    def describe(self) -> dict[str, Any]:
        return {"model": self.name, "k1": self.k1, "b": self.b}
