"""The ranking-model interface and the ranked-list result type."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import RankingError
from repro.ir.statistics import CollectionStatistics
from repro.relational.column import Column, DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema


@dataclass
class RankedList:
    """A ranked list of documents: parallel arrays of identifiers and scores."""

    doc_ids: list[Any]
    scores: np.ndarray

    def __len__(self) -> int:
        return len(self.doc_ids)

    def top(self, k: int) -> "RankedList":
        """Return the ``k`` highest-scoring entries (already sorted)."""
        return RankedList(self.doc_ids[:k], self.scores[:k])

    def as_pairs(self) -> list[tuple[Any, float]]:
        """Return ``(docID, score)`` pairs in rank order."""
        return [(doc_id, float(score)) for doc_id, score in zip(self.doc_ids, self.scores)]

    def to_relation(self, *, score_column: str = "score") -> Relation:
        """Return the ranked list as a ``(docID, score)`` relation."""
        doc_dtype = DataType.of_value(self.doc_ids[0]) if self.doc_ids else DataType.INT
        schema = Schema([Field("docID", doc_dtype), Field(score_column, DataType.FLOAT)])
        return Relation(
            schema,
            [
                Column(self.doc_ids, doc_dtype),
                Column(self.scores.astype(np.float64), DataType.FLOAT),
            ],
        )

    def to_probabilities(self, *, method: str = "max") -> "RankedList":
        """Normalise scores into ``(0, 1]`` so they can act as tuple probabilities.

        ``method`` is ``"max"`` (divide by the maximum score, the default used
        by the Rank-by-Text strategy block) or ``"sum"`` (scores sum to one).
        Scores that are not strictly positive (BM25's Robertson IDF can go
        negative on very small collections) are first shifted so the lowest
        score maps to a small positive probability and the highest to the top
        of the range — the ranking order is always preserved.
        """
        if len(self.scores) == 0:
            return RankedList([], np.empty(0, dtype=np.float64))
        scores = self.scores.astype(np.float64).copy()
        epsilon = 1e-9
        minimum = scores.min()
        if minimum <= 0:
            spread = scores.max() - minimum
            offset = spread * 0.01 if spread > 0 else 1.0
            scores = scores - minimum + offset
        scores = np.clip(scores, epsilon, None)
        if method == "max":
            scores = scores / scores.max()
        elif method == "sum":
            scores = scores / scores.sum()
        else:
            raise RankingError(f"unknown normalisation method {method!r}")
        return RankedList(list(self.doc_ids), scores)


class _BatchTermCache:
    """Per-batch memo of posting slices, contributions and term bounds.

    One instance is shared across every query of a :meth:`RankingModel.rank_many`
    batch: a term appearing in several queries has its posting list fetched
    and scored exactly once (cross-query term deduplication).
    """

    __slots__ = ("postings", "bounds")

    def __init__(self) -> None:
        self.postings: dict[str, tuple] = {}
        self.bounds: dict[str, float | None] = {}


class RankingModel:
    """Base class for ranking models.

    Subclasses implement :meth:`term_score`, the contribution of one query
    term to one document; :meth:`rank` accumulates contributions over the
    postings of each query term (the relational formulation's
    ``GROUP BY docID / SUM``) and sorts.

    When ``top_k`` is requested, :meth:`rank` is *rank-aware*: the final
    selection uses a partial sort (``np.argpartition``) instead of ordering
    every matching document, and — for models that can bound their per-term
    contributions via :meth:`term_upper_bound` — a threshold-style early
    termination in the accumulation loop stops admitting *new* candidate
    documents once the remaining terms can no longer lift an unseen document
    into the top ``k``.  Both optimisations are exact: the returned documents,
    scores and tie-breaking are bit-identical to the full evaluation, which
    the property-based equivalence suite asserts.
    """

    name = "abstract"

    #: whether :meth:`term_score` is *elementwise*: each document's
    #: contribution depends only on that document's own posting entry, so
    #: scoring a subset of a posting list equals scoring the full list and
    #: slicing.  All built-in models are elementwise; a custom model that is
    #: not must set this to ``False``, which makes :meth:`rank_many` fall
    #: back to per-query :meth:`rank` instead of sharing scored postings.
    elementwise = True

    def rank(
        self,
        statistics: CollectionStatistics,
        query_terms: Sequence[str],
        *,
        top_k: int | None = None,
    ) -> RankedList:
        """Rank all documents matching at least one query term."""
        return self._rank_with_cache(statistics, query_terms, top_k, None)

    def rank_many(
        self,
        statistics: CollectionStatistics,
        queries: Sequence[tuple[Sequence[str], int | None]],
    ) -> list[RankedList]:
        """Rank a batch of ``(query_terms, top_k)`` queries in one pass.

        Terms shared across the batch have their posting lists sliced and
        scored once (see :class:`_BatchTermCache`); each returned list is
        bit-identical to calling :meth:`rank` on that query alone, which is
        exactly what non-elementwise models fall back to.
        """
        if not self.elementwise or len(queries) <= 1:
            return [
                self.rank(statistics, terms, top_k=top_k) for terms, top_k in queries
            ]
        cache = _BatchTermCache()
        return [
            self._rank_with_cache(statistics, terms, top_k, cache)
            for terms, top_k in queries
        ]

    def _rank_with_cache(
        self,
        statistics: CollectionStatistics,
        query_terms: Sequence[str],
        top_k: int | None,
        cache: _BatchTermCache | None,
    ) -> RankedList:
        if statistics.num_docs == 0 or not query_terms:
            return RankedList([], np.empty(0, dtype=np.float64))

        def upper_bound(term: str) -> float | None:
            if cache is None:
                return self.term_upper_bound(statistics, term)
            if term not in cache.bounds:
                cache.bounds[term] = self.term_upper_bound(statistics, term)
            return cache.bounds[term]

        def postings(term: str) -> tuple:
            # returns (doc_indices, frequencies, contributions-or-None); the
            # cached path pre-scores the full posting list so pruning can
            # slice contributions instead of recomputing (elementwise only)
            if cache is None:
                doc_indices, frequencies = statistics.postings_for(term)
                return doc_indices, frequencies, None
            entry = cache.postings.get(term)
            if entry is None:
                doc_indices, frequencies = statistics.postings_for(term)
                contributions = (
                    self.term_score(statistics, term, doc_indices, frequencies)
                    if len(doc_indices)
                    else None
                )
                entry = (doc_indices, frequencies, contributions)
                cache.postings[term] = entry
            return entry

        # Per-term contribution bounds enable threshold-style pruning.  The
        # suffix sums give, for each position, the best total score a document
        # first seen at that term could still reach.
        suffix_bounds: np.ndarray | None = None
        if top_k is not None and top_k > 0 and len(query_terms) > 1:
            bounds = [upper_bound(term) for term in query_terms]
            if all(bound is not None for bound in bounds):
                suffix_bounds = np.cumsum(np.asarray(bounds, dtype=np.float64)[::-1])[::-1]

        # sized to the *local* posting slots: on a shard-local statistics view
        # num_docs is the global count (the formulas need it) but the posting
        # arrays only index this collection's own documents
        accumulator = np.zeros(statistics.accumulator_size, dtype=np.float64)
        matched = np.zeros(statistics.accumulator_size, dtype=bool)
        matched_count = 0
        for position, term in enumerate(query_terms):
            doc_indices, frequencies, contributions = postings(term)
            if len(doc_indices) == 0:
                continue
            if (
                suffix_bounds is not None
                and position > 0
                and top_k is not None
                and matched_count >= top_k
            ):
                # kth-largest running score is a lower bound on the final
                # kth-largest (remaining contributions are non-negative by the
                # term_upper_bound contract); a document first seen from here
                # on scores at most suffix_bounds[position]
                current = accumulator[matched]
                threshold = np.partition(current, len(current) - top_k)[len(current) - top_k]
                if suffix_bounds[position] < threshold:
                    keep = matched[doc_indices]
                    doc_indices = doc_indices[keep]
                    frequencies = frequencies[keep]
                    if contributions is not None:
                        contributions = contributions[keep]
                    if len(doc_indices) == 0:
                        continue
            if contributions is None:
                contributions = self.term_score(statistics, term, doc_indices, frequencies)
            accumulator[doc_indices] += contributions
            matched[doc_indices] = True
            if suffix_bounds is not None:
                matched_count = int(np.count_nonzero(matched))
        matching_indices = np.nonzero(matched)[0]
        if len(matching_indices) == 0:
            return RankedList([], np.empty(0, dtype=np.float64))
        scores = accumulator[matching_indices]
        if top_k is not None and 0 < top_k < len(matching_indices):
            # partial selection: keep every document tied with the kth-largest
            # score, then sort only those — the stable sort over the (index-
            # ordered) candidates reproduces the full sort's tie-breaking
            boundary = len(scores) - top_k
            kth_largest = scores[np.argpartition(scores, boundary)[boundary]]
            keep = scores >= kth_largest
            matching_indices = matching_indices[keep]
            scores = scores[keep]
        order = np.argsort(-scores, kind="stable")
        ranked_indices = matching_indices[order]
        ranked_scores = scores[order]
        if top_k is not None:
            ranked_indices = ranked_indices[:top_k]
            ranked_scores = ranked_scores[:top_k]
        doc_ids = [statistics.doc_ids[index] for index in ranked_indices]
        return RankedList(doc_ids, ranked_scores)

    def term_score(
        self,
        statistics: CollectionStatistics,
        term: str,
        doc_indices: np.ndarray,
        frequencies: np.ndarray,
    ) -> np.ndarray:
        """Return the per-document contribution of ``term`` (vectorised)."""
        raise NotImplementedError

    def term_upper_bound(
        self, statistics: CollectionStatistics, term: str
    ) -> float | None:
        """An upper bound on any document's contribution from ``term``.

        Returning a float ``ub`` asserts that every per-document contribution
        of this term lies in ``[0, ub]`` — both the bound and the
        non-negativity matter, since the early-termination threshold treats
        running scores as lower bounds on final scores.  Models whose
        contributions can be negative (or unbounded without per-term maxima)
        must return ``None``, which disables pruning but keeps the partial
        top-k selection.
        """
        return None

    def describe(self) -> dict[str, Any]:
        """Return the model name and parameters (used in benchmark reports)."""
        return {"model": self.name}
