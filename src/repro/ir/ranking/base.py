"""The ranking-model interface and the ranked-list result type."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import RankingError
from repro.ir.statistics import CollectionStatistics
from repro.relational.column import Column, DataType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema


@dataclass
class RankedList:
    """A ranked list of documents: parallel arrays of identifiers and scores."""

    doc_ids: list[Any]
    scores: np.ndarray

    def __len__(self) -> int:
        return len(self.doc_ids)

    def top(self, k: int) -> "RankedList":
        """Return the ``k`` highest-scoring entries (already sorted)."""
        return RankedList(self.doc_ids[:k], self.scores[:k])

    def as_pairs(self) -> list[tuple[Any, float]]:
        """Return ``(docID, score)`` pairs in rank order."""
        return [(doc_id, float(score)) for doc_id, score in zip(self.doc_ids, self.scores)]

    def to_relation(self, *, score_column: str = "score") -> Relation:
        """Return the ranked list as a ``(docID, score)`` relation."""
        doc_dtype = DataType.of_value(self.doc_ids[0]) if self.doc_ids else DataType.INT
        schema = Schema([Field("docID", doc_dtype), Field(score_column, DataType.FLOAT)])
        return Relation(
            schema,
            [
                Column(self.doc_ids, doc_dtype),
                Column(self.scores.astype(np.float64), DataType.FLOAT),
            ],
        )

    def to_probabilities(self, *, method: str = "max") -> "RankedList":
        """Normalise scores into ``(0, 1]`` so they can act as tuple probabilities.

        ``method`` is ``"max"`` (divide by the maximum score, the default used
        by the Rank-by-Text strategy block) or ``"sum"`` (scores sum to one).
        Scores that are not strictly positive (BM25's Robertson IDF can go
        negative on very small collections) are first shifted so the lowest
        score maps to a small positive probability and the highest to the top
        of the range — the ranking order is always preserved.
        """
        if len(self.scores) == 0:
            return RankedList([], np.empty(0, dtype=np.float64))
        scores = self.scores.astype(np.float64).copy()
        epsilon = 1e-9
        minimum = scores.min()
        if minimum <= 0:
            spread = scores.max() - minimum
            offset = spread * 0.01 if spread > 0 else 1.0
            scores = scores - minimum + offset
        scores = np.clip(scores, epsilon, None)
        if method == "max":
            scores = scores / scores.max()
        elif method == "sum":
            scores = scores / scores.sum()
        else:
            raise RankingError(f"unknown normalisation method {method!r}")
        return RankedList(list(self.doc_ids), scores)


class RankingModel:
    """Base class for ranking models.

    Subclasses implement :meth:`term_score`, the contribution of one query
    term to one document; :meth:`rank` accumulates contributions over the
    postings of each query term (the relational formulation's
    ``GROUP BY docID / SUM``) and sorts.
    """

    name = "abstract"

    def rank(
        self,
        statistics: CollectionStatistics,
        query_terms: Sequence[str],
        *,
        top_k: int | None = None,
    ) -> RankedList:
        """Rank all documents matching at least one query term."""
        if statistics.num_docs == 0 or not query_terms:
            return RankedList([], np.empty(0, dtype=np.float64))
        accumulator = np.zeros(statistics.num_docs, dtype=np.float64)
        matched = np.zeros(statistics.num_docs, dtype=bool)
        for term in query_terms:
            doc_indices, frequencies = statistics.postings_for(term)
            if len(doc_indices) == 0:
                continue
            contributions = self.term_score(statistics, term, doc_indices, frequencies)
            accumulator[doc_indices] += contributions
            matched[doc_indices] = True
        matching_indices = np.nonzero(matched)[0]
        if len(matching_indices) == 0:
            return RankedList([], np.empty(0, dtype=np.float64))
        scores = accumulator[matching_indices]
        order = np.argsort(-scores, kind="stable")
        ranked_indices = matching_indices[order]
        ranked_scores = scores[order]
        if top_k is not None:
            ranked_indices = ranked_indices[:top_k]
            ranked_scores = ranked_scores[:top_k]
        doc_ids = [statistics.doc_ids[index] for index in ranked_indices]
        return RankedList(doc_ids, ranked_scores)

    def term_score(
        self,
        statistics: CollectionStatistics,
        term: str,
        doc_indices: np.ndarray,
        frequencies: np.ndarray,
    ) -> np.ndarray:
        """Return the per-document contribution of ``term`` (vectorised)."""
        raise NotImplementedError

    def describe(self) -> dict[str, Any]:
        """Return the model name and parameters (used in benchmark reports)."""
        return {"model": self.name}
