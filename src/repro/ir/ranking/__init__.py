"""Ranking models over collection statistics.

The paper implements Okapi BM25 in SQL and notes that *"most alternative
ranking functions would easily adapt or reuse large parts of this
implementation"*.  All models here consume the same
:class:`~repro.ir.statistics.CollectionStatistics` (the materialised views)
and differ only in the per-term scoring formula — which is exactly the reuse
claim, and what benchmark A2 measures.
"""

from repro.ir.ranking.base import RankedList, RankingModel
from repro.ir.ranking.bm25 import BM25Model
from repro.ir.ranking.boolean import BooleanModel
from repro.ir.ranking.lm import LanguageModel
from repro.ir.ranking.tfidf import TfIdfModel

__all__ = [
    "BM25Model",
    "BooleanModel",
    "LanguageModel",
    "RankedList",
    "RankingModel",
    "TfIdfModel",
]


def get_model(name: str, **parameters) -> RankingModel:
    """Return a ranking model by name (``bm25``, ``tfidf``, ``lm``, ``boolean``)."""
    from repro.errors import RankingError

    registry = {
        "bm25": BM25Model,
        "tfidf": TfIdfModel,
        "lm": LanguageModel,
        "boolean": BooleanModel,
    }
    try:
        factory = registry[name.lower()]
    except KeyError:
        raise RankingError(
            f"unknown ranking model {name!r}; available: {sorted(registry)}"
        ) from None
    return factory(**parameters)
