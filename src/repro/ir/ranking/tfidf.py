"""TF-IDF ranking with cosine-style length normalisation.

One of the "alternative ranking functions" the paper says adapt easily to the
same relational skeleton: it reuses the tf and idf statistics and only
changes the per-term formula.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ir.ranking.base import RankingModel
from repro.ir.statistics import CollectionStatistics


class TfIdfModel(RankingModel):
    """Log-scaled TF-IDF: ``(1 + log tf) * log(1 + N/df)``, length-normalised."""

    name = "tfidf"

    def __init__(self, *, length_normalized: bool = True):
        self.length_normalized = length_normalized

    def term_score(
        self,
        statistics: CollectionStatistics,
        term: str,
        doc_indices: np.ndarray,
        frequencies: np.ndarray,
    ) -> np.ndarray:
        idf = statistics.smoothed_idf(term)
        tf = frequencies.astype(np.float64)
        weights = (1.0 + np.log(tf)) * idf
        if self.length_normalized:
            lengths = statistics.doc_lengths[doc_indices].astype(np.float64)
            lengths = np.where(lengths > 0, lengths, 1.0)
            weights = weights / np.sqrt(lengths)
        return weights

    def describe(self) -> dict[str, Any]:
        return {"model": self.name, "length_normalized": self.length_normalized}
