"""Query expansion: synonyms and compound terms.

Section 3 notes that the production version of the auction strategy adds
*"query expansion with synonyms and compound terms"*.  This module provides
the two expanders and a way to chain them; the expanded-query benchmark (E7)
measures their latency overhead against the base strategy.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

from repro.errors import RankingError


class QueryExpander:
    """Base class: maps a list of query terms to additional terms."""

    def expand(self, terms: Sequence[str]) -> list[str]:
        """Return the *additional* terms contributed by the expander."""
        raise NotImplementedError

    def describe(self) -> dict[str, Any]:
        return {"expander": type(self).__name__}


class SynonymExpander(QueryExpander):
    """Dictionary-based synonym expansion.

    The synonym dictionary maps a term to its synonyms; expansion is symmetric
    if ``symmetric=True`` (a -> b also implies b -> a).
    """

    def __init__(self, synonyms: Mapping[str, Sequence[str]], *, symmetric: bool = True):
        table: dict[str, set[str]] = {}
        for term, alternatives in synonyms.items():
            table.setdefault(term.lower(), set()).update(alt.lower() for alt in alternatives)
            if symmetric:
                for alternative in alternatives:
                    table.setdefault(alternative.lower(), set()).add(term.lower())
        self._table = table

    def expand(self, terms: Sequence[str]) -> list[str]:
        additions: list[str] = []
        seen = {term.lower() for term in terms}
        for term in terms:
            for synonym in sorted(self._table.get(term.lower(), ())):
                if synonym not in seen:
                    seen.add(synonym)
                    additions.append(synonym)
        return additions

    def describe(self) -> dict[str, Any]:
        return {"expander": "synonyms", "entries": len(self._table)}


class CompoundExpander(QueryExpander):
    """Compound-term expansion: adjacent query terms become joined compounds.

    For the query ``["antique", "clock"]`` the expander adds ``"antiqueclock"``
    (and optionally the hyphenated form), which matches Dutch/German-style
    compound nouns present in the collection vocabulary.  A vocabulary can be
    supplied to restrict additions to terms that actually occur.
    """

    def __init__(
        self,
        *,
        joiners: Sequence[str] = ("",),
        vocabulary: set[str] | None = None,
        max_span: int = 2,
    ):
        if max_span < 2:
            raise RankingError("max_span must be at least 2")
        self.joiners = list(joiners)
        self.vocabulary = vocabulary
        self.max_span = max_span

    def expand(self, terms: Sequence[str]) -> list[str]:
        additions: list[str] = []
        seen = {term.lower() for term in terms}
        terms = [term.lower() for term in terms]
        for span in range(2, self.max_span + 1):
            for start in range(0, len(terms) - span + 1):
                window = terms[start : start + span]
                for joiner in self.joiners:
                    compound = joiner.join(window)
                    if compound in seen:
                        continue
                    if self.vocabulary is not None and compound not in self.vocabulary:
                        continue
                    seen.add(compound)
                    additions.append(compound)
        return additions

    def describe(self) -> dict[str, Any]:
        return {
            "expander": "compounds",
            "joiners": self.joiners,
            "max_span": self.max_span,
            "vocabulary_restricted": self.vocabulary is not None,
        }


class ChainedExpander(QueryExpander):
    """Applies several expanders in sequence, concatenating their additions."""

    def __init__(self, expanders: Sequence[QueryExpander]):
        self.expanders = list(expanders)

    def expand(self, terms: Sequence[str]) -> list[str]:
        additions: list[str] = []
        seen = {term.lower() for term in terms}
        for expander in self.expanders:
            for term in expander.expand(list(terms) + additions):
                if term.lower() not in seen:
                    seen.add(term.lower())
                    additions.append(term)
        return additions

    def describe(self) -> dict[str, Any]:
        return {
            "expander": "chain",
            "parts": [expander.describe() for expander in self.expanders],
        }
