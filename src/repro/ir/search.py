"""The keyword search engine: database + analyzer + ranking model.

:class:`KeywordSearchEngine` reproduces the end-to-end keyword-search pipeline
of Section 2.1.  Given a database and the name of a ``docs(docID, data)``
table or view (possibly defined on the fly by structured filtering, as in the
toy scenario), the engine

1. materialises the collection statistics on demand — either through the
   faithful relational view chain (the paper's CREATE VIEW listing, served by
   the database's materialization cache: *cold* the first time, *hot*
   afterwards) or through a fast vectorised builder producing identical
   statistics;
2. analyses the query string with the same analyzer used for the documents
   (the paper's ``qterms`` view);
3. ranks documents with the configured ranking model (BM25 by default) and
   returns a ``(docID, score, p)`` relation whose ``p`` column is a
   normalised probability, ready for the score-propagation layer of
   Section 2.3.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.errors import IndexingError, RankingError
from repro.ir.query_expansion import QueryExpander
from repro.ir.ranking import BM25Model, RankingModel
from repro.ir.ranking.base import RankedList
from repro.ir.statistics import (
    CollectionStatistics,
    RelationalStatisticsBuilder,
    statistics_from_relation,
)
from repro.relational.column import Column, DataType
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.text.analyzers import Analyzer, StandardAnalyzer


@dataclass
class SearchResult:
    """The outcome of one query: the ranked list plus execution metadata."""

    query: str
    query_terms: list[str]
    ranked: RankedList
    elapsed_seconds: float
    statistics_were_cached: bool
    expanded_terms: list[str] = field(default_factory=list)

    def to_relation(self) -> Relation:
        """Return ``(docID, score, p)`` with ``p`` the max-normalised score."""
        relation = self.ranked.to_relation()
        probabilities = self.ranked.to_probabilities().scores
        return relation.with_column("p", Column(probabilities, DataType.FLOAT))

    def top(self, k: int) -> list[tuple[Any, float]]:
        """Return the top ``k`` (docID, score) pairs."""
        return self.ranked.top(k).as_pairs()


class KeywordSearchEngine:
    """Keyword search over a ``docs(docID, data)`` table or view."""

    def __init__(
        self,
        database: Database,
        docs_source: str,
        *,
        analyzer: Analyzer | None = None,
        model: RankingModel | None = None,
        pipeline: str = "direct",
        language: str = "english",
        id_column: str = "docID",
        text_column: str = "data",
        expander: QueryExpander | None = None,
        statistics_prefix: str = "",
    ):
        if pipeline not in ("direct", "relational"):
            raise RankingError(
                f"unknown pipeline {pipeline!r}; use 'direct' or 'relational'"
            )
        self.database = database
        self.docs_source = docs_source
        self.analyzer = analyzer if analyzer is not None else StandardAnalyzer(language)
        self.model = model if model is not None else BM25Model()
        self.pipeline = pipeline
        self.language = language
        self.id_column = id_column
        self.text_column = text_column
        self.expander = expander
        self.statistics_prefix = statistics_prefix or f"{docs_source}_"
        self._statistics: CollectionStatistics | None = None
        self._statistics_loader: Callable[[], CollectionStatistics] | None = None

    # -- statistics management --------------------------------------------------------

    @property
    def statistics(self) -> CollectionStatistics:
        """The collection statistics, built on first access ("cold") and reused ("hot")."""
        if self._statistics is None:
            self._statistics = self._build_statistics()
        return self._statistics

    @property
    def is_warm(self) -> bool:
        """True once the collection statistics have been materialised."""
        return self._statistics is not None

    @property
    def statistics_available(self) -> bool:
        """True when statistics exist or a snapshot loader is pending.

        Unlike :attr:`is_warm` this counts an adopted-but-unconsumed snapshot
        loader, so re-saving an opened engine keeps its warm statistics.
        """
        return self._statistics is not None or self._statistics_loader is not None

    def invalidate(self) -> None:
        """Discard the statistics (e.g. after the docs source changed)."""
        self._statistics = None
        self._statistics_loader = None

    def warm_up(self) -> CollectionStatistics:
        """Force statistics materialisation and return them (the "hot" state)."""
        return self.statistics

    def adopt_statistics_loader(self, loader: Callable[[], CollectionStatistics]) -> None:
        """Serve the next statistics request from ``loader`` (snapshot warm-up).

        The loader replaces one rebuild only; :meth:`invalidate` discards it,
        so a changed docs source still triggers a true rebuild.
        """
        self._statistics = None
        self._statistics_loader = loader

    def _build_statistics(self) -> CollectionStatistics:
        if self._statistics_loader is not None:
            loader, self._statistics_loader = self._statistics_loader, None
            return loader()
        docs = self.database.query(self.docs_source)
        if docs.num_rows == 0:
            raise IndexingError(
                f"docs source {self.docs_source!r} is empty; nothing to index"
            )
        if self.pipeline == "relational":
            builder = RelationalStatisticsBuilder(
                self.database,
                self.docs_source,
                language=self.language,
                prefix=self.statistics_prefix,
            )
            return builder.materialize()
        return statistics_from_relation(
            docs,
            self.analyzer,
            id_column=self.id_column,
            text_column=self.text_column,
        )

    # -- querying ---------------------------------------------------------------------

    def analyze_query(self, query: str) -> list[str]:
        """Normalise a query string into terms (the paper's ``qterms`` view)."""
        return self.analyzer.analyze_query(query)

    def query_terms(self, query: str) -> tuple[list[str], list[str], list[str]]:
        """Analyse and (optionally) expand a query string.

        Returns ``(base_terms, expanded_terms, terms)`` where ``terms`` is
        the final ranking input.  Shared by :meth:`search` and the sharded
        scatter path, which analyses on the coordinator and ranks on the
        shards.
        """
        base_terms = self.analyze_query(query)
        expanded_terms: list[str] = []
        terms: list[str] = list(base_terms)
        if self.expander is not None:
            # Expansion dictionaries are written in natural language, so the
            # expander sees both the raw (lower-cased) query tokens and the
            # analyzed terms; its additions are then analyzed like any other
            # query text before ranking.
            raw_tokens = [token.lower() for token in self.analyzer.tokenizer.iter_tokens(query)]
            seeds = list(dict.fromkeys(raw_tokens + list(base_terms)))
            additions = self.expander.expand(seeds)
            for addition in additions:
                analyzed = self.analyzer.analyze(addition)
                expanded_terms.extend(analyzed if analyzed else [addition])
            expanded_terms = list(dict.fromkeys(expanded_terms))
            terms = list(base_terms) + [
                term for term in expanded_terms if term not in base_terms
            ]
        return list(base_terms), expanded_terms, terms

    def search(self, query: str, *, top_k: int | None = None) -> SearchResult:
        """Run a keyword query and return the ranked result.

        With ``top_k`` the scorer is rank-aware: it selects the ``k`` best
        documents with a partial sort instead of ordering every match, and
        models with bounded non-negative term contributions prune hopeless
        candidates early (threshold-style).  The returned documents, scores
        and tie-breaking are identical to ranking everything and slicing.
        """
        started = time.perf_counter()
        cached = self._statistics is not None
        statistics = self.statistics
        base_terms, expanded_terms, terms = self.query_terms(query)
        ranked = self.model.rank(statistics, terms, top_k=top_k)
        elapsed = time.perf_counter() - started
        return SearchResult(
            query=query,
            query_terms=list(base_terms),
            ranked=ranked,
            elapsed_seconds=elapsed,
            statistics_were_cached=cached,
            expanded_terms=expanded_terms,
        )

    def search_many(
        self, queries: Sequence[str], *, top_k: int | None = None
    ) -> list[SearchResult]:
        """Run a batch of keyword queries through one vectorized scoring pass.

        Every term appearing anywhere in the batch has its posting list
        sliced and scored exactly once (cross-query term deduplication via
        :meth:`RankingModel.rank_many`), so B co-arriving queries cost one
        pass over the shared postings instead of B.  Each result is
        bit-identical to :meth:`search` on that query alone.
        """
        started = time.perf_counter()
        cached = self._statistics is not None
        statistics = self.statistics
        analyzed = [self.query_terms(query) for query in queries]
        ranked_lists = self.model.rank_many(
            statistics, [(terms, top_k) for _, _, terms in analyzed]
        )
        elapsed = time.perf_counter() - started
        return [
            SearchResult(
                query=query,
                query_terms=list(base_terms),
                ranked=ranked,
                elapsed_seconds=elapsed,
                statistics_were_cached=cached,
                expanded_terms=expanded_terms,
            )
            for query, (base_terms, expanded_terms, _), ranked in zip(
                queries, analyzed, ranked_lists
            )
        ]

    def search_terms(self, terms: Sequence[str], *, top_k: int | None = None) -> RankedList:
        """Rank already-analyzed terms (used by the strategy compiler)."""
        return self.model.rank(self.statistics, terms, top_k=top_k)

    def describe(self) -> dict[str, Any]:
        """Return a description of the engine configuration."""
        return {
            "docs_source": self.docs_source,
            "pipeline": self.pipeline,
            "language": self.language,
            "model": self.model.describe(),
            "analyzer": self.analyzer.describe(),
            "expansion": self.expander.describe() if self.expander is not None else None,
        }
