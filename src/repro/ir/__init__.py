"""Information retrieval on top of the relational engine.

This package implements Section 2.1 of the paper: keyword search expressed
as relational queries over a column store.

* :mod:`repro.ir.statistics` builds the collection statistics the BM25 SQL
  listing materialises as views (``term_doc``, ``doc_len``, ``termdict``,
  ``tf``, ``idf``) — both as faithful logical plans over the database and as
  a fast vectorised builder that produces identical relations.
* :mod:`repro.ir.inverted_index` exposes the term-partitioned posting lists
  of Figure 1 and the "term lookup is a relational join" demonstration.
* :mod:`repro.ir.ranking` provides BM25 (the paper's listing), TF-IDF,
  query-likelihood language models and a boolean baseline behind a common
  interface.
* :mod:`repro.ir.search` ties a database, an analyzer and a ranking model
  into a :class:`~repro.ir.search.KeywordSearchEngine`.
* :mod:`repro.ir.query_expansion` adds the synonym / compound-term expansion
  used by the production strategy of Section 3.
"""

from repro.ir.inverted_index import InvertedIndex
from repro.ir.query_expansion import CompoundExpander, QueryExpander, SynonymExpander
from repro.ir.ranking import BM25Model, BooleanModel, LanguageModel, RankingModel, TfIdfModel
from repro.ir.search import KeywordSearchEngine, SearchResult
from repro.ir.snippets import Snippet, SnippetGenerator
from repro.ir.statistics import CollectionStatistics, RelationalStatisticsBuilder, build_statistics

__all__ = [
    "BM25Model",
    "BooleanModel",
    "CollectionStatistics",
    "CompoundExpander",
    "InvertedIndex",
    "KeywordSearchEngine",
    "LanguageModel",
    "QueryExpander",
    "RankingModel",
    "RelationalStatisticsBuilder",
    "SearchResult",
    "Snippet",
    "SnippetGenerator",
    "SynonymExpander",
    "TfIdfModel",
    "build_statistics",
]
