"""Static analysis: the plan verifier and the repo-invariant lint engine.

Two halves:

* :mod:`repro.analysis.verifier` — schema/type/assumption inference over PRA
  plans, surfaced as :meth:`repro.engine.query.Query.check`,
  :meth:`repro.engine.Engine.analyze`, the ``check`` CLI subcommand, the
  analysis section of ``explain``, and the serving router's pre-dispatch
  gate.  :mod:`repro.analysis.lattice` (duplicate-freeness) and
  :mod:`repro.analysis.locality` (shard-safety classification) are the
  shared judgments it is built on — the optimizer and the scatter-gather
  executors consume the very same functions.
* :mod:`repro.analysis.lint` — an AST-based lint engine encoding repo
  invariants (stable sorts, ordered gathers, lock discipline, no wall-clock
  in benchmarks, length-prefixed wire writes), run by
  ``scripts/repro_lint.py`` and enforced in CI.
"""

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity, render_path
from repro.analysis.lattice import produces_distinct
from repro.analysis.locality import LocalityReport, ScatterSegment, classify
from repro.analysis.verifier import (
    CatalogSchemaProvider,
    NodeFacts,
    PlanVerifier,
    SchemaProvider,
    verify_plan,
)

__all__ = [
    "AnalysisReport",
    "CatalogSchemaProvider",
    "Diagnostic",
    "LocalityReport",
    "NodeFacts",
    "PlanVerifier",
    "ScatterSegment",
    "SchemaProvider",
    "Severity",
    "classify",
    "produces_distinct",
    "render_path",
    "verify_plan",
]
