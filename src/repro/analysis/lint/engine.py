"""A tiny AST-based lint engine for repo invariants.

Rules are deliberately AST-driven, not regex-driven: the invariants they
encode (keyword arguments, lock-guarded mutations) routinely span multiple
source lines, where a line-oriented grep both misses violations and reports
false positives (e.g. a multi-line ``np.argsort(..., kind="stable")`` call).

A rule sees one parsed module at a time and returns
:class:`LintViolation` records.  Suppression is per line::

    order = np.argsort(keys)  # repro-lint: disable=RL001

``disable=all`` suppresses every rule on that line.  The engine is run by
``scripts/repro_lint.py`` (wired into CI) and unit-tested in
``tests/analysis``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

_PRAGMA = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class LintViolation:
    """One finding: a rule, a location, and what went wrong."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


class LintRule:
    """Base class for lint rules; subclass and register with :func:`run_rules`."""

    name = "RL000"
    description = ""

    def applies_to(self, path: Path) -> bool:
        """Whether this rule is in scope for ``path`` (repo-relative)."""
        raise NotImplementedError

    def check(self, tree: ast.Module, source: str, path: Path) -> list[LintViolation]:
        raise NotImplementedError

    def violation(self, path: Path, node: ast.AST, message: str) -> LintViolation:
        return LintViolation(
            rule=self.name,
            path=path.as_posix(),
            line=getattr(node, "lineno", 0),
            message=message,
        )


def suppressed_rules(source: str) -> dict[int, set[str]]:
    """Per-line suppression pragmas: ``{line number: {rule names or 'all'}}``."""
    pragmas: dict[int, set[str]] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if match:
            names = {name.strip() for name in match.group(1).split(",") if name.strip()}
            pragmas[number] = names
    return pragmas


def lint_source(
    source: str, path: Path, rules: "list[LintRule]"
) -> list[LintViolation]:
    """Run every in-scope rule over one module's source text."""
    applicable = [rule for rule in rules if rule.applies_to(path)]
    if not applicable:
        return []
    tree = ast.parse(source, filename=str(path))
    pragmas = suppressed_rules(source)
    violations: list[LintViolation] = []
    for rule in applicable:
        for violation in rule.check(tree, source, path):
            suppressions = pragmas.get(violation.line, set())
            if rule.name in suppressions or "all" in suppressions:
                continue
            violations.append(violation)
    return violations


def lint_paths(
    paths: "list[Path]", rules: "list[LintRule]", *, root: Path | None = None
) -> list[LintViolation]:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    Paths in the returned violations are relative to ``root`` when given, so
    rule scopes match regardless of the working directory.
    """
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    violations: list[LintViolation] = []
    for file_path in files:
        relative = file_path.relative_to(root) if root is not None else file_path
        source = file_path.read_text(encoding="utf-8")
        violations.extend(lint_source(source, relative, rules))
    return violations
