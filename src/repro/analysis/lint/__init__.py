"""AST-based lint engine for repo invariants; run by ``scripts/repro_lint.py``."""

from repro.analysis.lint.engine import (
    LintRule,
    LintViolation,
    lint_paths,
    lint_source,
    suppressed_rules,
)
from repro.analysis.lint.rules import (
    ALL_RULES,
    BoundedLogBufferRule,
    LengthPrefixedWriteRule,
    LockedCacheMutationRule,
    NoWallClockRule,
    OrderedGatherRule,
    StableSortRule,
)

__all__ = [
    "ALL_RULES",
    "BoundedLogBufferRule",
    "LengthPrefixedWriteRule",
    "LintRule",
    "LintViolation",
    "LockedCacheMutationRule",
    "NoWallClockRule",
    "OrderedGatherRule",
    "StableSortRule",
    "lint_paths",
    "lint_source",
    "suppressed_rules",
]
