"""The repo-invariant lint rules.

Each rule encodes one hard-won invariant of this codebase — previously
enforced only by Hypothesis suites and code review — as a machine check.
Rules carry a *regression note* documenting the violations they caught when
first landed, so the invariant's history stays next to its enforcement.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path

from repro.analysis.lint.engine import LintRule, LintViolation

_KERNEL_SCOPES = (
    "src/repro/pra/",
    "src/repro/relational/",
    "src/repro/engine/",
    "src/repro/ir/",
)


def _in_scope(path: Path, prefixes: tuple[str, ...]) -> bool:
    text = path.as_posix()
    return any(text.startswith(prefix) or text == prefix.rstrip("/") for prefix in prefixes)


def _is_self_attribute(node: ast.AST, names: set[str]) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in names
    )


def _has_stable_kind(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "kind":
            return isinstance(keyword.value, ast.Constant) and keyword.value.value == "stable"
    return False


def _init_assignments(init: ast.FunctionDef) -> Iterator[tuple[ast.expr, ast.expr]]:
    for node in ast.walk(init):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            yield node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            yield node.target, node.value


def _self_attribute_target(target: ast.expr) -> str | None:
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr
    return None


def _lock_attributes(init: ast.FunctionDef) -> set[str]:
    locks: set[str] = set()
    for target, value in _init_assignments(init):
        attr = _self_attribute_target(target)
        if attr is None:
            continue
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and isinstance(value.func.value, ast.Name)
            and value.func.value.id == "threading"
            and value.func.attr in ("Lock", "RLock")
        ):
            locks.add(attr)
    return locks


class StableSortRule(LintRule):
    """RL001: ``sort``/``argsort`` in kernel modules must pass ``kind="stable"``.

    The engine's bit-identity contract (sharded == unsharded, optimized ==
    unoptimized, ties included) rests on every NumPy sort in the kernel
    modules being stable: group numbering, merge order and top-k tie-breaks
    all inherit input row order.  NumPy's default introsort is not stable,
    so an unqualified ``np.argsort`` is a latent tie-order bug even when the
    current inputs happen to be duplicate-free.  Python's ``sorted``/
    ``list.sort`` are always stable and are not flagged.

    Regression note: when this rule first landed it caught two unqualified
    ``np.argsort(doc_indices)`` calls in ``repro/ir/statistics.py`` (postings
    reordering in statistics split/merge); both were fixed by passing
    ``kind="stable"`` — a no-op for the unique-key inputs they sort today,
    and insurance for any future caller.
    """

    name = "RL001"
    description = 'NumPy sort/argsort in kernel modules must use kind="stable"'

    def applies_to(self, path: Path) -> bool:
        return _in_scope(path, _KERNEL_SCOPES)

    def check(self, tree: ast.Module, source: str, path: Path) -> list[LintViolation]:
        violations: list[LintViolation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            attr = node.func.attr
            is_numpy_module = isinstance(node.func.value, ast.Name) and node.func.value.id in (
                "np",
                "numpy",
            )
            is_sort = attr in ("sort", "argsort") and is_numpy_module
            is_method_argsort = attr == "argsort" and not is_numpy_module
            if (is_sort or is_method_argsort) and not _has_stable_kind(node):
                violations.append(
                    self.violation(
                        path,
                        node,
                        f'{attr}() without kind="stable" breaks the deterministic '
                        "tie-order contract",
                    )
                )
        return violations


class OrderedGatherRule(LintRule):
    """RL002: every ``gather_*`` kernel must deterministically reorder its merge.

    Shard results arrive in shard order, not original row order; the merge
    kernels (``group_codes``/``group_segments``) downstream are
    input-row-order-sensitive.  A gather that concatenates fragments without
    re-establishing a deterministic order (stable argsort over the hidden
    row column, ``lexsort``, or the rank-aware ``top`` kernel) silently
    breaks the sharded == unsharded bit-identity contract.

    Regression note: clean at introduction — ``gather_concat``,
    ``gather_table`` and ``gather_triples`` stable-sort by original row
    index, and ``gather_top`` merges through the deterministic top-k kernel.
    The rule exists so the next gather kernel cannot forget.
    """

    name = "RL002"
    description = "gather_* kernels must reorder merged shard results deterministically"

    def applies_to(self, path: Path) -> bool:
        return path.as_posix() == "src/repro/engine/executors.py"

    def check(self, tree: ast.Module, source: str, path: Path) -> list[LintViolation]:
        violations: list[LintViolation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.FunctionDef) or not node.name.startswith("gather_"):
                continue
            if not self._reorders(node):
                violations.append(
                    self.violation(
                        path,
                        node,
                        f"gather kernel {node.name}() merges shard results without a "
                        "deterministic reorder (stable argsort, lexsort, or top)",
                    )
                )
        return violations

    @staticmethod
    def _reorders(function: ast.FunctionDef) -> bool:
        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                if attr == "argsort" and _has_stable_kind(node):
                    return True
                if attr in ("lexsort", "top"):
                    return True
            if isinstance(node.func, ast.Name) and node.func.id.startswith("gather_"):
                return True  # delegates to another (checked) gather kernel
        return False


class LockedCacheMutationRule(LintRule):
    """RL003: shared dict caches of lock-owning classes mutate under their lock.

    Engine-layer objects are documented as shareable across threads; their
    classes own ``threading.Lock``/``RLock`` attributes precisely so that
    shared mutable dict caches (plan caches, searcher registries,
    materialization entries) are only touched inside ``with self.<lock>``.
    An unguarded ``self._cache[key] = ...`` races concurrent readers —
    the kind of bug that only surfaces under serving load.  Classes that
    declare no lock are exempt: they are documented single-threaded
    (e.g. per-shard executors driven by one coordinator thread).

    Regression note: when this rule first landed it caught three unguarded
    mutations in ``repro/engine/__init__.py`` — ``Engine._search_engines``
    and ``Engine._rank_blocks`` were populated (and cleared in ``close()``)
    without any lock despite Engine's documented thread-safety.  Fixed by
    introducing ``Engine._registry_lock`` and guarding every mutation and
    iteration of the two registries.
    """

    name = "RL003"
    description = "dict caches of lock-owning classes must be mutated under the lock"

    _MUTATORS = ("clear", "pop", "popitem", "setdefault", "update")

    def applies_to(self, path: Path) -> bool:
        return _in_scope(
            path,
            ("src/repro/engine/", "src/repro/serving/", "src/repro/relational/cache.py"),
        )

    def check(self, tree: ast.Module, source: str, path: Path) -> list[LintViolation]:
        violations: list[LintViolation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                violations.extend(self._check_class(node, path))
        return violations

    def _check_class(self, klass: ast.ClassDef, path: Path) -> list[LintViolation]:
        init = next(
            (
                node
                for node in klass.body
                if isinstance(node, ast.FunctionDef) and node.name == "__init__"
            ),
            None,
        )
        if init is None:
            return []
        locks = self._lock_attributes(init)
        if not locks:
            return []
        caches = self._cache_attributes(init)
        if not caches:
            return []
        violations: list[LintViolation] = []
        for method in klass.body:
            if isinstance(method, ast.FunctionDef) and method.name != "__init__":
                self._check_method(method, locks, caches, path, violations)
        return violations

    def _lock_attributes(self, init: ast.FunctionDef) -> set[str]:
        return _lock_attributes(init)

    def _cache_attributes(self, init: ast.FunctionDef) -> set[str]:
        caches: set[str] = set()
        for target, value in _init_assignments(init):
            attr = _self_attribute_target(target)
            if attr is None:
                continue
            is_dict_literal = isinstance(value, (ast.Dict, ast.DictComp))
            is_dict_call = (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("dict", "OrderedDict", "defaultdict")
            )
            if is_dict_literal or is_dict_call:
                caches.add(attr)
        return caches

    def _check_method(
        self,
        method: ast.FunctionDef,
        locks: set[str],
        caches: set[str],
        path: Path,
        violations: list[LintViolation],
    ) -> None:
        def walk(node: ast.AST, locked: bool) -> None:
            if isinstance(node, ast.With):
                holds = locked or any(
                    _is_self_attribute(item.context_expr, locks) for item in node.items
                )
                for child in ast.iter_child_nodes(node):
                    walk(child, holds)
                return
            mutated = self._mutated_cache(node, caches)
            if mutated is not None and not locked:
                violations.append(
                    self.violation(
                        path,
                        node,
                        f"'{method.name}' mutates 'self.{mutated}' outside "
                        "'with self.<lock>'",
                    )
                )
            for child in ast.iter_child_nodes(node):
                walk(child, locked)

        walk(method, locked=False)

    def _mutated_cache(self, node: ast.AST, caches: set[str]) -> str | None:
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) and _is_self_attribute(
                    target.value, caches
                ):
                    return target.value.attr  # type: ignore[union-attr]
                if _is_self_attribute(target, caches):
                    return target.attr  # type: ignore[union-attr]
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and _is_self_attribute(
                    target.value, caches
                ):
                    return target.value.attr  # type: ignore[union-attr]
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in self._MUTATORS
            and _is_self_attribute(node.func.value, caches)
        ):
            return node.func.value.attr  # type: ignore[union-attr]
        return None


class NoWallClockRule(LintRule):
    """RL004: benchmark code must never read the wall clock.

    Measurement bodies use ``time.perf_counter`` (monotonic, high
    resolution); ``time.time``/``datetime.now``/``datetime.utcnow`` are
    subject to NTP steps and DST jumps, which turn a benchmark delta into
    noise — or a negative number.

    Regression note: clean at introduction; the bench harness was already
    built on ``perf_counter``.  The rule pins that choice for every future
    benchmark.
    """

    name = "RL004"
    description = "benchmarks must use time.perf_counter, never wall-clock time"

    _BANNED = {("time", "time"), ("datetime", "now"), ("datetime", "utcnow")}

    def applies_to(self, path: Path) -> bool:
        return _in_scope(path, ("benchmarks/", "src/repro/bench/", "src/repro/workload/"))

    def check(self, tree: ast.Module, source: str, path: Path) -> list[LintViolation]:
        violations: list[LintViolation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            value = node.func.value
            base = None
            if isinstance(value, ast.Name):
                base = value.id
            elif isinstance(value, ast.Attribute):
                base = value.attr  # datetime.datetime.now(...)
            if (base, node.func.attr) in self._BANNED:
                violations.append(
                    self.violation(
                        path,
                        node,
                        f"{base}.{node.func.attr}() reads the wall clock; use "
                        "time.perf_counter() in benchmark code",
                    )
                )
        return violations


class LengthPrefixedWriteRule(LintRule):
    """RL005: wire-codec writes must go through the length-prefixed framing.

    Router↔worker messages are self-delimiting frames (4-byte big-endian
    length + payload); the pool transport additionally prefixes frames with
    a request id (``encode_tagged``).  A raw ``stream.write`` of unframed
    bytes desyncs the peer's ``read_frame`` loop permanently; a
    ``send_bytes`` of anything but an ``encode_message``/``encode_tagged``/
    ``encode_batch`` frame breaks the pool transport the same way.  The only
    raw-write site allowed is ``write_frame`` itself.

    Regression note: clean at introduction — ``codec.write_frame`` is the
    single raw write, and every ``send_bytes`` in the pool/worker transport
    wraps one of the two codec entry points.  The rule keeps it that way.
    """

    name = "RL005"
    description = "serving transports must only write length-prefixed frames"

    _SCOPE = (
        "src/repro/serving/codec.py",
        "src/repro/serving/pool.py",
        "src/repro/serving/worker.py",
    )

    def applies_to(self, path: Path) -> bool:
        return path.as_posix() in self._SCOPE

    def check(self, tree: ast.Module, source: str, path: Path) -> list[LintViolation]:
        violations: list[LintViolation] = []

        def walk(node: ast.AST, function: str | None) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in ast.iter_child_nodes(node):
                    walk(child, node.name)
                return
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr == "write" and function != "write_frame":
                    violations.append(
                        self.violation(
                            path,
                            node,
                            "raw .write() outside write_frame(); wire bytes must be "
                            "length-prefixed frames",
                        )
                    )
                if node.func.attr == "send_bytes" and not self._sends_frame(node):
                    violations.append(
                        self.violation(
                            path,
                            node,
                            ".send_bytes() payload must be encode_message(...), "
                            "encode_tagged(...) or encode_batch(...) so the frame "
                            "stays length-prefixed",
                        )
                    )
            for child in ast.iter_child_nodes(node):
                walk(child, function)

        walk(tree, None)
        return violations

    @staticmethod
    def _sends_frame(call: ast.Call) -> bool:
        if len(call.args) != 1:
            return False
        argument = call.args[0]
        return (
            isinstance(argument, ast.Call)
            and isinstance(argument.func, ast.Name)
            and argument.func.id in ("encode_message", "encode_tagged", "encode_batch")
        )


class BoundedLogBufferRule(LintRule):
    """RL006: in-memory log/record buffers must be bounded and lock-guarded.

    The workload log (and any future event/trace buffer) is shared state on
    a long-lived engine: every query appends to it, often from serving
    threads.  Two failure modes are banned structurally:

    * **unbounded growth** — a plain ``list`` (or a ``deque`` without
      ``maxlen``) assigned to a log-like attribute grows without limit
      under sustained traffic; buffers must be ring buffers
      (``deque(maxlen=...)``).
    * **unguarded writers** — a class holding such a buffer must own a
      ``threading.Lock``/``RLock`` and only mutate the buffer inside
      ``with self.<lock>``; a bare ``self._records.append(...)`` races
      concurrent readers and other writers.

    An attribute is log-like when any ``_``-separated segment of its name
    is ``log``/``logs``/``record``/``records``/``buffer``/``buffers``/
    ``history``/``event``/``events``/``trace``/``traces`` (segment-wise, so
    ``catalog`` never matches).

    Regression note: clean at introduction — ``WorkloadLog`` was built as a
    ``deque(maxlen=capacity)`` behind a ``threading.Lock``.  The rule keeps
    every future log writer shaped the same way.
    """

    name = "RL006"
    description = "log/record buffers must be bounded ring buffers mutated under a lock"

    _SEGMENTS = {
        "log",
        "logs",
        "record",
        "records",
        "buffer",
        "buffers",
        "history",
        "event",
        "events",
        "trace",
        "traces",
    }
    _MUTATORS = (
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "clear",
        "pop",
        "popleft",
        "remove",
    )

    def applies_to(self, path: Path) -> bool:
        return _in_scope(path, ("src/repro/",))

    def _log_like(self, attr: str) -> bool:
        return bool(self._SEGMENTS & set(attr.lower().split("_")))

    @staticmethod
    def _is_deque_call(value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        if isinstance(func, ast.Name):
            return func.id == "deque"
        return isinstance(func, ast.Attribute) and func.attr == "deque"

    @staticmethod
    def _has_maxlen(value: ast.Call) -> bool:
        if any(keyword.arg == "maxlen" for keyword in value.keywords):
            return True
        return len(value.args) >= 2  # deque(iterable, maxlen)

    def check(self, tree: ast.Module, source: str, path: Path) -> list[LintViolation]:
        violations: list[LintViolation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                self._check_class(node, path, violations)
        return violations

    def _check_class(
        self, klass: ast.ClassDef, path: Path, violations: list[LintViolation]
    ) -> None:
        init = next(
            (
                node
                for node in klass.body
                if isinstance(node, ast.FunctionDef) and node.name == "__init__"
            ),
            None,
        )
        if init is None:
            return
        buffers: set[str] = set()
        for target, value in _init_assignments(init):
            attr = _self_attribute_target(target)
            if attr is None or not self._log_like(attr):
                continue
            is_list = isinstance(value, (ast.List, ast.ListComp)) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "list"
            )
            if is_list:
                violations.append(
                    self.violation(
                        path,
                        value,
                        f"'self.{attr}' is an unbounded list buffer; use "
                        "deque(maxlen=...) so the log cannot grow without limit",
                    )
                )
                continue
            if self._is_deque_call(value):
                if not self._has_maxlen(value):  # type: ignore[arg-type]
                    violations.append(
                        self.violation(
                            path,
                            value,
                            f"'self.{attr}' is a deque without maxlen; ring buffers "
                            "must be bounded",
                        )
                    )
                buffers.add(attr)
        if not buffers:
            return
        locks = _lock_attributes(init)
        if not locks:
            violations.append(
                self.violation(
                    path,
                    init,
                    f"class '{klass.name}' holds log buffer(s) "
                    f"{sorted(buffers)} but owns no threading.Lock/RLock to "
                    "guard writers",
                )
            )
            return
        for method in klass.body:
            if isinstance(method, ast.FunctionDef) and method.name != "__init__":
                self._check_method(method, locks, buffers, path, violations)

    def _check_method(
        self,
        method: ast.FunctionDef,
        locks: set[str],
        buffers: set[str],
        path: Path,
        violations: list[LintViolation],
    ) -> None:
        def walk(node: ast.AST, locked: bool) -> None:
            if isinstance(node, ast.With):
                holds = locked or any(
                    _is_self_attribute(item.context_expr, locks) for item in node.items
                )
                for child in ast.iter_child_nodes(node):
                    walk(child, holds)
                return
            mutated = self._mutated_buffer(node, buffers)
            if mutated is not None and not locked:
                violations.append(
                    self.violation(
                        path,
                        node,
                        f"'{method.name}' mutates log buffer 'self.{mutated}' "
                        "outside 'with self.<lock>'",
                    )
                )
            for child in ast.iter_child_nodes(node):
                walk(child, locked)

        walk(method, locked=False)

    def _mutated_buffer(self, node: ast.AST, buffers: set[str]) -> str | None:
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) and _is_self_attribute(
                    target.value, buffers
                ):
                    return target.value.attr  # type: ignore[union-attr]
                if _is_self_attribute(target, buffers):
                    return target.attr  # type: ignore[union-attr]
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in self._MUTATORS
            and _is_self_attribute(node.func.value, buffers)
        ):
            return node.func.value.attr  # type: ignore[union-attr]
        return None


#: the rule set scripts/repro_lint.py runs, in report order
ALL_RULES: list[LintRule] = [
    StableSortRule(),
    OrderedGatherRule(),
    LockedCacheMutationRule(),
    NoWallClockRule(),
    LengthPrefixedWriteRule(),
    BoundedLogBufferRule(),
]
