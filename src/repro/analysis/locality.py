"""Row-locality analysis: which parts of a plan may scatter across shards.

**The bit-identity contract.**  Sharded execution must return exactly what
the unsharded engine returns — scores, rows and tie order.  The merge
kernels are input-row-order-sensitive, so only **row-local** plan segments
may be scattered: maximal ``SELECT``/``WEIGHT`` chains directly above a scan
of a partitioned table, optionally capped by a single ``TOP``.  Everything
else must run on the coordinator over gathered (original-row-order) input.

This module is the single source of truth for that judgment.  It used to
live inside :mod:`repro.engine.executors`; it now sits in the analysis layer
so the static verifier can *classify* a plan (scatterable segments vs.
coordinator remainder) with exactly the same code path the
``ShardedExecutor``/``PoolExecutor`` use to *execute* it — the two can never
disagree, because :func:`classify` and
:meth:`~repro.engine.executors.ScatterGatherExecutor.execute_plan` both call
:func:`extract_segments`.

The executors re-export every name below, so existing imports from
``repro.engine.executors`` keep working.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import EngineError
from repro.pra.plan import (
    PraBayes,
    PraJoin,
    PraParam,
    PraPlan,
    PraProject,
    PraScan,
    PraSelect,
    PraSubtract,
    PraTop,
    PraUnite,
    PraWeight,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.pra.relation import ProbabilisticRelation

#: parameter name binding a shard's augmented fragment into a segment plan
FRAGMENT_PARAM = "__shard_fragment__"


@dataclass
class ScatterSegment:
    """One scatterable subtree: a row-local chain over a partitioned scan."""

    plan: PraPlan  # the original subtree (chain, optionally under one TOP)
    table: str
    top_k: int | None = None  # set when the subtree root is a TOP node

    def shard_plan(self) -> PraPlan:
        """The per-shard plan: the same chain with the scan leaf replaced
        by the fragment parameter."""
        return _replace_scan(self.plan, PraParam(FRAGMENT_PARAM))

    def gather(self, results: "Sequence[ProbabilisticRelation]") -> "ProbabilisticRelation":
        # the gather kernels live with the executors; importing lazily keeps
        # the analysis layer free of any engine dependency
        from repro.engine.executors import gather_concat, gather_top

        if self.top_k is not None:
            return gather_top(results, self.top_k)
        return gather_concat(results)


def _chain_table(plan: PraPlan, partitioned: Callable[[str], bool]) -> str | None:
    """The partitioned table under a pure SELECT/WEIGHT chain, else ``None``."""
    node = plan
    while isinstance(node, (PraSelect, PraWeight)):
        node = node.child
    if isinstance(node, PraScan) and partitioned(node.table):
        return node.table
    return None


def _replace_scan(plan: PraPlan, leaf: PraPlan) -> PraPlan:
    if isinstance(plan, PraScan):
        return leaf
    if isinstance(plan, PraSelect):
        return PraSelect(_replace_scan(plan.child, leaf), plan.predicate)
    if isinstance(plan, PraWeight):
        return PraWeight(_replace_scan(plan.child, leaf), plan.factor)
    if isinstance(plan, PraTop):
        return PraTop(_replace_scan(plan.child, leaf), plan.k)
    raise EngineError(f"cannot scatter plan node {type(plan).__name__}")


def match_segment(plan: PraPlan, partitioned: Callable[[str], bool]) -> ScatterSegment | None:
    """Match the largest scatterable segment rooted at ``plan``."""
    if isinstance(plan, PraTop):
        table = _chain_table(plan.child, partitioned)
        if table is not None:
            return ScatterSegment(plan, table, top_k=plan.k)
    table = _chain_table(plan, partitioned)
    if table is not None:
        return ScatterSegment(plan, table)
    return None


def extract_segments(
    plan: PraPlan,
    partitioned: Callable[[str], bool],
    segments: list[tuple[str, ScatterSegment]],
) -> PraPlan:
    """Replace every scatterable segment with a gather parameter.

    Returns the rewritten coordinator plan; ``segments`` collects
    ``(parameter name, segment)`` pairs in discovery order.
    """
    segment = match_segment(plan, partitioned)
    if segment is not None:
        name = f"__gather_{len(segments)}__"
        segments.append((name, segment))
        return PraParam(name)
    children = plan.children()
    if not children:
        return plan
    rebuilt = [extract_segments(child, partitioned, segments) for child in children]
    if all(new is old for new, old in zip(rebuilt, children)):
        return plan
    return _with_children(plan, rebuilt)


def _with_children(plan: PraPlan, children: list[PraPlan]) -> PraPlan:
    if isinstance(plan, PraSelect):
        return PraSelect(children[0], plan.predicate)
    if isinstance(plan, PraProject):
        return PraProject(children[0], plan.positions, plan.assumption, plan.output_names)
    if isinstance(plan, PraJoin):
        return PraJoin(children[0], children[1], plan.conditions, plan.assumption)
    if isinstance(plan, PraUnite):
        return PraUnite(children[0], children[1], plan.assumption)
    if isinstance(plan, PraSubtract):
        return PraSubtract(children[0], children[1])
    if isinstance(plan, PraBayes):
        return PraBayes(children[0], plan.evidence_positions)
    if isinstance(plan, PraWeight):
        return PraWeight(children[0], plan.factor)
    if isinstance(plan, PraTop):
        return PraTop(children[0], plan.k)
    raise EngineError(f"cannot rebuild plan node {type(plan).__name__}")


# ---------------------------------------------------------------------------
# static classification
# ---------------------------------------------------------------------------


@dataclass
class LocalityReport:
    """Static shard-safety classification of one plan.

    Produced by :func:`classify` via the same :func:`extract_segments` walk
    the scatter-gather executors run at dispatch time, so the classification
    is bit-identical to the runtime decision by construction.
    """

    #: scatterable segments in discovery order
    segments: list[ScatterSegment] = field(default_factory=list)
    #: the gather parameter name of each segment, aligned with ``segments``
    parameter_names: list[str] = field(default_factory=list)
    #: the rewritten remainder that runs on the coordinator
    coordinator_plan: PraPlan | None = None

    @property
    def scatterable(self) -> bool:
        """True when at least one subtree ships to the shards."""
        return bool(self.segments)

    @property
    def fully_scattered(self) -> bool:
        """True when the whole plan is one segment (coordinator only gathers)."""
        return len(self.segments) == 1 and isinstance(self.coordinator_plan, PraParam)

    def render(self) -> str:
        if not self.scatterable:
            return "scatter: coordinator-only (no row-local segment over a partitioned table)"
        parts = []
        for segment in self.segments:
            capped = f", top {segment.top_k}" if segment.top_k is not None else ""
            parts.append(f"{segment.table}{capped}")
        where = "whole plan" if self.fully_scattered else "segments"
        return f"scatter: {len(self.segments)} segment(s) over [{', '.join(parts)}] ({where})"

    def to_dict(self) -> dict[str, Any]:
        return {
            "scatterable": self.scatterable,
            "fully_scattered": self.fully_scattered,
            "segments": [
                {"parameter": name, "table": segment.table, "top_k": segment.top_k}
                for name, segment in zip(self.parameter_names, self.segments)
            ],
        }


def classify(plan: PraPlan, partitioned: Callable[[str], bool]) -> LocalityReport:
    """Statically classify ``plan`` against a shard layout.

    ``partitioned`` is the shard map's membership test
    (:meth:`~repro.storage.shards.ShardMap.is_partitioned`).  The walk is the
    executors' own :func:`extract_segments`, so a plan the report labels
    scatterable is exactly a plan the executors scatter.
    """
    collected: list[tuple[str, ScatterSegment]] = []
    coordinator = extract_segments(plan, partitioned, collected)
    return LocalityReport(
        segments=[segment for _name, segment in collected],
        parameter_names=[name for name, _segment in collected],
        coordinator_plan=coordinator,
    )
