"""The static plan verifier: schema/type/assumption inference over PRA plans.

:func:`verify_plan` walks a :class:`~repro.pra.plan.PraPlan` bottom-up and
derives each node's output schema — value-column names, dtypes, and the
duplicate-freeness bit of :mod:`repro.analysis.lattice` — from catalog
metadata alone, without touching any data.  Along the way it emits
:class:`~repro.analysis.diagnostics.Diagnostic` records:

* **errors** are findings that make evaluation raise (or, for
  ``reserved-column-name``, silently corrupt the result): unknown tables,
  out-of-range positional references, dtype mismatches evaluation rejects,
  unbound parameters, DISJOINT joins, out-of-range weight factors;
* **warnings** are statically suspicious but evaluable: comparisons numpy
  resolves silently, lossy UNITE coercions, DISJOINT/SUBSUMED merges over
  inputs that may contain duplicates (the duplicate-freeness lattice),
  schemas the verifier cannot see (lazy tables in no-hydration mode);
* **notes** record what the optimizer may do (TOP-pushdown legality) and
  the shard-safety classification of :mod:`repro.analysis.locality`.

The error rules mirror the raise sites of :mod:`repro.pra.operators`,
:mod:`repro.pra.evaluator` and :mod:`repro.relational.expressions` one by
one, which is what the Hypothesis agreement suite in ``tests/analysis``
checks: a plan that verifies without errors never raises a schema, binding
or assumption error when evaluated.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analysis.lattice import produces_distinct
from repro.analysis.locality import classify
from repro.errors import ReproError
from repro.pra.assumptions import Assumption
from repro.pra.expressions import PositionalRef
from repro.pra.plan import (
    PraBayes,
    PraJoin,
    PraParam,
    PraPlan,
    PraProject,
    PraScan,
    PraSelect,
    PraSubtract,
    PraTop,
    PraUnite,
    PraValues,
    PraWeight,
)
from repro.pra.relation import PROBABILITY_COLUMN
from repro.relational.column import DataType
from repro.relational.expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    Literal,
    UnaryOp,
)
from repro.relational.functions import FunctionRegistry, default_registry
from repro.relational.schema import Field, Schema

if TYPE_CHECKING:  # pragma: no cover
    from repro.pra.relation import ProbabilisticRelation
    from repro.relational.database import Database

_COMPARISONS = {"=", "<>", "<", "<=", ">", ">="}
_ARITHMETIC = {"+", "-", "*", "/"}
_BOOLEAN = {"and", "or"}


# ---------------------------------------------------------------------------
# schema providers
# ---------------------------------------------------------------------------


class SchemaProvider:
    """Resolves scanned table names to schemas without evaluating plans."""

    def exists(self, name: str) -> bool:
        raise NotImplementedError

    def schema_of(self, name: str) -> Schema | None:
        """Full relation schema of ``name``, or ``None`` when unknowable."""
        raise NotImplementedError


class EmptyProvider(SchemaProvider):
    """No catalog at all: every scan is an unknown table (the default)."""

    def exists(self, name: str) -> bool:
        return False

    def schema_of(self, name: str) -> Schema | None:
        return None


class CatalogSchemaProvider(SchemaProvider):
    """Schemas from a :class:`~repro.relational.database.Database` catalog.

    Lazy snapshot tables usually answer without touching data: their
    manifests declare the schema at registration
    (:meth:`~repro.relational.catalog.Catalog.declared_schema`).  With
    ``hydrate=True`` (the default for ``Query.check()`` /
    ``Engine.analyze()``) undeclared lazy tables are hydrated and views are
    materialized once (through the database's materialization cache) so
    every reachable schema is known — no false "ok".  With ``hydrate=False``
    (the serving router's pre-dispatch gate) the provider never runs a
    loader: tables without a declared schema and views report an unknown
    schema, which the verifier downgrades to an ``unknown-schema`` warning.
    """

    def __init__(self, database: "Database", *, hydrate: bool = True) -> None:
        self._database = database
        self._hydrate = hydrate

    def exists(self, name: str) -> bool:
        return self._database.catalog.exists(name)

    def schema_of(self, name: str) -> Schema | None:
        catalog = self._database.catalog
        if catalog.has_view(name):
            if not self._hydrate:
                return None
            return self._database.query(name).schema
        if not catalog.has_table(name):
            return None
        declared = catalog.declared_schema(name)
        if declared is not None:
            return declared
        if not self._hydrate:
            return None
        return catalog.table(name).schema


# ---------------------------------------------------------------------------
# per-node facts
# ---------------------------------------------------------------------------


@dataclass
class NodeFacts:
    """What the verifier knows about one node's output."""

    #: schema of the value columns (``p`` excluded); ``None`` when unknown
    schema: Schema | None
    #: the duplicate-freeness lattice value of the subtree
    duplicate_free: bool

    @property
    def arity(self) -> int | None:
        return None if self.schema is None else len(self.schema)


_UNKNOWN = NodeFacts(schema=None, duplicate_free=False)


# ---------------------------------------------------------------------------
# the verifier
# ---------------------------------------------------------------------------


class PlanVerifier:
    """One verification walk; use :func:`verify_plan` unless composing."""

    def __init__(
        self,
        *,
        schema_provider: SchemaProvider | None = None,
        functions: FunctionRegistry | None = None,
        parameters: Iterable[str] = (),
        bindings: "Mapping[str, ProbabilisticRelation] | None" = None,
        partitioned: Callable[[str], bool] | None = None,
    ) -> None:
        self._provider = schema_provider or EmptyProvider()
        self._functions = functions if functions is not None else default_registry()
        self._bindings = dict(bindings or {})
        self._declared = set(parameters) | set(self._bindings)
        self._partitioned = partitioned
        self._report = AnalysisReport()

    # -- driver ----------------------------------------------------------------

    def verify(self, plan: PraPlan) -> AnalysisReport:
        facts = self._visit(plan, ())
        if facts.schema is not None:
            self._report.output_columns = [
                (field.name, field.dtype.value) for field in facts.schema
            ]
        if self._partitioned is not None:
            locality = classify(plan, self._partitioned)
            self._report.locality = locality
            self._note("scatter", locality.render(), (), plan)
        return self._report

    # -- diagnostics helpers ---------------------------------------------------

    def _emit(
        self, code: str, severity: Severity, message: str, path: tuple[int, ...], plan: PraPlan
    ) -> None:
        self._report.add(
            Diagnostic(
                code=code,
                severity=severity,
                message=message,
                path=path,
                node=plan._describe_self(),
            )
        )

    def _error(self, code: str, message: str, path: tuple[int, ...], plan: PraPlan) -> None:
        self._emit(code, Severity.ERROR, message, path, plan)

    def _warn(self, code: str, message: str, path: tuple[int, ...], plan: PraPlan) -> None:
        self._emit(code, Severity.WARNING, message, path, plan)

    def _note(self, code: str, message: str, path: tuple[int, ...], plan: PraPlan) -> None:
        self._emit(code, Severity.NOTE, message, path, plan)

    # -- node dispatch ---------------------------------------------------------

    def _visit(self, plan: PraPlan, path: tuple[int, ...]) -> NodeFacts:
        if isinstance(plan, PraScan):
            return self._visit_scan(plan, path)
        if isinstance(plan, PraValues):
            return NodeFacts(plan.relation.values_relation().schema, duplicate_free=False)
        if isinstance(plan, PraParam):
            return self._visit_param(plan, path)
        if isinstance(plan, PraSelect):
            return self._visit_select(plan, path)
        if isinstance(plan, PraProject):
            return self._visit_project(plan, path)
        if isinstance(plan, PraJoin):
            return self._visit_join(plan, path)
        if isinstance(plan, PraUnite):
            return self._visit_unite(plan, path)
        if isinstance(plan, PraSubtract):
            return self._visit_subtract(plan, path)
        if isinstance(plan, PraBayes):
            return self._visit_bayes(plan, path)
        if isinstance(plan, PraWeight):
            return self._visit_weight(plan, path)
        if isinstance(plan, PraTop):
            return self._visit_top(plan, path)
        self._error(
            "unknown-node", f"unrecognized plan node {type(plan).__name__}", path, plan
        )
        return _UNKNOWN

    # -- leaves ----------------------------------------------------------------

    def _visit_scan(self, plan: PraScan, path: tuple[int, ...]) -> NodeFacts:
        name = plan.table
        if not self._provider.exists(name):
            self._error(
                "unknown-table", f"table or view {name!r} is not in the catalog", path, plan
            )
            return _UNKNOWN
        try:
            schema = self._provider.schema_of(name)
        except ReproError as error:
            self._error(
                "unknown-table", f"view {name!r} failed to resolve: {error}", path, plan
            )
            return _UNKNOWN
        if schema is None:
            self._warn(
                "unknown-schema",
                f"the schema of {name!r} is not statically known "
                "(lazy table or view, hydration disabled); downstream checks are skipped",
                path,
                plan,
            )
            return _UNKNOWN
        if PROBABILITY_COLUMN in schema.names:
            # lifting requires 'p' to be the trailing FLOAT probability column
            if (
                schema.names[-1] != PROBABILITY_COLUMN
                or schema.dtype_of(PROBABILITY_COLUMN) is not DataType.FLOAT
            ):
                self._error(
                    "invalid-probability-column",
                    f"table {name!r} has a column named {PROBABILITY_COLUMN!r} that is "
                    "not a trailing FLOAT column; it cannot be lifted to a "
                    "probabilistic relation",
                    path,
                    plan,
                )
                return _UNKNOWN
            value_fields = list(schema)[:-1]
        else:
            value_fields = list(schema)
        return NodeFacts(Schema(value_fields), duplicate_free=False)

    def _visit_param(self, plan: PraParam, path: tuple[int, ...]) -> NodeFacts:
        bound = self._bindings.get(plan.name)
        if bound is not None:
            return NodeFacts(bound.values_relation().schema, duplicate_free=False)
        if plan.name in self._declared:
            return _UNKNOWN
        self._error(
            "unbound-parameter",
            f"unbound plan parameter {plan.name!r}; "
            f"declared parameters: {sorted(self._declared)}",
            path,
            plan,
        )
        return _UNKNOWN

    # -- unary operators -------------------------------------------------------

    def _visit_select(self, plan: PraSelect, path: tuple[int, ...]) -> NodeFacts:
        child = self._visit(plan.child, path + (0,))
        if child.schema is not None:
            dtype = self._check_expression(plan.predicate, child.schema, path, plan)
            if dtype is not None and dtype is not DataType.BOOL:
                self._error(
                    "predicate-not-boolean",
                    f"selection predicate must evaluate to a boolean column, "
                    f"got {dtype.value}",
                    path,
                    plan,
                )
        return child

    def _visit_project(self, plan: PraProject, path: tuple[int, ...]) -> NodeFacts:
        child = self._visit(plan.child, path + (0,))
        broken = False

        if plan.output_names is not None and len(plan.output_names) != len(plan.positions):
            self._error(
                "output-arity-mismatch",
                f"output_names must match the projected columns: "
                f"{len(plan.output_names)} name(s) for {len(plan.positions)} position(s)",
                path,
                plan,
            )
            broken = True
        if plan.output_names is not None:
            duplicates = sorted(
                {name for name in plan.output_names if plan.output_names.count(name) > 1}
            )
            if duplicates:
                self._error(
                    "duplicate-output-column",
                    f"duplicate output column names: {duplicates}",
                    path,
                    plan,
                )
                broken = True
            if PROBABILITY_COLUMN in plan.output_names:
                self._error(
                    "reserved-column-name",
                    f"output column name {PROBABILITY_COLUMN!r} is reserved for the "
                    "probability column; projecting onto it silently discards the value "
                    "column",
                    path,
                    plan,
                )
                broken = True

        duplicate_positions = sorted(
            {position for position in plan.positions if plan.positions.count(position) > 1}
        )
        if duplicate_positions:
            # the kernel selects the duplicated columns before any rename, so
            # this raises at evaluation even with distinct output names
            self._error(
                "duplicate-output-column",
                f"positions {duplicate_positions} project the same column more than once",
                path,
                plan,
            )
            broken = True

        if child.schema is None:
            return NodeFacts(None, duplicate_free=True)
        arity = len(child.schema)
        resolved: list[Field] = []
        for position in plan.positions:
            if not 1 <= position <= arity:
                self._error(
                    "position-out-of-range",
                    f"positional reference ${position} out of range; the relation has "
                    f"{arity} value columns ({list(child.schema.names)})",
                    path,
                    plan,
                )
                broken = True
                continue
            resolved.append(child.schema.fields[position - 1])
        if broken:
            return NodeFacts(None, duplicate_free=True)
        if plan.output_names is not None:
            resolved = [
                Field(name, field.dtype)
                for name, field in zip(plan.output_names, resolved)
            ]
        return NodeFacts(Schema(resolved), duplicate_free=True)

    def _visit_weight(self, plan: PraWeight, path: tuple[int, ...]) -> NodeFacts:
        child = self._visit(plan.child, path + (0,))
        if not 0 <= plan.factor <= 1:
            self._error(
                "weight-out-of-range",
                f"weight factor must lie in [0, 1] to keep probabilities valid, "
                f"got {plan.factor}",
                path,
                plan,
            )
        return child

    def _visit_bayes(self, plan: PraBayes, path: tuple[int, ...]) -> NodeFacts:
        child = self._visit(plan.child, path + (0,))
        if child.schema is not None:
            arity = len(child.schema)
            for position in plan.evidence_positions:
                if not 1 <= position <= arity:
                    self._error(
                        "position-out-of-range",
                        f"positional reference ${position} out of range; the relation "
                        f"has {arity} value columns ({list(child.schema.names)})",
                        path,
                        plan,
                    )
        return child

    def _visit_top(self, plan: PraTop, path: tuple[int, ...]) -> NodeFacts:
        child = self._visit(plan.child, path + (0,))
        self._note_top_pushdown(plan, path)
        return child

    def _note_top_pushdown(self, plan: PraTop, path: tuple[int, ...]) -> None:
        """Record what the optimizer's rank-aware rewrites may do with this TOP."""
        below = plan.child
        if isinstance(below, PraTop):
            self._note(
                "top-pushdown",
                f"TOP {plan.k} absorbs the inner TOP {below.k} (min of the two)",
                path,
                plan,
            )
        elif isinstance(below, PraWeight):
            if below.factor > 0:
                self._note(
                    "top-pushdown",
                    f"TOP {plan.k} pushes below WEIGHT {below.factor} "
                    "(positive scaling preserves the ranking)",
                    path,
                    plan,
                )
            else:
                self._note(
                    "top-pushdown",
                    "TOP pushdown blocked: WEIGHT 0.0 collapses every probability, "
                    "so pre-scaling and post-scaling top-k differ",
                    path,
                    plan,
                )
        elif isinstance(below, PraUnite):
            if below.assumption is not Assumption.SUBSUMED:
                self._note(
                    "top-pushdown",
                    f"TOP pushdown blocked: UNITE {below.assumption.name} merges can "
                    "rank a tuple above either input's top-k; only SUBSUMED is safe",
                    path,
                    plan,
                )
            elif not (produces_distinct(below.left) and produces_distinct(below.right)):
                self._note(
                    "top-pushdown",
                    "TOP pushdown blocked: a UNITE side is not provably duplicate-free, "
                    "so per-side pruning could crowd out merged groups",
                    path,
                    plan,
                )
            else:
                self._note(
                    "top-pushdown",
                    f"TOP {plan.k} prunes both sides of the SUBSUMED UNITE "
                    "(duplicate-free sides)",
                    path,
                    plan,
                )
        elif isinstance(below, (PraBayes, PraSubtract, PraSelect, PraProject, PraJoin)):
            names = {
                PraBayes: "BAYES",
                PraSubtract: "SUBTRACT",
                PraSelect: "SELECT",
                PraProject: "PROJECT",
                PraJoin: "JOIN",
            }
            self._note(
                "top-pushdown",
                f"TOP cannot cross {names[type(below)]}; the subtree below is "
                "evaluated in full",
                path,
                plan,
            )

    # -- binary operators ------------------------------------------------------

    def _visit_join(self, plan: PraJoin, path: tuple[int, ...]) -> NodeFacts:
        left = self._visit(plan.left, path + (0,))
        right = self._visit(plan.right, path + (1,))
        if plan.assumption is Assumption.DISJOINT:
            self._error(
                "disjoint-join",
                "a disjoint join always yields probability zero; not supported",
                path,
                plan,
            )
        for index, (left_position, right_position) in enumerate(plan.conditions):
            left_dtype = self._positional_dtype(
                left, left_position, path, plan, side="left"
            )
            right_dtype = self._positional_dtype(
                right, right_position, path, plan, side="right"
            )
            if (
                left_dtype is not None
                and right_dtype is not None
                and left_dtype is not right_dtype
            ):
                self._warn(
                    "suspicious-comparison",
                    f"join condition ${left_position}=${right_position} (condition "
                    f"{index + 1}) compares {left_dtype.value} with "
                    f"{right_dtype.value}; rows will never match",
                    path,
                    plan,
                )
        if left.schema is None or right.schema is None:
            schema = None
        else:
            schema = left.schema.concat(right.schema)
        return NodeFacts(schema, duplicate_free=left.duplicate_free and right.duplicate_free)

    def _positional_dtype(
        self,
        facts: NodeFacts,
        position: int,
        path: tuple[int, ...],
        plan: PraPlan,
        *,
        side: str,
    ) -> DataType | None:
        if facts.schema is None:
            return None
        arity = len(facts.schema)
        if not 1 <= position <= arity:
            self._error(
                "position-out-of-range",
                f"positional reference ${position} out of range on the {side} side; "
                f"the relation has {arity} value columns ({list(facts.schema.names)})",
                path,
                plan,
            )
            return None
        return facts.schema.fields[position - 1].dtype

    def _visit_unite(self, plan: PraUnite, path: tuple[int, ...]) -> NodeFacts:
        left = self._visit(plan.left, path + (0,))
        right = self._visit(plan.right, path + (1,))
        self._check_merge_assumption(plan, left, right, path)
        if left.schema is not None and right.schema is not None:
            if len(left.schema) != len(right.schema):
                self._error(
                    "arity-mismatch",
                    f"union requires inputs with the same number of value columns, "
                    f"got {len(left.schema)} and {len(right.schema)}",
                    path,
                    plan,
                )
                return NodeFacts(None, duplicate_free=True)
            self._check_unite_dtypes(plan, left.schema, right.schema, path)
        return NodeFacts(left.schema, duplicate_free=True)

    def _check_unite_dtypes(
        self, plan: PraUnite, left: Schema, right: Schema, path: tuple[int, ...]
    ) -> None:
        # merged rows are rebuilt under the LEFT schema, so the right side's
        # values are coerced column by column to the left side's dtypes
        for position, (left_field, right_dtype) in enumerate(
            zip(left, right.dtypes), start=1
        ):
            left_dtype = left_field.dtype
            if left_dtype is right_dtype:
                continue
            if right_dtype is DataType.STRING and left_dtype is not DataType.STRING:
                self._error(
                    "union-type-mismatch",
                    f"column ${position}: the right side's {right_dtype.value} values "
                    f"cannot be coerced to the left side's {left_dtype.value} column",
                    path,
                    plan,
                )
            elif left_dtype is DataType.FLOAT and right_dtype is DataType.INT:
                continue  # lossless widening
            else:
                self._warn(
                    "union-type-mismatch",
                    f"column ${position}: the right side's {right_dtype.value} values "
                    f"are coerced to the left side's {left_dtype.value} column "
                    "(lossy; merged rows may be surprising)",
                    path,
                    plan,
                )

    def _check_merge_assumption(
        self, plan: PraUnite, left: NodeFacts, right: NodeFacts, path: tuple[int, ...]
    ) -> None:
        """The duplicate-freeness lattice applied to union merges.

        DISJOINT sums the probabilities of equal value tuples: duplicates
        *within* one input double-count the same event (and can saturate the
        [0, 1] clamp).  SUBSUMED keeps the max — the premise of the
        optimizer's TOP-into-UNITE prune — and collapses within-side
        duplicates that may represent distinct events.  INDEPENDENT (noisy-or)
        is well-defined over multisets, so it is not flagged.
        """
        if plan.assumption is Assumption.INDEPENDENT:
            return
        unsound = [
            side
            for side, facts in (("left", left), ("right", right))
            if not facts.duplicate_free
        ]
        if not unsound:
            return
        self._warn(
            "assumption-unsound",
            f"UNITE {plan.assumption.name} merges probabilities of equal value "
            f"tuples, but the {' and '.join(unsound)} input(s) are not provably "
            "duplicate-free; duplicates within one input are merged as if they "
            "were the same event",
            path,
            plan,
        )

    def _visit_subtract(self, plan: PraSubtract, path: tuple[int, ...]) -> NodeFacts:
        left = self._visit(plan.left, path + (0,))
        right = self._visit(plan.right, path + (1,))
        if left.schema is not None and right.schema is not None:
            if len(left.schema) != len(right.schema):
                self._error(
                    "arity-mismatch",
                    "subtraction requires inputs with the same number of value columns, "
                    f"got {len(left.schema)} and {len(right.schema)}",
                    path,
                    plan,
                )
                return NodeFacts(None, duplicate_free=left.duplicate_free)
            for position, (left_dtype, right_dtype) in enumerate(
                zip(left.schema.dtypes, right.schema.dtypes), start=1
            ):
                if left_dtype is not right_dtype:
                    self._warn(
                        "subtract-type-mismatch",
                        f"column ${position}: subtracting {right_dtype.value} rows from "
                        f"a {left_dtype.value} column; no row can match, so the "
                        "subtraction never reduces any probability",
                        path,
                        plan,
                    )
        return NodeFacts(left.schema, duplicate_free=left.duplicate_free)

    # -- expression checking ---------------------------------------------------

    def _check_expression(
        self,
        expression: Expression,
        value_schema: Schema,
        path: tuple[int, ...],
        plan: PraPlan,
    ) -> DataType | None:
        """Type-check ``expression`` against the node's evaluation schema.

        Mirrors the raise semantics of ``Expression.evaluate`` — which
        ``output_type`` alone does not: comparisons and boolean connectives
        type-check operands at evaluation time only.  Returns the static
        result dtype, or ``None`` when it cannot be derived.
        """
        # predicates evaluate over the full relation: value columns plus 'p'
        schema = Schema(list(value_schema) + [Field(PROBABILITY_COLUMN, DataType.FLOAT)])
        return self._expression_dtype(expression, schema, value_schema, path, plan)

    def _expression_dtype(
        self,
        expression: Expression,
        schema: Schema,
        value_schema: Schema,
        path: tuple[int, ...],
        plan: PraPlan,
    ) -> DataType | None:
        if isinstance(expression, Literal):
            return expression.dtype
        if isinstance(expression, ColumnRef):
            if expression.name not in schema:
                self._error(
                    "unknown-column",
                    f"unknown column {expression.name!r}; available columns: "
                    f"{list(schema.names)}",
                    path,
                    plan,
                )
                return None
            return schema.dtype_of(expression.name)
        if isinstance(expression, PositionalRef):
            arity = len(value_schema)
            if expression.position > arity:
                self._error(
                    "position-out-of-range",
                    f"positional reference ${expression.position} out of range; "
                    f"the relation has {arity} value columns "
                    f"({list(value_schema.names)})",
                    path,
                    plan,
                )
                return None
            return value_schema.fields[expression.position - 1].dtype
        if isinstance(expression, BinaryOp):
            return self._binary_dtype(expression, schema, value_schema, path, plan)
        if isinstance(expression, UnaryOp):
            operand = self._expression_dtype(
                expression.operand, schema, value_schema, path, plan
            )
            if expression.op == "not":
                if operand is not None and operand is not DataType.BOOL:
                    self._error(
                        "type-mismatch",
                        f"NOT requires a boolean operand, got {operand.value}",
                        path,
                        plan,
                    )
                return DataType.BOOL
            if operand is not None and not operand.is_numeric():
                self._error(
                    "type-mismatch",
                    f"negation requires a numeric operand, got {operand.value}",
                    path,
                    plan,
                )
                return None
            return operand
        if isinstance(expression, InList):
            operand = self._expression_dtype(
                expression.operand, schema, value_schema, path, plan
            )
            if operand is not None:
                try:
                    value_dtypes = {DataType.of_value(value) for value in expression.values}
                except ReproError:
                    value_dtypes = set()
                if value_dtypes and operand not in value_dtypes:
                    rendered = sorted(dtype.value for dtype in value_dtypes)
                    self._warn(
                        "suspicious-comparison",
                        f"IN list of {rendered} values can never contain a "
                        f"{operand.value} operand",
                        path,
                        plan,
                    )
            return DataType.BOOL
        if isinstance(expression, FunctionCall):
            return self._function_dtype(expression, schema, value_schema, path, plan)
        return None

    def _binary_dtype(
        self,
        expression: BinaryOp,
        schema: Schema,
        value_schema: Schema,
        path: tuple[int, ...],
        plan: PraPlan,
    ) -> DataType | None:
        left = self._expression_dtype(expression.left, schema, value_schema, path, plan)
        right = self._expression_dtype(expression.right, schema, value_schema, path, plan)
        op = expression.op
        if op in _BOOLEAN:
            for dtype in (left, right):
                if dtype is not None and dtype is not DataType.BOOL:
                    self._error(
                        "type-mismatch",
                        f"boolean operator {op!r} requires boolean operands, "
                        f"got {dtype.value}",
                        path,
                        plan,
                    )
            return DataType.BOOL
        if op in _COMPARISONS:
            if left is None or right is None:
                return DataType.BOOL
            if DataType.STRING in (left, right):
                if left is not right:
                    self._error(
                        "type-mismatch",
                        f"cannot compare {left.value} with {right.value}",
                        path,
                        plan,
                    )
            elif left is not right and not (left.is_numeric() and right.is_numeric()):
                self._warn(
                    "suspicious-comparison",
                    f"comparing {left.value} with {right.value}; the comparison is "
                    "evaluated bitwise and is unlikely to mean what it says",
                    path,
                    plan,
                )
            return DataType.BOOL
        # arithmetic
        for dtype in (left, right):
            if dtype is not None and not dtype.is_numeric():
                self._error(
                    "type-mismatch",
                    f"arithmetic operator {op!r} requires numeric operands, "
                    f"got {dtype.value}",
                    path,
                    plan,
                )
                return None
        if op == "/":
            return DataType.FLOAT
        if left is None or right is None:
            return None
        if DataType.FLOAT in (left, right):
            return DataType.FLOAT
        return DataType.INT

    def _function_dtype(
        self,
        expression: FunctionCall,
        schema: Schema,
        value_schema: Schema,
        path: tuple[int, ...],
        plan: PraPlan,
    ) -> DataType | None:
        for argument in expression.args:
            self._expression_dtype(argument, schema, value_schema, path, plan)
        if not self._functions.has_scalar(expression.name):
            self._error(
                "unknown-function",
                f"unknown scalar function {expression.name!r}",
                path,
                plan,
            )
            return None
        function = self._functions.scalar(expression.name)
        if len(expression.args) != function.arity:
            self._error(
                "arity-mismatch",
                f"function {function.name!r} expects {function.arity} arguments, "
                f"got {len(expression.args)}",
                path,
                plan,
            )
        return function.output_type


def verify_plan(
    plan: PraPlan,
    *,
    schema_provider: SchemaProvider | None = None,
    functions: FunctionRegistry | None = None,
    parameters: Iterable[str] = (),
    bindings: "Mapping[str, ProbabilisticRelation] | None" = None,
    partitioned: Callable[[str], bool] | None = None,
) -> AnalysisReport:
    """Statically verify ``plan``; see the module docstring for the rules.

    ``parameters`` declares :class:`~repro.pra.plan.PraParam` names that will
    be bound at execution time (their schemas stay opaque); ``bindings`` maps
    names to already-bound relations (their schemas participate fully).
    ``partitioned`` — typically
    :meth:`ShardMap.is_partitioned <repro.storage.shards.ShardMap.is_partitioned>` —
    enables the shard-safety classification.
    """
    verifier = PlanVerifier(
        schema_provider=schema_provider,
        functions=functions,
        parameters=parameters,
        bindings=bindings,
        partitioned=partitioned,
    )
    return verifier.verify(plan)
