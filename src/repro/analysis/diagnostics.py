"""Typed diagnostics for the static plan verifier.

A :class:`Diagnostic` pins one finding to one plan node: a stable machine
code (``unknown-table``, ``type-mismatch``, ...), a severity, a human
message, and *provenance* — the child-index path from the plan root plus the
node's own one-line description, so a diagnostic can be traced into the
``describe()`` rendering of the same plan.

An :class:`AnalysisReport` is the full result of one verification walk.  It
is plain data: ``ok`` summarizes it, ``render()`` pretty-prints it for
humans, ``to_dict()`` serializes it for the CLI/serving JSON surfaces, and
``raise_if_errors()`` converts error-severity findings into a single
:class:`~repro.errors.AnalysisError`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.locality import LocalityReport


class Severity(enum.Enum):
    """How bad a finding is: does evaluation raise, drift, or just inform."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    def __str__(self) -> str:
        return self.value


def render_path(path: tuple[int, ...]) -> str:
    """Render a child-index path from the root, e.g. ``plan.0.1``."""
    if not path:
        return "plan"
    return "plan." + ".".join(str(index) for index in path)


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the verifier, pinned to one plan node."""

    code: str
    severity: Severity
    message: str
    #: child-index path from the plan root (``()`` is the root itself)
    path: tuple[int, ...] = ()
    #: the node's one-line ``describe`` header, e.g. ``JOIN DISJOINT [$1=$1]``
    node: str = ""

    @property
    def path_text(self) -> str:
        return render_path(self.path)

    def render(self) -> str:
        where = self.path_text
        if self.node:
            where = f"{where} ({self.node})"
        return f"{self.severity}[{self.code}] {where}: {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "path": list(self.path),
            "node": self.node,
        }


@dataclass
class AnalysisReport:
    """The result of statically verifying one plan."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: output value columns of the plan root as ``(name, dtype-name)`` pairs,
    #: or ``None`` when the schema could not be derived statically
    output_columns: list[tuple[str, str]] | None = None
    #: every verified plan is probabilistic (value columns + ``p``)
    probabilistic: bool = True
    #: shard-safety classification, set when a shard layout was supplied
    locality: "LocalityReport | None" = None

    # -- accessors -------------------------------------------------------------

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def notes(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.NOTE]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was produced."""
        return not self.errors

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    # -- rendering -------------------------------------------------------------

    def render(self) -> str:
        lines: list[str] = []
        if self.ok:
            summary = "ok"
            if self.warnings:
                summary += f" ({len(self.warnings)} warning(s))"
            lines.append(summary)
        else:
            lines.append(f"{len(self.errors)} error(s)")
        if self.output_columns is not None:
            rendered = ", ".join(f"{name}: {dtype}" for name, dtype in self.output_columns)
            lines.append(f"output: ({rendered}, p: FLOAT)")
        for diagnostic in self.diagnostics:
            lines.append(diagnostic.render())
        if self.locality is not None:
            lines.append(self.locality.render())
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
        if self.output_columns is not None:
            payload["output"] = [
                {"name": name, "dtype": dtype} for name, dtype in self.output_columns
            ]
        if self.locality is not None:
            payload["scatter"] = self.locality.to_dict()
        return payload

    def raise_if_errors(self) -> None:
        """Raise :class:`AnalysisError` carrying the error diagnostics, if any."""
        errors = self.errors
        if not errors:
            return
        rendered = "; ".join(d.render() for d in errors)
        raise AnalysisError(f"plan failed static verification: {rendered}", errors)
