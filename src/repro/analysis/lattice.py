"""The duplicate-freeness lattice over PRA plans.

Several soundness arguments in this codebase hinge on one static property:
*can this plan ever emit two rows with equal value columns?*  The optimizer's
``TOP``-into-``UNITE`` prune rule requires both union sides to be
duplicate-free, and the verifier's assumption diagnostics
(:mod:`repro.analysis.verifier`) flag DISJOINT/SUBSUMED merges whose inputs
are not.  This module is the single shared source of truth for that
judgment, moved out of :mod:`repro.pra.optimizer` where it previously lived
as a private helper.

The lattice is the two-point domain {maybe-duplicates ≤ duplicate-free}
propagated bottom-up:

* ``PROJECT`` and ``UNITE`` merge equal value tuples by construction —
  always duplicate-free;
* ``SELECT``, ``WEIGHT``, ``BAYES`` and ``TOP`` drop or rescale rows but
  never introduce equal ones — they preserve the child's value;
* ``SUBTRACT`` keeps a subset of its left side's rows;
* ``JOIN`` of two duplicate-free inputs pairs distinct combined rows;
* ``Scan``/``Values``/``Param`` leaves make no promise — bottom.
"""

from __future__ import annotations

from repro.pra.plan import (
    PraBayes,
    PraJoin,
    PraPlan,
    PraProject,
    PraSelect,
    PraSubtract,
    PraTop,
    PraUnite,
    PraWeight,
)


def produces_distinct(plan: PraPlan) -> bool:
    """True if ``plan`` provably never emits two rows with equal value columns.

    Projection and union merge duplicates by construction; selection, weight,
    Bayes and top preserve distinctness; a join of two distinct inputs pairs
    distinct combined rows.  Scans, literals and parameters make no promise.
    """
    if isinstance(plan, (PraProject, PraUnite)):
        return True
    if isinstance(plan, (PraSelect, PraWeight, PraBayes, PraTop)):
        return produces_distinct(plan.children()[0])
    if isinstance(plan, PraSubtract):
        return produces_distinct(plan.left)
    if isinstance(plan, PraJoin):
        return produces_distinct(plan.left) and produces_distinct(plan.right)
    return False
