"""Lazy queries: the uniform result interface of the engine facade.

Every front end of :class:`~repro.engine.Engine` — SpinQL text, keyword
search, graph traversal, strategy graphs and the fluent builder — returns a
:class:`Query`.  Nothing executes until :meth:`Query.execute` (or a
convenience wrapper such as :meth:`Query.top`) is called, so queries can be
built, inspected with :meth:`Query.explain`, cached and re-executed against
different parameter bindings:

* :class:`SpinQLQuery` — a compiled SpinQL program; parameters bind
  probabilistic relations by name;
* :class:`TableQuery` — the fluent builder
  (``engine.table("docs").where(...).rank(...)``), which lowers to the same
  PRA plans as SpinQL;
* :class:`RankedQuery` — a table query ranked against a keyword query;
* :class:`SearchQuery` — keyword search over a docs table/view;
* :class:`StrategyQuery` — a block-based strategy graph.

All relation-producing queries share one pipeline: build → PRA plan →
optimize (:func:`repro.pra.optimizer.optimize_pra`, memoized in the engine's
plan cache) → evaluate.  :meth:`Query.execute_many` amortizes that pipeline
over a batch of parameter sets: compilation and optimization happen once,
only evaluation runs per batch element — serially by default, or on a
``ThreadPoolExecutor`` when ``max_workers`` is given (results always come
back in batch order, so concurrency never changes what a caller observes).

``top(k)`` is *rank-aware* for plan-backed queries: instead of executing the
full plan and sorting everything, the plan is wrapped in a
:class:`~repro.pra.plan.PraTop` node, the optimizer pushes it towards the
leaves where probability monotonicity allows, and evaluation uses a
partial-sort kernel — the full ranked relation is never materialised.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import TYPE_CHECKING, Any

from repro.errors import EngineError
from repro.pra.assumptions import Assumption
from repro.pra.expressions import PositionalRef
from repro.pra.plan import (
    PraJoin,
    PraParam,
    PraPlan,
    PraProject,
    PraScan,
    PraSelect,
    PraTop,
)
from repro.pra.relation import PROBABILITY_COLUMN, ProbabilisticRelation
from repro.relational.column import DataType
from repro.relational.expressions import BinaryOp, Expression, Literal
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.spinql.sql_translator import to_sql

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine import Engine


def as_probabilistic(value: Any) -> ProbabilisticRelation:
    """Coerce ``value`` into a probabilistic relation usable as a binding.

    Accepted shapes: a :class:`ProbabilisticRelation`; a plain
    :class:`Relation` (lifted to ``p = 1``); an iterable of ``(node, p)``
    pairs; or an iterable of bare node identifiers (``p = 1``).
    """
    if isinstance(value, ProbabilisticRelation):
        return value
    if isinstance(value, Relation):
        return ProbabilisticRelation.lift(value)
    if isinstance(value, (str, bytes)):
        value = [value]
    try:
        items = list(value)
    except TypeError:
        raise EngineError(
            f"cannot bind {type(value).__name__} as a probabilistic relation"
        ) from None
    rows: list[tuple[str, float]] = []
    for item in items:
        if isinstance(item, tuple) and len(item) == 2:
            rows.append((str(item[0]), float(item[1])))
        else:
            rows.append((str(item), 1.0))
    schema = Schema(
        [Field("node", DataType.STRING), Field(PROBABILITY_COLUMN, DataType.FLOAT)]
    )
    return ProbabilisticRelation(Relation.from_rows(schema, rows), validate=False)


def _coerce_bindings(bindings: Mapping[str, Any]) -> dict[str, ProbabilisticRelation]:
    return {name: as_probabilistic(value) for name, value in bindings.items()}


def scan_tables(plan: PraPlan) -> frozenset[str]:
    """The names of every table scanned anywhere in ``plan``."""
    names: set[str] = set()
    stack: list[PraPlan] = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, PraScan):
            names.add(node.table)
        stack.extend(node.children())
    return frozenset(names)


def plan_parameters(plan: PraPlan) -> frozenset[str]:
    """The names of every :class:`PraParam` placeholder anywhere in ``plan``."""
    names: set[str] = set()
    stack: list[PraPlan] = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, PraParam):
            names.add(node.name)
        stack.extend(node.children())
    return frozenset(names)


def result_pairs(result: Any, k: int | None = None) -> list[tuple[Any, float]]:
    """Extract ``(item, probability-or-score)`` pairs from any query result."""
    from repro.ir.search import SearchResult
    from repro.strategy.executor import StrategyRun

    if isinstance(result, StrategyRun):
        return result.top(k if k is not None else result.result.num_rows)
    if isinstance(result, SearchResult):
        return result.top(k if k is not None else len(result.ranked))
    if isinstance(result, ProbabilisticRelation):
        ranked = result.top(k) if k is not None else result.sorted_by_probability()
        nodes = ranked.relation.column(ranked.value_columns[0]).to_list()
        return [(node, float(p)) for node, p in zip(nodes, ranked.probabilities())]
    raise EngineError(f"cannot rank a result of type {type(result).__name__}")


class Query:
    """A lazy query; subclasses define how :meth:`execute` produces a result."""

    def __init__(self, engine: "Engine"):
        self._engine = engine

    @property
    def engine(self) -> "Engine":
        return self._engine

    def execute(self, **parameters: Any) -> Any:
        """Run the query and return its result."""
        raise NotImplementedError

    def _prepare(self) -> None:
        """Compile/optimize/warm whatever :meth:`execute` would build lazily.

        Called once before concurrent batch execution so that workers never
        race to do the same compilation; the default is a no-op.
        """

    def execute_many(
        self,
        param_batches: Iterable[Mapping[str, Any]],
        *,
        max_workers: int | None = None,
    ) -> list[Any]:
        """Execute once per parameter set, amortizing compilation/optimization.

        The plan is compiled and optimized at most once (on the first
        execution); each batch element only pays for evaluation.  With
        ``max_workers`` greater than one, batch elements are evaluated on a
        thread pool; results are always returned in batch order, so the
        output is identical to serial execution.
        """
        batches = [dict(batch) for batch in param_batches]
        if max_workers is None or max_workers <= 1 or len(batches) <= 1:
            return [self.execute(**batch) for batch in batches]
        self._prepare()
        pool = self._engine._batch_pool(max_workers)
        return list(pool.map(lambda batch: self.execute(**batch), batches))

    def top(self, k: int, **parameters: Any) -> list[tuple[Any, float]]:
        """Execute and return the ``k`` best ``(item, probability)`` pairs.

        Ranking is deterministic: ties in probability are broken by the value
        columns, so equal inputs always produce equal output order.
        """
        return result_pairs(self.execute(**parameters), k)

    def top_many(
        self,
        k: int,
        param_batches: Iterable[Mapping[str, Any]],
        *,
        max_workers: int | None = None,
    ) -> list[list[tuple[Any, float]]]:
        """:meth:`top` over a batch of parameter sets, optionally concurrent.

        Like :meth:`execute_many`, results come back in batch order.
        """
        batches = [dict(batch) for batch in param_batches]
        if max_workers is None or max_workers <= 1 or len(batches) <= 1:
            return [self.top(k, **batch) for batch in batches]
        self._prepare()
        pool = self._engine._batch_pool(max_workers)
        return list(pool.map(lambda batch: self.top(k, **batch), batches))

    def explain(self) -> str:
        """Describe how the query will run (plans, translations, configuration)."""
        raise NotImplementedError

    def check(self, **parameters: Any):
        """Statically verify the query without executing it.

        Returns an :class:`~repro.analysis.diagnostics.AnalysisReport`; only
        plan-backed queries (SpinQL, the fluent builder, ranked builders)
        support it — result-opaque queries raise.
        """
        raise NotImplementedError(
            f"{type(self).__name__} is not plan-backed; check() is only "
            "available for SpinQL and builder queries"
        )


def _explain_plan_sections(engine: "Engine", plan: PraPlan) -> list[str]:
    optimized = engine._optimize_plan(plan)
    sections = ["PRA plan:", plan.describe()]
    sections += ["", "Optimized PRA plan:", optimized.describe()]
    sections += ["", "SQL translation:", to_sql(optimized)]
    sections += ["", "Cost estimate:", engine.estimate_cost(optimized).describe()]
    return sections


class SpinQLQuery(Query):
    """A lazily compiled SpinQL program with named parameters."""

    def __init__(self, engine: "Engine", source: str, bindings: Mapping[str, Any]):
        super().__init__(engine)
        self.source = source
        self._bindings = _coerce_bindings(bindings)

    def _program(self):
        return self._engine._compile_spinql(self.source, frozenset(self._bindings))

    def _prepare(self) -> None:
        self._program()

    @property
    def plan(self) -> PraPlan:
        """The compiled (unoptimized) PRA plan of the final statement."""
        return self._program().plan

    @property
    def optimized_plan(self) -> PraPlan:
        """The optimized PRA plan the query will actually evaluate."""
        return self._program().optimized

    def plans(self, *, top_k: int | None = None) -> tuple[PraPlan, PraPlan]:
        """The (unoptimized, optimized) plan pair, optionally under a ``TOP k``.

        With ``top_k``, the unoptimized plan is wrapped in a
        :class:`~repro.pra.plan.PraTop` root and the optimized plan shows
        where the optimizer pushed that node down.
        """
        program = self._program()
        plan, optimized = program.plan, program.optimized
        if top_k is not None:
            plan = PraTop(plan, top_k)
            optimized = self._engine._optimize_plan(PraTop(optimized, top_k))
        return plan, optimized

    def _check_declared(self, parameters: Mapping[str, Any]) -> None:
        undeclared = set(parameters) - set(self._bindings)
        if undeclared:
            raise EngineError(
                f"undeclared parameters {sorted(undeclared)}; declare them when "
                "building the query: engine.spinql(source, "
                f"{', '.join(sorted(undeclared))}=...)"
            )

    def _merged_bindings(self, parameters: Mapping[str, Any]) -> dict[str, ProbabilisticRelation]:
        bindings = dict(self._bindings)
        bindings.update(_coerce_bindings(parameters))
        return bindings

    def execute(self, **parameters: Any) -> ProbabilisticRelation:
        """Evaluate the program; keyword arguments override the stored bindings.

        Only parameters declared at construction can be overridden — an
        undeclared name has no placeholder in the compiled plan and would be
        silently ignored, so it raises instead.
        """
        self._check_declared(parameters)
        program = self._program()
        return self._engine._evaluate(
            program.optimized,
            self._merged_bindings(parameters),
            kind="plan",
            request={"kind": "spinql", "source": self.source},
        )

    def top(self, k: int, **parameters: Any) -> list[tuple[Any, float]]:
        """Rank-aware top-k: evaluate under a pushed-down ``TOP k`` node.

        The optimized plan is wrapped in :class:`~repro.pra.plan.PraTop` and
        re-optimized (memoized in the plan cache), so the evaluator prunes
        with partial sorts instead of materialising the full ranked relation.
        """
        self._check_declared(parameters)
        _, optimized = self.plans(top_k=k)
        result = self._engine._evaluate(
            optimized,
            self._merged_bindings(parameters),
            kind="plan",
            request={"kind": "spinql", "source": self.source, "top_k": k},
        )
        return result_pairs(result, k)

    def check(self, *, top_k: int | None = None, hydrate: bool = True, **parameters: Any):
        """Statically verify the program without executing it.

        The verifier runs over the *optimized* plan — the one
        :meth:`execute` / :meth:`top` actually evaluate — against the
        engine's catalog, so a report with no errors means evaluation will
        not raise a schema, binding or assumption error.  ``parameters``
        override stored bindings exactly as in :meth:`execute`;
        ``hydrate=False`` keeps the check purely in-memory (lazy snapshot
        tables and views then report ``unknown-schema`` warnings rather than
        resolving — this is what the serving router's pre-dispatch gate
        uses).
        """
        self._check_declared(parameters)
        _, optimized = self.plans(top_k=top_k)
        return self._engine._verify_plan(
            optimized, bindings=self._merged_bindings(parameters), hydrate=hydrate
        )

    def explain_data(self, *, top_k: int | None = None) -> dict[str, Any]:
        """The explain report as structured data (used by the CLI's --json)."""
        plan, optimized = self.plans(top_k=top_k)
        return {
            "spinql": self.source.strip(),
            "parameters": sorted(self._bindings),
            "pra_plan": plan.describe(),
            "optimized_plan": optimized.describe(),
            "sql": to_sql(optimized),
            "cost": self._engine.estimate_cost(optimized).to_dict(),
            "analysis": self.check(top_k=top_k).to_dict(),
        }

    def explain(self, *, top_k: int | None = None) -> str:
        data = self.explain_data(top_k=top_k)
        sections = ["SpinQL program:", data["spinql"], ""]
        if data["parameters"]:
            sections += ["Parameters: " + ", ".join(data["parameters"]), ""]
        sections += ["PRA plan:", data["pra_plan"]]
        sections += ["", "Optimized PRA plan:", data["optimized_plan"]]
        sections += ["", "SQL translation:", data["sql"]]
        sections += [
            "",
            "Cost estimate:",
            "\n".join(data["cost"]["plan"])
            + f"\nestimated: {data['cost']['estimated_ms']:.3f} ms",
        ]
        sections += ["", "Static analysis:", self.check(top_k=top_k).render()]
        return "\n".join(sections)


class TableQuery(Query):
    """The fluent builder: chainable operators over a table, view or parameter.

    Instances are immutable; every operator returns a new query, so partial
    chains can be reused::

        toys = engine.table("triples").where(property="category", object="toy")
        toys.select("subject").execute()
    """

    def __init__(
        self,
        engine: "Engine",
        plan: PraPlan,
        columns: Sequence[str],
        bindings: Mapping[str, ProbabilisticRelation] | None = None,
    ):
        super().__init__(engine)
        self._plan = plan
        self._columns = list(columns)
        self._bindings = dict(bindings or {})

    # -- chaining --------------------------------------------------------------------

    def _derive(self, plan: PraPlan, columns: Sequence[str]) -> "TableQuery":
        return TableQuery(self._engine, plan, columns, self._bindings)

    def _position_of(self, column: int | str) -> int:
        if isinstance(column, int):
            if column < 1 or column > len(self._columns):
                raise EngineError(
                    f"position {column} out of range; columns are {self._columns}"
                )
            return column
        try:
            return self._columns.index(column) + 1
        except ValueError:
            raise EngineError(
                f"unknown column {column!r}; available columns: {self._columns}"
            ) from None

    def where(self, predicate: Expression | None = None, **equals: Any) -> "TableQuery":
        """Filter rows: a raw predicate expression and/or column equalities."""
        clauses: list[Expression] = []
        if predicate is not None:
            clauses.append(predicate)
        for column, value in equals.items():
            clauses.append(
                BinaryOp("=", PositionalRef(self._position_of(column)), Literal(value))
            )
        if not clauses:
            raise EngineError("where() needs a predicate or at least one column=value")
        combined = clauses[0]
        for clause in clauses[1:]:
            combined = BinaryOp("and", combined, clause)
        return self._derive(PraSelect(self._plan, combined), self._columns)

    def select(self, *columns: int | str, **aliases: int | str) -> "TableQuery":
        """Project columns (by name or 1-based position); ``alias=column`` renames."""
        if not columns and not aliases:
            raise EngineError("select() needs at least one column")
        positions = [self._position_of(column) for column in columns]
        names = [
            column if isinstance(column, str) else self._columns[position - 1]
            for column, position in zip(columns, positions)
        ]
        for alias, column in aliases.items():
            positions.append(self._position_of(column))
            names.append(alias)
        plan = PraProject(self._plan, positions, Assumption.INDEPENDENT, names)
        return self._derive(plan, names)

    def traverse(
        self,
        property_name: str,
        *,
        direction: str = "forward",
        merge: str | Assumption = "independent",
    ) -> "TableQuery":
        """Follow one property edge from the first column, as SpinQL TRAVERSE does."""
        if direction not in ("forward", "backward"):
            raise EngineError(f"direction must be 'forward' or 'backward', got {direction!r}")
        assumption = merge if isinstance(merge, Assumption) else Assumption.parse(merge)
        edges = PraSelect(
            PraScan(self._engine.triples_table),
            BinaryOp("=", PositionalRef(2), Literal(property_name)),
        )
        arity = len(self._columns)
        if direction == "backward":
            join_condition = (1, 3)  # node = object
            projected = 1  # subject of the triple
        else:
            join_condition = (1, 1)  # node = subject
            projected = 3  # object of the triple
        joined = PraJoin(self._plan, edges, [join_condition], Assumption.INDEPENDENT)
        plan = PraProject(joined, [arity + projected], assumption, output_names=["node"])
        return self._derive(plan, ["node"])

    def rank(
        self,
        query: str | None = None,
        *,
        model: Any | None = None,
        top_k: int | None = None,
    ) -> "RankedQuery":
        """Rank the (id, text) rows of this query against a keyword query."""
        return RankedQuery(self, query=query, model=model, top_k=top_k)

    def top_k(self, k: int) -> "TableQuery":
        """Limit the query to its ``k`` most probable rows (a ``TOP k`` node).

        The optimizer pushes the node towards the leaves where probability
        monotonicity allows; :meth:`explain` on the returned query shows
        where it lands.
        """
        return self._derive(PraTop(self._plan, k), self._columns)

    # -- execution --------------------------------------------------------------------

    @property
    def plan(self) -> PraPlan:
        return self._plan

    @property
    def columns(self) -> list[str]:
        return list(self._columns)

    def _prepare(self) -> None:
        self._engine._optimize_plan(self._plan)

    def execute(self, **parameters: Any) -> ProbabilisticRelation:
        undeclared = set(parameters) - plan_parameters(self._plan)
        if undeclared:
            raise EngineError(
                f"undeclared parameters {sorted(undeclared)}; this query's plan "
                f"has parameters {sorted(plan_parameters(self._plan))}"
            )
        bindings = dict(self._bindings)
        bindings.update(_coerce_bindings(parameters))
        return self._engine._execute_plan(self._plan, bindings)

    def top(self, k: int, **parameters: Any) -> list[tuple[Any, float]]:
        """Rank-aware top-k: execute under a pushed-down ``TOP k`` node."""
        return result_pairs(self.top_k(k).execute(**parameters), k)

    def check(self, *, hydrate: bool = True, **parameters: Any):
        """Statically verify the chain; ``parameters`` bind as in :meth:`execute`.

        Plan parameters left unbound are reported as ``unbound-parameter``
        errors, matching what :meth:`execute` would raise.
        """
        bindings = dict(self._bindings)
        bindings.update(_coerce_bindings(parameters))
        return self._engine._verify_plan(
            self._engine._optimize_plan(self._plan), bindings=bindings, hydrate=hydrate
        )

    def explain(self) -> str:
        sections = [f"Builder query over columns {self._columns}:", ""]
        sections += _explain_plan_sections(self._engine, self._plan)
        sections += ["", "Static analysis:", self.check().render()]
        return "\n".join(sections)


class RankedQuery(Query):
    """A table query ranked by a keyword query (the Rank-by-Text step)."""

    def __init__(
        self,
        docs: TableQuery,
        *,
        query: str | None,
        model: Any | None = None,
        top_k: int | None = None,
    ):
        super().__init__(docs.engine)
        self._docs = docs
        self._query = query
        self._model = model
        self._top_k = top_k

    def _prepare(self) -> None:
        self._docs._prepare()

    def execute(self, *, query: str | None = None, **parameters: Any) -> ProbabilisticRelation:
        effective = query if query is not None else self._query
        if effective is None:
            raise EngineError("rank() has no query; pass one to rank() or execute()")
        docs = self._docs.execute(**parameters)
        if len(docs.value_columns) != 2:
            raise EngineError(
                "rank() expects a two-column (id, text) input; got columns "
                f"{docs.value_columns} — use .select() to shape the query first"
            )
        return self._engine._rank_documents(
            docs, effective, model=self._model, top_k=self._top_k
        )

    def check(self, *, hydrate: bool = True, **parameters: Any):
        """Statically verify the underlying docs query (ranking is schema-free)."""
        return self._docs.check(hydrate=hydrate, **parameters)

    def explain(self) -> str:
        model = self._model.describe() if self._model is not None else "BM25 (default)"
        sections = [
            f"Rank by text (model: {model}, query: {self._query!r}) over:",
            "",
        ]
        sections += _explain_plan_sections(self._engine, self._docs.plan)
        return "\n".join(sections)


class SearchQuery(Query):
    """Lazy keyword search over a ``docs(docID, data)`` table or view."""

    def __init__(
        self,
        engine: "Engine",
        table: str,
        query: str | None = None,
        *,
        model: Any | None = None,
        pipeline: str = "direct",
        top_k: int | None = None,
        expander: Any | None = None,
        id_column: str = "docID",
        text_column: str = "data",
    ):
        super().__init__(engine)
        self.table = table
        self._query = query
        self._model = model
        self._pipeline = pipeline
        self._top_k = top_k
        self._expander = expander
        self._id_column = id_column
        self._text_column = text_column

    def _search_engine(self):
        return self._engine._search_engine(
            self.table,
            model=self._model,
            pipeline=self._pipeline,
            expander=self._expander,
            id_column=self._id_column,
            text_column=self._text_column,
        )

    def _prepare(self) -> None:
        self._search_engine().warm_up()

    def execute(self, *, query: str | None = None, top_k: int | None = None):
        import time

        effective = query if query is not None else self._query
        if effective is None:
            raise EngineError("search() has no query; pass one to search() or execute()")
        k = top_k if top_k is not None else self._top_k
        started = time.perf_counter()
        request: dict[str, Any] = {
            "kind": "search",
            "table": self.table,
            "query": effective,
        }
        if k is not None:
            request["top_k"] = k
        fingerprint = f"search::{self.table}::{effective}"
        try:
            # on a sharded/pool engine the query scatters: shards rank their
            # own documents against global statistics, the merge is
            # bit-identical
            result = self._engine._search_sharded(
                table=self.table,
                query=effective,
                model=self._model,
                pipeline=self._pipeline,
                top_k=k,
                expander=self._expander,
                id_column=self._id_column,
                text_column=self._text_column,
            )
            if result is None:
                result = self._search_engine().search(effective, top_k=k)
        except Exception:
            self._engine._record_execution(
                kind="search",
                fingerprint=fingerprint,
                started=started,
                rows_out=None,
                status="error",
                request=request,
            )
            raise
        self._engine._record_execution(
            kind="search",
            fingerprint=fingerprint,
            started=started,
            rows_out=len(result.ranked),
            request=request,
        )
        return result

    def top(self, k: int, **parameters: Any) -> list[tuple[Any, float]]:
        return self.execute(top_k=k, **parameters).top(k)

    def _vector_queries(
        self, batches: Sequence[Mapping[str, Any]]
    ) -> tuple[list[str], int | None] | None:
        """``(queries, top_k)`` when the batch can run the vectorized kernel.

        The multi-query kernel handles homogeneous search batches: every
        parameter set carries only ``query``/``top_k``, every effective query
        is set, and all elements share one effective ``top_k``.  Anything
        else returns ``None`` and the generic per-element path runs.
        """
        if len(batches) <= 1:
            return None
        queries: list[str] = []
        top_ks: set[int | None] = set()
        for batch in batches:
            if set(batch) - {"query", "top_k"}:
                return None
            query = batch.get("query", self._query)
            if query is None:
                return None
            queries.append(query)
            top_ks.add(batch.get("top_k", self._top_k))
        if len(top_ks) != 1:
            return None
        return queries, top_ks.pop()

    def _search_many(self, queries: Sequence[str], top_k: int | None) -> list[Any]:
        return self._engine.search_many(
            self.table,
            queries,
            model=self._model,
            pipeline=self._pipeline,
            top_k=top_k,
            expander=self._expander,
            id_column=self._id_column,
            text_column=self._text_column,
        )

    def execute_many(
        self,
        param_batches: Iterable[Mapping[str, Any]],
        *,
        max_workers: int | None = None,
    ) -> list[Any]:
        """Batch execution through the vectorized multi-query search kernel.

        Homogeneous batches (see :meth:`_vector_queries`) are scored in one
        pass over shared postings — results are bit-identical to element-wise
        :meth:`execute`, in batch order; heterogeneous batches fall back to
        the generic path.
        """
        batches = [dict(batch) for batch in param_batches]
        vector = self._vector_queries(batches)
        if vector is None:
            return super().execute_many(batches, max_workers=max_workers)
        queries, top_k = vector
        return self._search_many(queries, top_k)

    def top_many(
        self,
        k: int,
        param_batches: Iterable[Mapping[str, Any]],
        *,
        max_workers: int | None = None,
    ) -> list[list[tuple[Any, float]]]:
        """:meth:`top` over a batch, vectorized like :meth:`execute_many`."""
        batches = [dict(batch) for batch in param_batches]
        vector = self._vector_queries([{**batch, "top_k": k} for batch in batches])
        if vector is None:
            return super().top_many(k, batches, max_workers=max_workers)
        queries, top_k = vector
        return [result.top(k) for result in self._search_many(queries, top_k)]

    def explain(self) -> str:
        searcher = self._search_engine()
        lines = [f"Keyword search over {self.table!r}:"]
        for key, value in searcher.describe().items():
            lines.append(f"  {key}: {value}")
        state = "materialized (hot)" if searcher.is_warm else "not built (cold)"
        lines.append(f"  statistics: {state}")
        if self._query is not None:
            lines.append(f"  query: {self._query!r}")
        return "\n".join(lines)


class StrategyQuery(Query):
    """Lazy execution of a block-based strategy graph."""

    def __init__(
        self,
        engine: "Engine",
        graph: Any,
        query: str = "",
        *,
        result_block: str | None = None,
        parameters: Mapping[str, Any] | None = None,
        name: str | None = None,
    ):
        super().__init__(engine)
        self.graph = graph
        self._query = query
        self._result_block = result_block
        self._parameters = dict(parameters or {})
        self._name = name  # prebuilt strategy name, when built from one

    def execute(self, *, query: str | None = None, **parameters: Any):
        import time

        merged = dict(self._parameters)
        merged.update(parameters)
        effective = query if query is not None else self._query
        label = self._name if self._name is not None else type(self.graph).__name__
        fingerprint = f"strategy::{label}::{effective}"
        request = None
        if self._name is not None and not merged and self._result_block is None:
            request = {"kind": "strategy", "name": self._name, "query": effective}
        started = time.perf_counter()
        try:
            run = self._engine.executor.run(
                self.graph,
                query=effective,
                result_block=self._result_block,
                parameters=merged,
            )
        except Exception:
            self._engine._record_execution(
                kind="strategy",
                fingerprint=fingerprint,
                started=started,
                rows_out=None,
                status="error",
                request=request,
            )
            raise
        self._engine._record_execution(
            kind="strategy",
            fingerprint=fingerprint,
            started=started,
            rows_out=run.result.num_rows,
            request=request,
        )
        return run

    def explain(self) -> str:
        from repro.strategy.render import render_ascii

        return render_ascii(self.graph)
