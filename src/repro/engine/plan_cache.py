"""The engine's plan cache: compiled and optimized plans keyed by fingerprint.

Where the relational layer's :class:`~repro.relational.cache.MaterializationCache`
stores query *results*, this cache stores query *plans*: compiled SpinQL
programs and optimized PRA plans, keyed by deterministic fingerprints (the
source text for programs, :meth:`~repro.pra.plan.PraPlan.fingerprint` for
plans).  Repeated parameterized queries therefore skip parsing, compilation
and optimization entirely — only evaluation runs per binding set.

Entries record the base tables their plan scans.  Replacing a table (e.g.
reloading the triple store) invalidates exactly the dependent entries, since
plans built through the fluent builder resolve column names against the table
schema at build time and would silently go stale otherwise.

The cache is thread-safe: every operation — lookup, insert, invalidation,
the LRU bookkeeping and the statistics counters — runs under one re-entrant
lock, so concurrent :meth:`~repro.engine.query.Query.execute_many` workers
never lose counter updates or corrupt the LRU order.  Two threads that miss
the same key concurrently may both compile and insert (the second insert
wins); that is safe because entries are deterministic functions of their key.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any


@dataclass
class PlanCacheStatistics:
    """Counters describing plan-cache effectiveness."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    entries: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def to_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "entries": self.entries,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _PlanEntry:
    value: Any
    dependencies: frozenset[str] = field(default_factory=frozenset)
    uses: int = 0


class PlanCache:
    """An LRU-bounded, thread-safe cache of compiled/optimized plans."""

    def __init__(self, max_entries: int | None = None):
        self._entries: dict[str, _PlanEntry] = {}
        self._order: list[str] = []
        self._max_entries = max_entries
        self._lock = threading.RLock()
        self.statistics = PlanCacheStatistics()

    def get(self, key: str) -> Any | None:
        """Return the cached value for ``key`` or ``None`` on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.statistics.misses += 1
                return None
            self.statistics.hits += 1
            entry.uses += 1
            self._order.remove(key)
            self._order.append(key)
            return entry.value

    def put(self, key: str, value: Any, *, dependencies: frozenset[str] = frozenset()) -> None:
        """Store ``value`` under ``key``, recording the tables it depends on."""
        with self._lock:
            if key not in self._entries:
                self._order.append(key)
            self._entries[key] = _PlanEntry(value=value, dependencies=dependencies)
            if self._max_entries is not None:
                while len(self._entries) > self._max_entries:
                    oldest = self._order.pop(0)
                    del self._entries[oldest]
            self.statistics.entries = len(self._entries)

    def invalidate_table(self, table_name: str) -> int:
        """Drop every cached plan that depends on ``table_name``."""
        with self._lock:
            stale = [
                key
                for key, entry in self._entries.items()
                if table_name in entry.dependencies
            ]
            for key in stale:
                del self._entries[key]
                self._order.remove(key)
            self.statistics.invalidations += len(stale)
            self.statistics.entries = len(self._entries)
            return len(stale)

    def clear(self) -> None:
        """Drop every cached plan."""
        with self._lock:
            self.statistics.invalidations += len(self._entries)
            self._entries.clear()
            self._order.clear()
            self.statistics.entries = 0

    def keys(self) -> list[str]:
        """A snapshot of the cached keys, least-recently used first."""
        with self._lock:
            return list(self._order)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries
