"""The unified engine facade: one entry point over SpinQL, PRA and search.

The paper's pitch is that structured querying, graph traversal and IR
ranking live in *one* algebra.  :class:`Engine` makes that true at the API
level: it owns the relational :class:`~repro.relational.database.Database`,
the probabilistic :class:`~repro.triples.triple_store.TripleStore`, the
analyzer/ranking configuration and the caches, and every front end returns a
lazy :class:`~repro.engine.query.Query`:

* ``engine.spinql(text, **bindings)`` — SpinQL programs with named
  parameters;
* ``engine.search(table, query)`` — keyword search (warm statistics are
  shared across queries);
* ``engine.traverse(property, seeds)`` — graph traversal;
* ``engine.strategy("auction", query=...)`` — block-based strategies, by
  name or as a :class:`~repro.strategy.graph.StrategyGraph`;
* ``engine.table("docs").where(...).rank(...)`` — the fluent builder.

Internally every relation-producing front end lowers to one shared pipeline:
parse/build → PRA plan → optimize → evaluate.  Compiled programs and
optimized plans are memoized in a fingerprint-keyed
:class:`~repro.engine.plan_cache.PlanCache`, so repeated parameterized
queries skip compilation and optimization entirely::

    from repro import connect

    engine = connect().load_triples(triples)
    ranked = engine.strategy("toy", query="wooden train").top(10)

**Rank-aware evaluation.**  ``query.top(k)`` on a plan-backed query does not
execute the plan and sort everything: the plan is wrapped in a
:class:`~repro.pra.plan.PraTop` node, the optimizer pushes that node towards
the leaves, and evaluation selects the ``k`` best rows with a partial-sort
kernel (``np.argpartition``).  Pushdown applies where probability
monotonicity makes it exact — through positive ``WEIGHT`` nodes, across
nested ``TOP`` nodes, and into the branches of a SUBSUMED (max-merge)
``UNITE`` with duplicate-free sides — and provably stops everywhere else:
``TOP`` never crosses ``BAYES``, ``SUBTRACT``, ``SELECT``, ``PROJECT``,
``JOIN`` or a union under the INDEPENDENT/DISJOINT merges, because each has
a counterexample where pruning early changes the answer (see
:mod:`repro.pra.optimizer`).  The keyword-search scorer is rank-aware too:
with ``top_k`` set it uses the same partial selection, plus threshold-style
early termination for models that can bound per-term contributions (BM25
with non-negative IDF, boolean).  All of this is exact — results, scores and
tie-breaking are identical to full evaluation.

**Determinism.**  Ranked results break probability ties by the value
columns, so equal inputs always produce equal output order, in one thread or
many.

**Concurrency guarantees.**  One ``Engine`` may be shared by many threads:
the plan cache and the materialization cache are lock-guarded (counters
never lose updates, inserts are atomic), evaluation itself is read-only, and
``query.execute_many(batches, max_workers=N)`` /
``engine.execute_many(query, batches, max_workers=N)`` fan evaluation out on
a ``ThreadPoolExecutor`` after compiling once — results always return in
batch order, so concurrent execution is observationally identical to serial.
Data loading (``load_triples``, ``create_table``) is *not* designed to run
concurrently with queries; quiesce queries before reloading.

This facade is the repository's public API.  The underlying layers
(:mod:`repro.spinql`, :mod:`repro.pra`, :mod:`repro.ir`,
:mod:`repro.strategy`, :mod:`repro.triples`) remain importable and supported
for advanced use; see the deprecation policy in :mod:`repro`.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections.abc import Iterable, Mapping, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import EngineError, ReproError
from repro.engine.executors import (
    InProcessShard,
    LocalExecutor,
    PlanExecutor,
    PoolExecutor,
    SearchSpec,
    ShardedExecutor,
    gather_table,
    gather_triples,
)
from repro.engine.plan_cache import PlanCache, PlanCacheStatistics
from repro.engine.query import (
    Query,
    RankedQuery,
    SearchQuery,
    SpinQLQuery,
    StrategyQuery,
    TableQuery,
    _coerce_bindings,
    as_probabilistic,
    scan_tables,
)
from repro.pra.evaluator import PRAEvaluator
from repro.pra.optimizer import optimize_pra
from repro.pra.plan import PraParam, PraPlan, PraScan
from repro.pra.relation import PROBABILITY_COLUMN, ProbabilisticRelation
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.spinql.compiler import CompiledScript, compile_script
from repro.strategy.executor import StrategyExecutor
from repro.strategy.graph import StrategyGraph
from repro.text.analyzers import StandardAnalyzer
from repro.triples.triple_store import TripleStore
from repro.workload.cache import ResultCache, binding_fingerprint
from repro.workload.cost import CostModel
from repro.workload.log import WorkloadLog

__all__ = [
    "CompiledProgram",
    "Engine",
    "PlanCache",
    "PlanCacheStatistics",
    "Query",
    "RankedQuery",
    "SearchQuery",
    "SpinQLQuery",
    "StrategyQuery",
    "TableQuery",
    "as_probabilistic",
    "connect",
]


#: local "not passed" marker for open_sharded's deprecated keyword arguments
#: (translated to repro.serving.config.UNSET inside the method — the serving
#: package is imported lazily to keep engine import free of serving imports)
_UNSET: Any = object()


@dataclass
class CompiledProgram:
    """A compiled SpinQL program plus its optimized final plan."""

    source: str
    compiled: CompiledScript
    plan: PraPlan
    optimized: PraPlan


def _strategy_builders() -> dict[str, Any]:
    from repro.strategy.prebuilt import (
        build_auction_strategy,
        build_expanded_auction_strategy,
        build_expert_strategy,
        build_toy_strategy,
    )

    return {
        "toy": build_toy_strategy,
        "auction": build_auction_strategy,
        "expanded-auction": build_expanded_auction_strategy,
        "experts": build_expert_strategy,
    }


class Engine:
    """The session-style facade over the whole reproduction stack."""

    def __init__(
        self,
        database: Database | None = None,
        *,
        storage: Any | None = None,
        triples_table: str = "triples",
        language: str = "english",
        plan_cache_size: int | None = None,
        result_cache_size: int | None = 256,
        workload_log_capacity: int = 2048,
        cost_model: CostModel | None = None,
    ):
        self.store = TripleStore(database, storage=storage, table_name=triples_table)
        self.database = self.store.database
        self.triples_table = triples_table
        self.language = language
        self.analyzer = StandardAnalyzer(language)
        self.plan_cache = PlanCache(max_entries=plan_cache_size)
        # the workload subsystem: every execution is logged, repeated plan
        # evaluations may be answered from the result cache, and the cost
        # model (calibratable from the log) steers optimizer choices
        self.workload_log = WorkloadLog(capacity=workload_log_capacity)
        self.result_cache = (
            ResultCache(max_entries=result_cache_size) if result_cache_size else None
        )
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self._evaluator = PRAEvaluator(self.database)
        self._executor: StrategyExecutor | None = None
        self._search_engines: dict[tuple, Any] = {}
        self._rank_blocks: dict[tuple, Any] = {}
        self._plan_executor: PlanExecutor = LocalExecutor(self)
        self._thread_pool: ThreadPoolExecutor | None = None
        self._thread_pool_size = 0
        self._shard_thread_pool: ThreadPoolExecutor | None = None
        self._shard_thread_pool_size = 0
        self._retired_pools: list[ThreadPoolExecutor] = []
        self._lifecycle_lock = threading.Lock()
        # guards _search_engines/_rank_blocks; Engine is shareable across threads
        self._registry_lock = threading.Lock()
        # online-reconfiguration state: requests check the executor out for
        # their whole run, so an atomic swap drains in-flight work on the old
        # executor while new requests route on the new one (epoch semantics)
        self._executor_lock = threading.Lock()
        self._executor_drained = threading.Condition(self._executor_lock)
        self._executor_leases: dict[int, int] = {}
        self._retired_executors: dict[int, PlanExecutor] = {}
        self._serving_config: Any | None = None
        self._snapshot_path: Path | None = None
        self._blueprint_manager: Any | None = None
        self._closed = False

    # -- construction -----------------------------------------------------------------

    @classmethod
    def from_triples(cls, triples: Iterable, **kwargs: Any) -> "Engine":
        """Build an engine, load ``triples`` and materialize storage in one call."""
        return cls(**kwargs).load_triples(triples)

    def connect_info(self) -> dict[str, Any]:
        """A description of the session (tables, caches, configuration)."""
        return {
            "triples": self.store.num_triples,
            "tables": self.database.table_names(),
            "views": self.database.view_names(),
            "language": self.language,
            "plan_cache": self.plan_cache.statistics,
            "materialization_cache": self.database.cache.statistics,
            "result_cache": (
                self.result_cache.statistics.to_dict()
                if self.result_cache is not None
                else None
            ),
            "workload_log": self.workload_log.statistics(),
        }

    # -- data loading ----------------------------------------------------------------

    def add_triples(self, triples: Iterable) -> "Engine":
        """Buffer triples (tuples of length 3/4 or :class:`Triple`); chainable."""
        self.store.add_all(triples)
        return self

    def load(self) -> "Engine":
        """(Re)materialize buffered triples and invalidate dependent caches."""
        self.store.load()
        self._on_data_changed()
        return self

    def load_triples(self, triples: Iterable) -> "Engine":
        """Buffer and materialize in one step; chainable."""
        return self.add_triples(triples).load()

    def create_table(self, name: str, relation: Relation, *, replace: bool = False) -> "Engine":
        """Register a base table in the database; invalidates dependent caches."""
        self.database.create_table(name, relation, replace=replace)
        self.plan_cache.invalidate_table(name)
        if self.result_cache is not None:
            self.result_cache.invalidate_table(name)
        self._invalidate_search_statistics(name)
        return self

    def _on_data_changed(self) -> None:
        for name in self.database.table_names() + self.database.view_names():
            self.plan_cache.invalidate_table(name)
            if self.result_cache is not None:
                self.result_cache.invalidate_table(name)
        self._invalidate_search_statistics()

    def _invalidate_search_statistics(self, table: str | None = None) -> None:
        with self._registry_lock:
            searchers = list(self._search_engines.items())
        for (source, *_rest), searcher in searchers:
            if table is None or source == table:
                searcher.invalidate()

    def clear_caches(self) -> None:
        """Drop every cached plan and materialized result (cold-start state)."""
        self.plan_cache.clear()
        if self.result_cache is not None:
            self.result_cache.clear()
        self.database.clear_cache()
        self._invalidate_search_statistics()
        with self._registry_lock:
            blocks = list(self._rank_blocks.values())
        for block in blocks:
            block.clear_statistics()

    # -- lifecycle --------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release every resource this session owns.

        Shuts down the engine's thread pool and its executor (in-process
        shard engines or worker processes), drops caches, and releases the
        catalog's table references so memmap-backed snapshot buffers can be
        unmapped.  A closed engine rejects further queries; closing twice is
        a no-op.
        """
        if self._closed:
            return
        self._closed = True
        with self._lifecycle_lock:
            pools = [self._thread_pool, self._shard_thread_pool, *self._retired_pools]
            self._thread_pool = None
            self._shard_thread_pool = None
            self._retired_pools = []
            self._thread_pool_size = 0
            self._shard_thread_pool_size = 0
        for pool in pools:
            if pool is not None:
                pool.shutdown(wait=True)
        with self._executor_lock:
            retired = list(self._retired_executors.values())
            self._retired_executors.clear()
            self._executor_leases.clear()
        for executor in retired:
            try:
                executor.close()
            except ReproError:  # pragma: no cover - already-dead workers
                pass
        try:
            self._plan_executor.close()
        finally:
            self.plan_cache.clear()
            if self.result_cache is not None:
                self.result_cache.clear()
            self.workload_log.close()
            with self._registry_lock:
                self._search_engines.clear()
                self._rank_blocks.clear()
            self.database.clear_cache()
            self.database.catalog.release()
            self.store._triples_list = []
            self.store._triples_loader = None
            self.store._loaded = False

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise EngineError("engine is closed; open a new session to run queries")

    # -- executor leases and online reconfiguration -----------------------------------

    def _checkout_executor(self) -> PlanExecutor:
        """The current executor, leased for one request (pair with release)."""
        with self._executor_lock:
            executor = self._plan_executor
            key = id(executor)
            self._executor_leases[key] = self._executor_leases.get(key, 0) + 1
            return executor

    def _release_executor(self, executor: PlanExecutor) -> None:
        """Return a lease; the last lease of a retired executor closes it."""
        retired: PlanExecutor | None = None
        with self._executor_lock:
            key = id(executor)
            count = self._executor_leases.get(key, 0) - 1
            if count > 0:
                self._executor_leases[key] = count
            else:
                self._executor_leases.pop(key, None)
                retired = self._retired_executors.pop(key, None)
                self._executor_drained.notify_all()
        if retired is not None:
            retired.close()

    def swap_executor(
        self, new_executor: PlanExecutor, *, drain_timeout: float = 30.0
    ) -> PlanExecutor:
        """Atomically install ``new_executor``; drain and close the old one.

        The install is the atomic step: every request that checks out after
        it routes on the new executor (new epoch), while requests already
        in flight finish on the old one.  This method then waits up to
        ``drain_timeout`` seconds for those leases to drain; either way the
        old executor is closed exactly once — immediately when drained, or
        by the final lease holder's release.  Returns the old executor.
        """
        self._require_open()
        with self._executor_lock:
            old = self._plan_executor
            self._plan_executor = new_executor
            key = id(old)
            if self._executor_leases.get(key, 0) > 0:
                self._retired_executors[key] = old
                deadline = time.monotonic() + drain_timeout
                while self._executor_leases.get(key, 0) > 0:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        # still draining: the final release closes it
                        return old
                    self._executor_drained.wait(remaining)
                self._retired_executors.pop(key, None)
        # drained (or never leased): close here; executor close is idempotent,
        # so a racing final release closing it first is harmless
        old.close()
        return old

    def reshard(
        self,
        shards: int,
        *,
        out: str | Path | None = None,
        drain_timeout: float = 30.0,
    ) -> dict[str, Any]:
        """Re-partition the served snapshot to ``shards`` shards, online.

        Builds the new layout in the background from the current immutable
        snapshot, then atomically swaps the versioned shard map (monotonic
        epoch): in-flight requests drain on the old epoch, new requests
        route on the new one — no downtime, bit-identical results.  Only
        engines opened with :meth:`open_sharded` can reshard.  Returns a
        summary dict (old/new epoch, shard counts, output path).
        """
        return self.blueprint_manager().reshard(
            shards, out=out, drain_timeout=drain_timeout
        )

    def blueprint_manager(self) -> Any:
        """The engine's blueprint manager (serialized serving transitions)."""
        from repro.serving.blueprint import BlueprintManager

        self._require_open()
        if getattr(self._plan_executor, "shard_map", None) is None:
            raise EngineError(
                "online resharding needs a sharded engine; open the snapshot "
                "with Engine.open_sharded first"
            )
        with self._executor_lock:
            if self._blueprint_manager is None:
                self._blueprint_manager = BlueprintManager(self)
            return self._blueprint_manager

    def _batch_pool(self, max_workers: int) -> ThreadPoolExecutor:
        """The engine-owned thread pool behind ``execute_many``/``top_many``.

        Created lazily and reused across calls, so thread lifecycle is paid
        once per engine instead of once per call; :meth:`close` shuts it
        down.  Deliberately *not* shared with the sharded executors' scatter
        step (:meth:`_shard_pool`): batch tasks scatter from inside their
        pool threads, and a shared bounded pool would deadlock once every
        thread held a batch task waiting on inner scatter futures.
        """
        with self._lifecycle_lock:
            self._thread_pool, self._thread_pool_size = self._grown_pool(
                self._thread_pool, self._thread_pool_size, max_workers, "repro-engine"
            )
            return self._thread_pool

    def _shard_pool(self, max_workers: int) -> ThreadPoolExecutor:
        """The engine-owned pool for fanning one query out across shards."""
        with self._lifecycle_lock:
            self._shard_thread_pool, self._shard_thread_pool_size = self._grown_pool(
                self._shard_thread_pool,
                self._shard_thread_pool_size,
                max_workers,
                "repro-shard",
            )
            return self._shard_thread_pool

    def _grown_pool(
        self,
        pool: ThreadPoolExecutor | None,
        size: int,
        max_workers: int,
        prefix: str,
    ) -> tuple[ThreadPoolExecutor, int]:
        """Grow-only pool management; caller holds the lifecycle lock.

        An outgrown pool is retired, not shut down: a concurrent caller may
        already hold a reference and be about to submit, and submitting to a
        shut-down executor raises.  Retired pools are drained in
        :meth:`close`.
        """
        self._require_open()
        if pool is None or size < max_workers:
            if pool is not None:
                self._retired_pools.append(pool)
            pool = ThreadPoolExecutor(max_workers=max_workers, thread_name_prefix=prefix)
            size = max_workers
        return pool, size

    # -- persistence ------------------------------------------------------------------

    def save(
        self,
        path: str | Path,
        *,
        shards: int | None = None,
        shard_keys: Mapping[str, str] | None = None,
    ) -> Path:
        """Snapshot the whole session: tables, triples, config, warm caches.

        The snapshot is a versioned directory (see :mod:`repro.storage`);
        :meth:`open` restores it with lazy, memmap-backed hydration, so a
        worker process boots from it in milliseconds instead of re-parsing
        CSV/text.

        With ``shards=N`` the snapshot is written in the *partitioned*
        layout instead (see :mod:`repro.storage.shards`): every base table
        is split by hash range on its shard key (first column unless
        overridden via ``shard_keys``), postings of warm collection
        statistics are split by the document partition, and each shard is a
        self-contained snapshot directory under a top-level shard map.
        Open it with :meth:`open_sharded` (scatter-gather execution),
        :meth:`open_shard` (one shard as a standalone engine), or serve it
        with :mod:`repro.serving`.
        """
        if shards is not None:
            from repro.storage.shards import save_sharded_engine

            return save_sharded_engine(
                self, path, shards=shards, shard_keys=dict(shard_keys or {})
            )
        from repro.storage.engine_io import save_engine

        return save_engine(self, path)

    @classmethod
    def open(cls, path: str | Path, *, mmap: bool = True, **engine_kwargs: Any) -> "Engine":
        """Open a snapshot written by :meth:`save`.

        Tables, the triple list and saved collection statistics hydrate
        lazily; compiled SpinQL sources recorded in the snapshot are
        recompiled to warm the plan cache.  Raises
        :class:`~repro.errors.EngineError` (naming the offending path) for
        missing/corrupt snapshots and
        :class:`~repro.errors.SnapshotVersionError` with a "rebuild or
        upgrade" message on a format-version mismatch.
        """
        from repro.storage.engine_io import open_engine

        return open_engine(path, mmap=mmap, **engine_kwargs)

    @classmethod
    def open_shard(
        cls, path: str | Path, shard: int, *, mmap: bool = True
    ) -> "Engine":
        """Open one shard of a partitioned snapshot as a standalone engine.

        The shard is a complete engine over its fragment of the data —
        useful for worker processes and for inspecting a partition; for
        global answers use :meth:`open_sharded`.
        """
        from repro.storage.shards import open_shard

        return open_shard(path, shard, mmap=mmap)

    @classmethod
    def open_sharded(
        cls,
        path: str | Path,
        *,
        executor: str = "sharded",
        config: Any | None = None,
        workers: int | None = _UNSET,
        mmap: bool = _UNSET,
        transport: str = _UNSET,
        shm_threshold: int | None = _UNSET,
        **engine_kwargs: Any,
    ) -> "Engine":
        """Open a partitioned snapshot behind a scatter-gather executor.

        ``executor="sharded"`` memmaps every shard in this process;
        ``executor="pool"`` boots persistent worker processes fed over
        pipelined pipes, with replication, failover and self-healing
        restarts governed by ``config`` — a
        :class:`~repro.serving.config.ServingConfig` (the ``workers``,
        ``mmap``, ``transport`` and ``shm_threshold`` keyword arguments are
        the deprecated spelling of the same fields).  Worker replies at or
        above ``config.shm_threshold`` bytes travel through shared memory
        when ``config.transport`` is ``"auto"``/``"shm"`` and the platform
        supports it; ``"inline"`` keeps everything on the pipe codec.
        Either way the returned engine answers every query bit-identically
        to the unsharded engine: row-local plan segments (select/weight
        chains, rank-aware TOP) and keyword ranking scatter to the shards;
        everything else runs on the coordinator over gather-reconstructed
        tables.  The engine supports online re-sharding via
        :meth:`reshard`.  Raises :class:`~repro.errors.StorageError` for a
        missing or corrupt shard map.
        """
        from repro.serving.config import UNSET, resolve_config
        from repro.storage.format import read_manifest
        from repro.storage.shards import read_shard_map
        from repro.storage.snapshot import read_table_schemas
        from repro.triples.partitioning import make_storage

        legacy = {
            "workers": workers,
            "mmap": mmap,
            "transport": transport,
            "shm_threshold": shm_threshold,
        }
        resolved = resolve_config(
            config,
            {name: (UNSET if value is _UNSET else value) for name, value in legacy.items()},
            "Engine.open_sharded",
        )
        shard_map = read_shard_map(path)
        manifest = read_manifest(shard_map.shard_directory(0), "engine")
        engine = cls(
            triples_table=manifest["triples_table"],
            language=manifest["language"],
            **engine_kwargs,
        )
        engine._serving_config = resolved
        engine._snapshot_path = Path(path)
        engine._plan_executor = engine._build_shard_executor(shard_map, executor, resolved)

        # coordinator tables hydrate on demand by gathering shard fragments
        # back into exact original row order (the bit-identity fallback path);
        # fragment schemas equal the unsharded table's, so shard 0's manifest
        # declares each lazy table's schema for hydration-free verification.
        # The closures read the executor through the engine so an online
        # reshard re-points them at the new layout's backends automatically.
        schemas = read_table_schemas(shard_map.shard_directory(0) / "database")
        for name in shard_map.table_names:
            engine.database.catalog.create_lazy_table(
                name,
                lambda name=name: gather_table(engine._plan_executor.backends, name),
                schema=schemas.get(name),
            )

        # the triple store reuses the shard layout's storage strategy; the
        # triple list itself gathers lazily on first access
        store_manifest = read_manifest(shard_map.shard_directory(0) / "store", "triple-store")
        storage = make_storage(store_manifest["storage"]["name"])
        storage.restore_state(store_manifest["storage"]["state"])
        engine.store.storage = storage
        engine.store.table_name = store_manifest["table_name"]
        engine.store.adopt_snapshot(lambda: gather_triples(engine._plan_executor.backends))

        for entry in manifest["spinql"]:
            engine._compile_spinql(entry["source"], frozenset(entry["parameters"]))
        return engine

    def _build_shard_executor(
        self, shard_map: Any, executor: str, config: Any
    ) -> PlanExecutor:
        """One scatter-gather executor over ``shard_map`` (shared with reshard)."""
        from repro.storage.shards import shard_rowids

        if executor == "pool":
            from repro.serving.pool import WorkerPool

            pool = WorkerPool(shard_map, config, on_event=self._log_serving_event)
            return PoolExecutor(self, shard_map, pool)
        if executor == "sharded":
            backends = [
                InProcessShard(
                    Engine.open(shard_map.shard_directory(index), mmap=config.mmap),
                    shard_rowids(shard_map, index),
                )
                for index in shard_map.shards()
            ]
            return ShardedExecutor(self, shard_map, backends)
        raise EngineError(f"unknown executor {executor!r}; use 'sharded' or 'pool'")

    def _log_serving_event(self, name: str, detail: dict[str, Any]) -> None:
        """Record a failover/restart/swap event in the workload log."""
        try:
            self.workload_log.record(
                "event",
                f"event::{name}",
                0.0,
                request={"event": name, **detail},
                executor=self._plan_executor.kind,
                status="ok",
            )
        except Exception:  # noqa: BLE001 - events must never break serving
            pass

    # -- front ends -------------------------------------------------------------------

    def spinql(self, source: str, **bindings: Any) -> SpinQLQuery:
        """A lazy SpinQL query; keyword arguments become named parameters."""
        return SpinQLQuery(self, source, bindings)

    def search(
        self,
        table: str,
        query: str | None = None,
        *,
        model: Any | None = None,
        pipeline: str = "direct",
        top_k: int | None = None,
        expander: Any | None = None,
        id_column: str = "docID",
        text_column: str = "data",
    ) -> SearchQuery:
        """Lazy keyword search over a docs table/view, sharing warm statistics."""
        return SearchQuery(
            self,
            table,
            query,
            model=model,
            pipeline=pipeline,
            top_k=top_k,
            expander=expander,
            id_column=id_column,
            text_column=text_column,
        )

    def table(self, name: str) -> TableQuery:
        """Start a fluent builder chain over a table or view."""
        return TableQuery(self, PraScan(name), self._value_columns_of(name))

    def traverse(
        self,
        property_name: str,
        seeds: Any | None = None,
        *,
        direction: str = "forward",
        merge: str = "independent",
    ) -> TableQuery:
        """Lazy graph traversal from ``seeds`` (any :func:`as_probabilistic` shape).

        Without ``seeds`` the query keeps a free ``seeds`` parameter, so one
        compiled traversal can be executed against many seed sets::

            hop = engine.traverse("hasAuction")
            hop.execute(seeds=["lot1", "lot2"])
        """
        bindings = {} if seeds is None else {"seeds": as_probabilistic(seeds)}
        start = TableQuery(self, PraParam("seeds"), ["node"], bindings)
        return start.traverse(property_name, direction=direction, merge=merge)

    def strategy(
        self,
        graph: StrategyGraph | str,
        query: str = "",
        *,
        result_block: str | None = None,
        parameters: Mapping[str, Any] | None = None,
        **builder_kwargs: Any,
    ) -> StrategyQuery:
        """A lazy strategy execution; ``graph`` is a graph or a prebuilt name.

        Known names: ``toy``, ``auction``, ``expanded-auction``, ``experts``;
        ``builder_kwargs`` are forwarded to the prebuilt builder.
        """
        name: str | None = None
        if isinstance(graph, str):
            builders = _strategy_builders()
            try:
                builder = builders[graph]
            except KeyError:
                raise EngineError(
                    f"unknown strategy {graph!r}; known strategies: {sorted(builders)}"
                ) from None
            # only a default build is replayable by name from the workload log
            name = graph if not builder_kwargs else None
            graph = builder(**builder_kwargs)
        elif builder_kwargs:
            raise EngineError(
                "builder keyword arguments are only valid with a strategy name, "
                "not a pre-built graph"
            )
        return StrategyQuery(
            self, graph, query, result_block=result_block, parameters=parameters, name=name
        )

    def explain(self, source: str, *, top_k: int | None = None, **bindings: Any) -> str:
        """Shorthand for ``engine.spinql(source, **bindings).explain()``.

        With ``top_k``, the report shows the plan under a ``TOP k`` root and
        where the optimizer pushed it.
        """
        return self.spinql(source, **bindings).explain(top_k=top_k)

    def analyze(
        self,
        source_or_plan: "str | PraPlan",
        *,
        top_k: int | None = None,
        hydrate: bool = True,
        **bindings: Any,
    ):
        """Statically verify a SpinQL program or PRA plan without executing it.

        Returns an :class:`~repro.analysis.diagnostics.AnalysisReport`: the
        derived output schema, typed error/warning/note diagnostics with plan
        provenance, and — on a sharded engine — the shard-safety
        classification the scatter-gather executor itself uses.  No data is
        read unless ``hydrate`` forces lazy schemas to resolve (set
        ``hydrate=False`` to keep the check purely in-memory; unknowable
        schemas then surface as ``unknown-schema`` warnings instead of false
        "ok"s).
        """
        if isinstance(source_or_plan, PraPlan):
            return self._verify_plan(
                self._optimize_plan(source_or_plan),
                bindings=_coerce_bindings(bindings),
                hydrate=hydrate,
            )
        return self.spinql(source_or_plan, **bindings).check(top_k=top_k, hydrate=hydrate)

    def _verify_plan(
        self,
        plan: PraPlan,
        *,
        bindings: Mapping[str, ProbabilisticRelation] | None = None,
        parameters: Iterable[str] = (),
        hydrate: bool = True,
    ):
        """Run the static verifier over ``plan`` against this engine's catalog.

        The shard-safety classification is enabled exactly when this engine
        executes through a scatter-gather executor, using the executor's own
        ``shard_map.is_partitioned`` — verifier and executor can never
        disagree about which plans scatter.
        """
        from repro.analysis.verifier import CatalogSchemaProvider, verify_plan

        shard_map = getattr(self._plan_executor, "shard_map", None)
        return verify_plan(
            plan,
            schema_provider=CatalogSchemaProvider(self.database, hydrate=hydrate),
            functions=self.database.functions,
            parameters=parameters,
            bindings=bindings,
            partitioned=shard_map.is_partitioned if shard_map is not None else None,
        )

    def execute_many(
        self,
        query: Query,
        param_batches: Iterable[Mapping[str, Any]],
        *,
        max_workers: int | None = None,
    ) -> list[Any]:
        """Execute ``query`` once per parameter set, optionally on a thread pool.

        Compilation and optimization run once; with ``max_workers`` greater
        than one the evaluations run concurrently.  Results always come back
        in batch order, identical to serial execution.
        """
        return query.execute_many(param_batches, max_workers=max_workers)

    # -- shared pipeline ---------------------------------------------------------------

    @property
    def executor(self) -> StrategyExecutor:
        """The strategy executor bound to this engine's triple store."""
        if self._executor is None:
            self._executor = StrategyExecutor(self.store)
        return self._executor

    def _compile_spinql(self, source: str, parameters: frozenset[str]) -> CompiledProgram:
        key = f"spinql::{self.triples_table}::{','.join(sorted(parameters))}::{source}"
        cached = self.plan_cache.get(key)
        if cached is not None:
            return cached
        compiled = compile_script(
            source, parameters=parameters, triples_table=self.triples_table
        )
        plan = compiled.final_plan
        program = CompiledProgram(
            source=source,
            compiled=compiled,
            plan=plan,
            optimized=optimize_pra(plan, top_gate=self._top_pushdown_gate()),
        )
        dependencies = frozenset().union(
            *(scan_tables(statement) for statement in compiled.plans.values())
        )
        self.plan_cache.put(key, program, dependencies=dependencies)
        return program

    def _optimize_plan(self, plan: PraPlan) -> PraPlan:
        key = f"pra::{plan.fingerprint()}"
        cached = self.plan_cache.get(key)
        if cached is not None:
            return cached
        optimized = optimize_pra(plan, top_gate=self._top_pushdown_gate())
        self.plan_cache.put(key, optimized, dependencies=scan_tables(plan))
        return optimized

    # -- the workload feedback loop -----------------------------------------------

    def _table_rows(self, name: str) -> float | None:
        """Row count for cost estimation — from memory only, never from disk.

        Lazy snapshot tables and views answer ``None`` (sizing them would
        force hydration), which the cost model maps to its default estimate.
        """
        catalog = self.database.catalog
        try:
            if catalog.has_table(name) and catalog.is_hydrated(name):
                return float(catalog.table(name).num_rows)
        except ReproError:
            return None
        return None

    def _top_pushdown_gate(self) -> Any | None:
        """The cost-model predicate gating TOP pushdown, or ``None`` (always push)."""
        model = self.cost_model
        if model is None or model.top_pushdown_threshold <= 0:
            return None

        def gate(child: PraPlan) -> bool:
            estimate = model.estimate(child, self._table_rows)
            return model.should_push_top(estimate.output_rows)

        return gate

    def estimate_cost(self, plan: PraPlan):
        """The cost model's estimate for ``plan`` against this catalog."""
        return self.cost_model.estimate(plan, self._table_rows)

    def calibrate_cost_model(self, *, min_samples: int = 8) -> bool:
        """Fit the cost model's coefficients from this engine's workload log.

        Returns True when enough logged executions carried unit vectors to
        solve the fit.  Coefficients only affect *estimates* (and, with
        nonzero thresholds, which result-identical plan variant runs) —
        never results.
        """
        return self.cost_model.calibrate(
            self.workload_log.snapshot(), min_samples=min_samples
        )

    def _record_execution(
        self,
        *,
        kind: str,
        fingerprint: str,
        started: float,
        rows_out: int | None,
        status: str = "ok",
        request: dict[str, Any] | None = None,
        parameters: str | None = None,
        result_cache: str | None = None,
        cost_units: dict[str, float] | None = None,
        tables: Iterable[str] = (),
        executor: PlanExecutor | None = None,
    ) -> None:
        """Append one record to the workload log (never raises into queries)."""
        known_rows = [self._table_rows(name) for name in tables]
        sized = [rows for rows in known_rows if rows is not None]
        used = executor if executor is not None else self._plan_executor
        scatter = getattr(used, "last_scatter", None) or {}
        fanout = 0
        if scatter.get("segments") or scatter.get("search"):
            fanout = len(getattr(used, "backends", []))
        self.workload_log.record(
            kind,
            fingerprint,
            (time.perf_counter() - started) * 1000.0,
            rows_out=rows_out,
            rows_in=int(sum(sized)) if sized else None,
            parameters=parameters or None,
            request=request,
            result_cache=result_cache,
            executor=used.kind,
            shard_fanout=fanout,
            status=status,
            cost_units=cost_units or {},
        )

    def _evaluate(
        self,
        plan: PraPlan,
        bindings: Mapping[str, ProbabilisticRelation] | None = None,
        *,
        kind: str = "plan",
        request: dict[str, Any] | None = None,
    ) -> ProbabilisticRelation:
        """Run an (already optimized) plan through the engine's executor.

        Every call is logged to :attr:`workload_log`; with the result cache
        enabled, a repeat of the same (plan fingerprint, bound parameters)
        returns the previously computed relation — the identical object, so
        a hit is bit-identical to recomputation by construction.
        """
        self._require_open()
        started = time.perf_counter()
        bound = bindings or None
        fingerprint = "plan::" + _short_digest(plan.fingerprint())
        cache_key: tuple[str, str] | None = None
        cache_status: str | None = None
        if self.result_cache is not None:
            params = binding_fingerprint(bound)
            if params is not None:
                cache_key = (plan.fingerprint(), params)
                cached = self.result_cache.lookup(cache_key)
                if cached is not None:
                    self._record_execution(
                        kind=kind,
                        fingerprint=fingerprint,
                        started=started,
                        rows_out=cached.num_rows,
                        request=request,
                        parameters=params or None,
                        result_cache="hit",
                        tables=scan_tables(plan),
                    )
                    return cached
                cache_status = "miss"
        executor = self._checkout_executor()
        try:
            result = executor.execute_plan(plan, bound)
        except Exception:
            self._record_execution(
                kind=kind,
                fingerprint=fingerprint,
                started=started,
                rows_out=None,
                status="error",
                request=request,
                result_cache=cache_status,
                tables=scan_tables(plan),
                executor=executor,
            )
            raise
        finally:
            self._release_executor(executor)
        if cache_key is not None and self.result_cache is not None:
            admitted = self.result_cache.store(
                cache_key, result, dependencies=scan_tables(plan)
            )
            cache_status = "miss" if admitted else "bypass"
        self._record_execution(
            kind=kind,
            fingerprint=fingerprint,
            started=started,
            rows_out=result.num_rows,
            request=request,
            parameters=cache_key[1] if cache_key else None,
            result_cache=cache_status,
            cost_units=self.cost_model.estimate(plan, self._table_rows).per_kind_units,
            tables=scan_tables(plan),
            executor=executor,
        )
        return result

    def _execute_plan(
        self, plan: PraPlan, bindings: Mapping[str, ProbabilisticRelation] | None = None
    ) -> ProbabilisticRelation:
        return self._evaluate(self._optimize_plan(plan), bindings)

    def executor_info(self) -> dict[str, Any]:
        """A description of the plan executor (kind, shard/worker counts)."""
        return self._plan_executor.describe()

    def _search_sharded(
        self,
        *,
        table: str,
        query: str,
        model: Any | None,
        pipeline: str,
        top_k: int | None,
        expander: Any | None,
        id_column: str,
        text_column: str,
    ) -> Any | None:
        """Scatter a keyword query to the shards, or ``None`` on the local path.

        Query analysis and expansion run on the coordinator (they only need
        the analyzer and the expander); per-shard ranking uses the global
        statistics reduce, so the merged result is bit-identical to the
        unsharded search.
        """
        import time

        from repro.ir.search import SearchResult

        self._require_open()
        executor = self._checkout_executor()
        try:
            if not isinstance(executor, (ShardedExecutor, PoolExecutor)):
                return None
            started = time.perf_counter()
            searcher = self._search_engine(
                table,
                model=model,
                pipeline=pipeline,
                expander=expander,
                id_column=id_column,
                text_column=text_column,
            )
            base_terms, expanded_terms, terms = searcher.query_terms(query)
            spec = SearchSpec(
                table=table,
                terms=list(terms),
                top_k=top_k,
                pipeline=pipeline,
                id_column=id_column,
                text_column=text_column,
                model=model,
            )
            was_warm = executor.has_global_statistics(spec)
            ranked = executor.search(spec)
        finally:
            self._release_executor(executor)
        if ranked is None:
            return None
        return SearchResult(
            query=query,
            query_terms=list(base_terms),
            ranked=ranked,
            elapsed_seconds=time.perf_counter() - started,
            statistics_were_cached=was_warm,
            expanded_terms=list(expanded_terms),
        )

    def _search_sharded_many(
        self,
        *,
        table: str,
        queries: Sequence[str],
        model: Any | None,
        pipeline: str,
        top_k: int | None,
        expander: Any | None,
        id_column: str,
        text_column: str,
    ) -> list[Any] | None:
        """Scatter a keyword-query batch to the shards, or ``None`` locally.

        The whole batch rides one scatter: every shard answers all B queries
        through its vectorized multi-query kernel (shared posting slices),
        and each merged result is bit-identical to scattering that query
        alone.
        """
        import time

        from repro.ir.search import SearchResult

        self._require_open()
        executor = self._checkout_executor()
        try:
            if not isinstance(executor, (ShardedExecutor, PoolExecutor)):
                return None
            started = time.perf_counter()
            searcher = self._search_engine(
                table,
                model=model,
                pipeline=pipeline,
                expander=expander,
                id_column=id_column,
                text_column=text_column,
            )
            analyzed = [searcher.query_terms(query) for query in queries]
            specs = [
                SearchSpec(
                    table=table,
                    terms=list(terms),
                    top_k=top_k,
                    pipeline=pipeline,
                    id_column=id_column,
                    text_column=text_column,
                    model=model,
                )
                for _base, _expanded, terms in analyzed
            ]
            was_warm = executor.has_global_statistics(specs[0])
            ranked_lists = executor.search_many(specs)
        finally:
            self._release_executor(executor)
        if ranked_lists is None:
            return None
        elapsed = time.perf_counter() - started
        return [
            SearchResult(
                query=query,
                query_terms=list(base_terms),
                ranked=ranked,
                elapsed_seconds=elapsed,
                statistics_were_cached=was_warm,
                expanded_terms=list(expanded_terms),
            )
            for query, (base_terms, expanded_terms, _terms), ranked in zip(
                queries, analyzed, ranked_lists
            )
        ]

    def search_many(
        self,
        table: str,
        queries: Sequence[str],
        *,
        model: Any | None = None,
        pipeline: str = "direct",
        top_k: int | None = None,
        expander: Any | None = None,
        id_column: str = "docID",
        text_column: str = "data",
    ) -> list[Any]:
        """Run a batch of keyword queries through one vectorized scoring pass.

        On a sharded/pool engine the batch scatters as one multi-query
        request per shard; locally it runs through
        :meth:`KeywordSearchEngine.search_many`.  Either way each result is
        bit-identical to :meth:`search` + ``execute`` on that query alone,
        and every query still gets its own workload-log record.
        """
        queries = list(queries)
        if not queries:
            return []
        started = time.perf_counter()
        requests = [
            {"kind": "search", "table": table, "query": query}
            | ({"top_k": top_k} if top_k is not None else {})
            for query in queries
        ]
        try:
            results = self._search_sharded_many(
                table=table,
                queries=queries,
                model=model,
                pipeline=pipeline,
                top_k=top_k,
                expander=expander,
                id_column=id_column,
                text_column=text_column,
            )
            if results is None:
                searcher = self._search_engine(
                    table,
                    model=model,
                    pipeline=pipeline,
                    expander=expander,
                    id_column=id_column,
                    text_column=text_column,
                )
                results = searcher.search_many(queries, top_k=top_k)
        except Exception:
            for query, request in zip(queries, requests):
                self._record_execution(
                    kind="search",
                    fingerprint=f"search::{table}::{query}",
                    started=started,
                    rows_out=None,
                    status="error",
                    request=request,
                )
            raise
        for query, request, result in zip(queries, requests, results):
            self._record_execution(
                kind="search",
                fingerprint=f"search::{table}::{query}",
                started=started,
                rows_out=len(result.ranked),
                request=request,
            )
        return results

    def _value_columns_of(self, name: str) -> list[str]:
        try:
            relation = self.database.table(name)
        except ReproError:
            relation = self.database.query(name)
        return [column for column in relation.schema.names if column != PROBABILITY_COLUMN]

    def _search_engine(
        self,
        table: str,
        *,
        model: Any | None,
        pipeline: str,
        expander: Any | None,
        id_column: str,
        text_column: str,
    ):
        from repro.ir.search import KeywordSearchEngine

        model_key = repr(model.describe()) if model is not None else "default"
        expander_key = id(expander) if expander is not None else None
        key = (table, pipeline, model_key, expander_key, id_column, text_column)
        with self._registry_lock:
            searcher = self._search_engines.get(key)
        if searcher is None:
            searcher = KeywordSearchEngine(
                self.database,
                table,
                model=model,
                pipeline=pipeline,
                language=self.language,
                id_column=id_column,
                text_column=text_column,
                expander=expander,
            )
            with self._registry_lock:
                # a concurrent builder may have won the race; keep its searcher
                searcher = self._search_engines.setdefault(key, searcher)
        return searcher

    def _rank_documents(
        self,
        docs: ProbabilisticRelation,
        query: str,
        *,
        model: Any | None,
        top_k: int | None,
    ) -> ProbabilisticRelation:
        from repro.strategy.blocks import StrategyContext
        from repro.strategy.library import RankByTextBlock

        model_key = repr(model.describe()) if model is not None else "default"
        key = (model_key, top_k)
        with self._registry_lock:
            block = self._rank_blocks.get(key)
        if block is None:
            block = RankByTextBlock(model, language=self.language, top_k=top_k)
            with self._registry_lock:
                block = self._rank_blocks.setdefault(key, block)
        # the rank block expects (docID, data, p) column names
        relation = docs.relation
        id_name, text_name = docs.value_columns
        if (id_name, text_name) != ("docID", "data"):
            relation = relation.rename({id_name: "docID", text_name: "data"})
            docs = ProbabilisticRelation(relation, validate=False)
        context = StrategyContext(store=self.store, query=query)
        terms = self.analyzer.analyze_query(query)
        ranked = block.execute(context, {"documents": docs, "query": terms})
        return ranked.sorted_by_probability()


def _short_digest(text: str) -> str:
    """A compact, process-stable digest for workload-log fingerprints."""
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:16]


def connect(database: Database | None = None, **kwargs: Any) -> Engine:
    """Open an engine session (the EVA-style ``connect()`` entry point)."""
    return Engine(database, **kwargs)
