"""Plan executors: local, sharded scatter-gather, and worker-pool execution.

:meth:`Engine._execute_plan` no longer evaluates plans directly — it hands
the *optimized* plan to the engine's executor, one of three implementations
of the same interface:

* :class:`LocalExecutor` — the single-engine path (exactly the old
  behaviour): evaluate the plan against the engine's own database.
* :class:`ShardedExecutor` — scatter-gather over per-shard engines opened
  from a partitioned snapshot *in this process*.
* :class:`PoolExecutor` — the same scatter-gather over a pool of persistent
  worker processes, each memmapping its own shard
  (:mod:`repro.serving.pool`).

**The bit-identity contract.**  Sharded execution must return exactly what
the unsharded engine returns — scores, rows and tie order.  The merge
kernels (``group_codes``/``group_segments``) are input-row-order-sensitive
(stable sorts, first-seen group numbering), so the executors never let a
duplicate-merging operator see shard-reordered input.  Instead:

* only **row-local** plan segments are scattered — maximal
  ``SELECT``/``WEIGHT`` chains directly above a scan of a partitioned
  table, optionally capped by a single ``TOP`` (the shape the PR-3
  optimizer produces by pushing TOP past weights and fusing selects);
* every scattered fragment carries a hidden trailing value column holding
  each row's **original row index** (appended after the real value columns,
  so 1-based positional references are unchanged);
* the gather step reassembles fragments **in original row order** (concat +
  sort by the hidden column, then drop it) — bit-exactly the relation the
  unsharded plan would have produced at that point — and the remainder of
  the plan runs on the coordinator.

For a ``TOP k`` segment each shard returns at most ``k`` candidates and the
gather takes the global top ``k`` with the same deterministic tie order
(probability descending, value columns ascending, original row index last —
which is exactly the stable-input-order tie-break of the local path).

Keyword search scatters differently: each shard ranks its own documents
against **global** collection statistics
(:class:`~repro.ir.statistics.ShardCollectionStatistics`), so per-document
scores are bit-identical, and the ranked merge breaks score ties by global
document index — the same order the unsharded accumulator produces.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import EngineError
from repro.ir.ranking import BM25Model, LanguageModel
from repro.ir.ranking.base import RankedList, RankingModel
from repro.ir.statistics import CollectionStatistics, GlobalStatistics, ShardCollectionStatistics
from repro.pra import operators as pra_operators
from repro.pra.evaluator import PRAEvaluator
from repro.pra.plan import PraPlan
from repro.pra.relation import PROBABILITY_COLUMN, ProbabilisticRelation
from repro.relational.column import Column, DataType
from repro.relational.relation import Relation

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine import Engine
    from repro.storage.shards import ShardMap, ShardRowids

#: hidden trailing value column carrying original row indices through a scatter
GATHER_ROW_COLUMN = "__shard_row__"


# ---------------------------------------------------------------------------
# search specs (shared by the engine facade, the executors, and the workers)
# ---------------------------------------------------------------------------


@dataclass
class SearchSpec:
    """Everything a shard needs to rank one keyword query."""

    table: str
    terms: list[str]
    top_k: int | None = None
    pipeline: str = "direct"
    id_column: str = "docID"
    text_column: str = "data"
    model: RankingModel | None = None


def statistics_key(spec: SearchSpec) -> tuple:
    """Cache key for the global collection statistics a search needs.

    Shared by the executor's coordinator-side cache and the worker-side
    cache (:mod:`repro.serving.worker`): two specs with the same key rank
    against the same merged df/cf tables, so the pool sends the payload to
    each worker at most once per key.
    """
    return (spec.table, spec.pipeline, spec.id_column, spec.text_column)


def model_from_descriptor(descriptor: dict[str, Any] | None) -> RankingModel | None:
    """Rebuild a ranking model from its ``describe()`` dict (JSON requests).

    Returns ``None`` (meaning: the default model) when the descriptor is
    absent is handled by returning a fresh BM25; an unknown model name
    yields ``None`` so the router can reject the request cleanly.
    """
    if descriptor is None:
        return BM25Model()
    name = descriptor.get("model")
    if name == "bm25":
        return BM25Model(k1=float(descriptor["k1"]), b=float(descriptor["b"]))
    if name == "lm":
        return LanguageModel(
            smoothing=str(descriptor["smoothing"]),
            mu=float(descriptor["mu"]),
            lam=float(descriptor["lambda"]),
        )
    return None


# ---------------------------------------------------------------------------
# scatter planning
# ---------------------------------------------------------------------------

# The scatter planner (segment matching, extraction, shard-plan rewriting)
# moved to the analysis layer so the static verifier classifies plans with
# the *same* code path the executors dispatch with — see
# :mod:`repro.analysis.locality`.  Re-exported here for compatibility.
from repro.analysis.locality import (  # noqa: E402
    FRAGMENT_PARAM,
    ScatterSegment,
    _chain_table,
    _replace_scan,
    _with_children,
    extract_segments,
    match_segment,
)


# ---------------------------------------------------------------------------
# gather kernels
# ---------------------------------------------------------------------------


def augment_fragment(relation: Relation, rowids: np.ndarray) -> ProbabilisticRelation:
    """Lift a table fragment and append its original-row-index column.

    The index column sits *after* the real value columns and *before* ``p``,
    so 1-based positional references in predicates are unchanged, and the
    deterministic tie-break (value columns in order, index last) reproduces
    the stable input-order tie-break of unsharded evaluation.
    """
    lifted = ProbabilisticRelation.lift(relation)
    augmented = (
        lifted.values_relation()
        .with_column(GATHER_ROW_COLUMN, Column(np.asarray(rowids, dtype=np.int64), DataType.INT))
        .with_column(PROBABILITY_COLUMN, Column(lifted.probabilities(), DataType.FLOAT))
    )
    return ProbabilisticRelation(augmented, validate=False)


def _concat_results(results: Sequence[ProbabilisticRelation]) -> Relation:
    relation = results[0].relation
    for result in results[1:]:
        relation = relation.concat(result.relation)
    return relation


def _drop_row_column(relation: Relation) -> ProbabilisticRelation:
    return ProbabilisticRelation(relation.without_column(GATHER_ROW_COLUMN), validate=False)


def gather_concat(results: Sequence[ProbabilisticRelation]) -> ProbabilisticRelation:
    """Reassemble row-local shard results in exact original row order."""
    relation = _concat_results(results)
    if relation.num_rows:
        order = np.argsort(
            np.asarray(relation.column(GATHER_ROW_COLUMN).values, dtype=np.int64),
            kind="stable",
        )
        relation = relation.take(order)
    return _drop_row_column(relation)


def gather_top(results: Sequence[ProbabilisticRelation], k: int) -> ProbabilisticRelation:
    """Merge per-shard top-k candidate lists into the global top ``k``.

    Each input holds at most ``k`` rows; the merge reuses the rank-aware
    top-k kernel, whose tie order (probability descending, value columns
    ascending — original row index last, thanks to the hidden column) is
    exactly the local path's stable tie-break.
    """
    merged = ProbabilisticRelation(_concat_results(results), validate=False)
    return _drop_row_column(pra_operators.top(merged, k).relation)


def merge_ranked(
    shard_results: Sequence[tuple[list[Any], np.ndarray, np.ndarray]],
    top_k: int | None,
) -> RankedList:
    """Merge per-shard ranked lists deterministically.

    Each entry is ``(doc_ids, scores, global_doc_indices)``.  The merged
    order is score descending with ties broken by ascending global document
    index — identical to the unsharded accumulator's stable sort over
    index-ordered documents.
    """
    doc_ids: list[Any] = []
    scores_parts: list[np.ndarray] = []
    index_parts: list[np.ndarray] = []
    for ids, scores, indices in shard_results:
        doc_ids.extend(ids)
        scores_parts.append(np.asarray(scores, dtype=np.float64))
        index_parts.append(np.asarray(indices, dtype=np.int64))
    if not doc_ids:
        return RankedList([], np.empty(0, dtype=np.float64))
    scores = np.concatenate(scores_parts)
    indices = np.concatenate(index_parts)
    order = np.lexsort((indices, -scores))
    if top_k is not None:
        order = order[:top_k]
    return RankedList([doc_ids[i] for i in order], scores[order])


def rank_shard(
    statistics: CollectionStatistics,
    global_statistics: GlobalStatistics,
    doc_rowids: np.ndarray,
    terms: Sequence[str],
    model: RankingModel,
    top_k: int | None,
) -> tuple[list[Any], np.ndarray, np.ndarray]:
    """Rank one shard's documents against global statistics.

    Returns ``(doc_ids, scores, global_doc_indices)`` for the shard's (at
    most ``top_k``) best documents; scores are bit-identical to what the
    unsharded engine computes for the same documents.
    """
    shard_view = ShardCollectionStatistics(statistics, global_statistics)
    ranked = model.rank(shard_view, terms, top_k=top_k)
    position_of = statistics.doc_positions()  # built once per statistics object
    global_indices = np.asarray(
        [doc_rowids[position_of[doc_id]] for doc_id in ranked.doc_ids], dtype=np.int64
    )
    return list(ranked.doc_ids), np.asarray(ranked.scores, dtype=np.float64), global_indices


def rank_shard_many(
    statistics: CollectionStatistics,
    global_statistics: GlobalStatistics,
    doc_rowids: np.ndarray,
    queries: Sequence[tuple[Sequence[str], int | None]],
    model: RankingModel,
) -> list[tuple[list[Any], np.ndarray, np.ndarray]]:
    """Rank a batch of queries over one shard in a single vectorized pass.

    The shard statistics view and the doc-position map are built once for
    the whole batch, and :meth:`RankingModel.rank_many` shares scored
    posting slices across queries.  Each returned triple is bit-identical
    to :func:`rank_shard` on that query alone.
    """
    shard_view = ShardCollectionStatistics(statistics, global_statistics)
    ranked_lists = model.rank_many(shard_view, queries)
    position_of = statistics.doc_positions()  # built once per statistics object
    results = []
    for ranked in ranked_lists:
        global_indices = np.asarray(
            [doc_rowids[position_of[doc_id]] for doc_id in ranked.doc_ids],
            dtype=np.int64,
        )
        results.append(
            (
                list(ranked.doc_ids),
                np.asarray(ranked.scores, dtype=np.float64),
                global_indices,
            )
        )
    return results


def gather_table(backends: Sequence[Any], table: str) -> Relation:
    """Reconstruct the full unsharded table from shard fragments, bit-exactly.

    Fragments preserve ascending original row order, so concatenating them
    and sorting by the per-shard original-row-index arrays reproduces the
    source table's exact rows and order.  This is the coordinator's lazy
    hydration path for plan shapes that cannot scatter (joins, merges).
    """
    if all(getattr(backend, "pipelined", False) for backend in backends):
        parts = [pending.result() for pending in [b.begin_fragment(table) for b in backends]]
    else:
        parts = [backend.fragment(table) for backend in backends]
    relation = parts[0][0]
    for fragment, _rows in parts[1:]:
        relation = relation.concat(fragment)
    rows = np.concatenate([np.asarray(rows, dtype=np.int64) for _fragment, rows in parts])
    if len(rows):
        relation = relation.take(np.argsort(rows, kind="stable"))
    return relation


def gather_triples(backends: Sequence[Any]) -> list:
    """Reconstruct the full triple list from shard fragments, in source order."""
    triples: list = []
    rows_parts: list[np.ndarray] = []
    for backend in backends:
        fragment, rows = backend.triples_fragment()
        triples.extend(fragment)
        rows_parts.append(np.asarray(rows, dtype=np.int64))
    if not triples:
        return []
    order = np.argsort(np.concatenate(rows_parts), kind="stable")
    return [triples[index] for index in order]


# ---------------------------------------------------------------------------
# shard backends
# ---------------------------------------------------------------------------


class _Immediate:
    """An already-computed pending reply (the in-process ``begin_*`` shape).

    In-process backends have no wire to pipeline over, so their ``begin_*``
    methods compute eagerly and wrap the value; callers treat the result
    uniformly with :class:`repro.serving.pool._PendingReply`.
    """

    def __init__(self, value: Any):
        self._value = value

    def result(self, timeout: float | None = None) -> Any:
        return self._value


class InProcessShard:
    """A shard backend over a shard engine opened in this process."""

    pipelined = False

    def __init__(self, engine: "Engine", rowids: "ShardRowids"):
        self.engine = engine
        self.rowids = rowids
        self._evaluator = PRAEvaluator(engine.database)
        self._fragments: dict[str, ProbabilisticRelation] = {}

    def _augmented(self, table: str) -> ProbabilisticRelation:
        fragment = self._fragments.get(table)
        if fragment is None:
            fragment = augment_fragment(self.engine.database.table(table), self.rowids.get(table))
            self._fragments[table] = fragment
        return fragment

    def evaluate_segment(self, plan: PraPlan, table: str) -> ProbabilisticRelation:
        return self._evaluator.evaluate(plan, bindings={FRAGMENT_PARAM: self._augmented(table)})

    def begin_segment(self, plan: PraPlan, table: str) -> _Immediate:
        return _Immediate(self.evaluate_segment(plan, table))

    def fragment(self, table: str) -> tuple[Relation, np.ndarray]:
        return self.engine.database.table(table), self.rowids.get(table)

    def begin_fragment(self, table: str) -> _Immediate:
        return _Immediate(self.fragment(table))

    def triples_fragment(self) -> tuple[list, np.ndarray]:
        return list(self.engine.store._triples), self.rowids.get_store()

    def _searcher(self, spec: SearchSpec):
        return self.engine._search_engine(
            spec.table,
            model=None,
            pipeline=spec.pipeline,
            expander=None,
            id_column=spec.id_column,
            text_column=spec.text_column,
        )

    def statistics_summary(self, spec: SearchSpec) -> GlobalStatistics:
        return GlobalStatistics.reduce([self._searcher(spec).statistics])

    def begin_statistics_summary(self, spec: SearchSpec) -> _Immediate:
        return _Immediate(self.statistics_summary(spec))

    def search_shard(
        self, spec: SearchSpec, global_statistics: GlobalStatistics
    ) -> tuple[list[Any], np.ndarray, np.ndarray]:
        model = spec.model if spec.model is not None else BM25Model()
        return rank_shard(
            self._searcher(spec).statistics,
            global_statistics,
            self.rowids.get(spec.table),
            spec.terms,
            model,
            spec.top_k,
        )

    def begin_search(
        self, spec: SearchSpec, global_statistics: GlobalStatistics
    ) -> _Immediate:
        return _Immediate(self.search_shard(spec, global_statistics))

    def search_shard_many(
        self, specs: Sequence[SearchSpec], global_statistics: GlobalStatistics
    ) -> list[tuple[list[Any], np.ndarray, np.ndarray]]:
        """Rank a batch of same-key specs in one pass (see :func:`rank_shard_many`)."""
        first = specs[0]
        model = first.model if first.model is not None else BM25Model()
        return rank_shard_many(
            self._searcher(first).statistics,
            global_statistics,
            self.rowids.get(first.table),
            [(spec.terms, spec.top_k) for spec in specs],
            model,
        )

    def begin_search_many(
        self, specs: Sequence[SearchSpec], global_statistics: GlobalStatistics
    ) -> _Immediate:
        return _Immediate(self.search_shard_many(specs, global_statistics))

    def close(self) -> None:
        self._fragments.clear()
        self.engine.close()


# ---------------------------------------------------------------------------
# executors
# ---------------------------------------------------------------------------


class PlanExecutor:
    """The interface :meth:`Engine._execute_plan` dispatches to."""

    kind = "abstract"

    def execute_plan(
        self,
        plan: PraPlan,
        bindings: Mapping[str, ProbabilisticRelation] | None = None,
    ) -> ProbabilisticRelation:
        raise NotImplementedError

    def search(self, spec: SearchSpec) -> RankedList | None:
        """Sharded ranking for ``spec``, or ``None`` to use the local path."""
        return None

    def search_many(self, specs: Sequence[SearchSpec]) -> list[RankedList] | None:
        """Sharded ranking for a same-key batch, or ``None`` for the local path."""
        return None

    def describe(self) -> dict[str, Any]:
        return {"executor": self.kind}

    def health(self) -> dict[str, Any]:
        """Liveness detail for serving endpoints; extends :meth:`describe`."""
        return self.describe()

    def close(self) -> None:
        """Release executor resources (worker pools, shard engines)."""


class LocalExecutor(PlanExecutor):
    """Single-engine evaluation: the pre-sharding behaviour, unchanged."""

    kind = "local"

    def __init__(self, engine: "Engine"):
        self._engine = engine

    def execute_plan(
        self,
        plan: PraPlan,
        bindings: Mapping[str, ProbabilisticRelation] | None = None,
    ) -> ProbabilisticRelation:
        return self._engine._evaluator.evaluate(plan, bindings=bindings or None)


class ScatterGatherExecutor(PlanExecutor):
    """Shared scatter-gather logic over a set of shard backends."""

    kind = "scatter-gather"

    def __init__(self, engine: "Engine", shard_map: "ShardMap", backends: Sequence[Any]):
        self._engine = engine
        self.shard_map = shard_map
        self.backends = list(backends)
        self._global_statistics: dict[tuple, GlobalStatistics] = {}
        self.last_scatter: dict[str, Any] = {}

    # -- plans ------------------------------------------------------------------

    def _scatter_allowed(self, table: str) -> bool:
        """Whether a segment over ``table`` scatters or runs on the coordinator.

        Partitioning is the hard requirement; on top of it the engine's cost
        model may veto scattering tiny (hydrated) tables, where per-shard
        overhead exceeds the work saved.  Either way the result is
        bit-identical — the coordinator path evaluates the same plan over the
        gathered table.
        """
        if not self.shard_map.is_partitioned(table):
            return False
        model = getattr(self._engine, "cost_model", None)
        if model is None:
            return True
        return model.should_scatter(self._engine._table_rows(table))

    def execute_plan(
        self,
        plan: PraPlan,
        bindings: Mapping[str, ProbabilisticRelation] | None = None,
    ) -> ProbabilisticRelation:
        segments: list[tuple[str, ScatterSegment]] = []
        rewritten = extract_segments(plan, self._scatter_allowed, segments)
        self.last_scatter = {
            "segments": len(segments),
            "tables": [segment.table for _name, segment in segments],
        }
        if not segments:
            return self._engine._evaluator.evaluate(rewritten, bindings=bindings or None)
        gathered: dict[str, ProbabilisticRelation] = {}
        shard_counts: list[list[int]] = []
        for name, segment in segments:
            shard_plan = segment.shard_plan()

            def begin(backend, plan=shard_plan, table=segment.table):
                return backend.begin_segment(plan, table)

            def evaluate(backend, plan=shard_plan, table=segment.table):
                return backend.evaluate_segment(plan, table)

            results = self._fan_out(begin, evaluate)
            shard_counts.append([result.num_rows for result in results])
            gathered[name] = segment.gather(results)
        self.last_scatter["per_shard_rows"] = shard_counts
        merged = dict(bindings or {})
        merged.update(gathered)
        return self._engine._evaluator.evaluate(rewritten, bindings=merged)

    def _map_backends(self, operation: Callable[[Any], Any]) -> list[Any]:
        if len(self.backends) == 1:
            return [operation(backend) for backend in self.backends]
        # the dedicated shard pool, never the batch pool: batch tasks call
        # into here from inside the batch pool's own threads
        pool = self._engine._shard_pool(len(self.backends))
        return list(pool.map(operation, self.backends))

    def _fan_out(
        self, begin: Callable[[Any], Any], blocking: Callable[[Any], Any]
    ) -> list[Any]:
        """Run one operation on every backend, overlapping all of them.

        Pipelined backends (:class:`repro.serving.pool.PoolShard`) put every
        request on the wire first — each ``begin`` is just a pipe write — and
        collect replies afterwards, so the scatter overlaps all workers from
        the calling thread with no thread pool.  In-process backends compute
        on a thread pool via ``blocking`` as before.
        """
        if self.backends and all(
            getattr(backend, "pipelined", False) for backend in self.backends
        ):
            return [pending.result() for pending in [begin(b) for b in self.backends]]
        return self._map_backends(blocking)

    # -- search -----------------------------------------------------------------

    def _search_supported(self, spec: SearchSpec) -> bool:
        return self.shard_map.is_partitioned(spec.table)

    _statistics_key = staticmethod(statistics_key)

    def has_global_statistics(self, spec: SearchSpec) -> bool:
        """True once the global reduce for this table/config has been merged."""
        return self._statistics_key(spec) in self._global_statistics

    def _global_for(self, spec: SearchSpec) -> GlobalStatistics:
        key = self._statistics_key(spec)
        cached = self._global_statistics.get(key)
        if cached is None:
            summaries = self._fan_out(
                lambda backend: backend.begin_statistics_summary(spec),
                lambda backend: backend.statistics_summary(spec),
            )
            cached = GlobalStatistics.merge(summaries)
            self._global_statistics[key] = cached
        return cached

    def search(self, spec: SearchSpec) -> RankedList | None:
        if not self._search_supported(spec):
            return None
        global_statistics = self._global_for(spec)
        results = self._fan_out(
            lambda backend: backend.begin_search(spec, global_statistics),
            lambda backend: backend.search_shard(spec, global_statistics),
        )
        self.last_scatter = {
            "search": spec.table,
            "per_shard_candidates": [len(ids) for ids, _scores, _rows in results],
        }
        return merge_ranked(results, spec.top_k)

    def search_many(self, specs: Sequence[SearchSpec]) -> list[RankedList] | None:
        """Sharded ranking for a batch of same-key specs, or ``None``.

        All specs must share one :func:`statistics_key` (the engine groups
        before dispatching); each shard answers the whole batch through its
        vectorized kernel, and every merged list is bit-identical to
        :meth:`search` on that spec alone.
        """
        if not specs:
            return []
        first = specs[0]
        if not self._search_supported(first):
            return None
        key = self._statistics_key(first)
        if any(self._statistics_key(spec) != key for spec in specs[1:]):
            raise EngineError("search_many requires specs sharing one statistics key")
        global_statistics = self._global_for(first)
        per_backend = self._fan_out(
            lambda backend: backend.begin_search_many(specs, global_statistics),
            lambda backend: backend.search_shard_many(specs, global_statistics),
        )
        self.last_scatter = {
            "search": first.table,
            "batch": len(specs),
            "per_shard_candidates": [
                sum(len(ids) for ids, _scores, _rows in shard) for shard in per_backend
            ],
        }
        return [
            merge_ranked([shard[index] for shard in per_backend], spec.top_k)
            for index, spec in enumerate(specs)
        ]

    # -- lifecycle ---------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        return {
            "executor": self.kind,
            "shards": self.shard_map.num_shards,
            "epoch": self.shard_map.epoch,
        }

    def close(self) -> None:
        errors: list[BaseException] = []
        for backend in self.backends:
            try:
                backend.close()
            except BaseException as error:  # noqa: BLE001 - collect, then re-raise
                errors.append(error)
        self.backends = []
        if errors:
            raise errors[0]


class ShardedExecutor(ScatterGatherExecutor):
    """Scatter-gather over per-shard engines living in this process."""

    kind = "sharded"


class PoolExecutor(ScatterGatherExecutor):
    """Scatter-gather over persistent worker processes (one per shard set).

    Backends are :class:`repro.serving.pool.PoolShard` proxies; the pool
    itself (process lifecycle, pipes, codec) lives in
    :mod:`repro.serving.pool`.
    """

    kind = "pool"

    def __init__(self, engine: "Engine", shard_map: "ShardMap", pool: Any):
        super().__init__(engine, shard_map, pool.shard_backends())
        self._pool = pool

    def describe(self) -> dict[str, Any]:
        description = super().describe()
        description["workers"] = self._pool.num_workers
        description["transport"] = self._pool.transport
        description["replicas"] = self._pool.replicas
        return description

    def health(self) -> dict[str, Any]:
        """Describe plus per-worker liveness (no worker round-trips)."""
        description = self.describe()
        description["worker_liveness"] = self._pool.liveness()
        description["replication"] = self._pool.replication()
        description["batching"] = self._pool.batching()
        return description

    def close(self) -> None:
        self.backends = []
        self._pool.close()
