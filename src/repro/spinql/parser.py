"""Recursive-descent parser for SpinQL.

The grammar covers the fragment used in the paper plus the operators the
strategy layer generates::

    script      := statement+
    statement   := [ IDENT '=' ] expression ';'
    expression  := operator_call | IDENT
    operator_call :=
          'SELECT'   '[' predicate ']' '(' expression ')'
        | 'PROJECT'  [assumption] '[' projection_list ']' '(' expression ')'
        | 'JOIN'     [assumption] '[' join_conditions ']' '(' expression ',' expression ')'
        | 'UNITE'    [assumption] '(' expression ',' expression ')'
        | 'SUBTRACT' '(' expression ',' expression ')'
        | 'BAYES'    '[' [positional_list] ']' '(' expression ')'
        | 'WEIGHT'   '[' number ']' '(' expression ')'
        | 'TRAVERSE' ['BACKWARD'|'FORWARD'] '[' string ']' '(' expression ')'
    assumption  := 'INDEPENDENT' | 'DISJOINT' | 'SUBSUMED'
    predicate   := comparison ( ('and'|'or') comparison )*
    comparison  := operand cmp_op operand
    operand     := POSITIONAL | STRING | NUMBER
"""

from __future__ import annotations

from repro.errors import SpinQLSyntaxError
from repro.spinql.ast import (
    Assignment,
    BooleanExpr,
    Comparison,
    JoinCondition,
    LiteralValue,
    OperatorCall,
    PositionalColumn,
    ProjectionItem,
    Reference,
    Script,
    SpinQLNode,
)
from repro.spinql.lexer import Token, TokenType, tokenize

_OPERATOR_KEYWORDS = {
    "select", "project", "join", "unite", "subtract", "bayes", "weight", "traverse"
}
_ASSUMPTION_KEYWORDS = {"independent", "disjoint", "subsumed"}
_COMPARISON_TOKENS = {
    TokenType.EQUALS: "=",
    TokenType.NOT_EQUALS: "!=",
    TokenType.LESS: "<",
    TokenType.LESS_EQUALS: "<=",
    TokenType.GREATER: ">",
    TokenType.GREATER_EQUALS: ">=",
}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0
        self._anonymous_counter = 0

    # -- token helpers ---------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        self.position += 1
        return token

    def expect(self, token_type: TokenType, description: str) -> Token:
        if self.current.type is not token_type:
            raise self.error(f"expected {description}, found {self.current.value!r}")
        return self.advance()

    def error(self, message: str) -> SpinQLSyntaxError:
        token = self.current
        return SpinQLSyntaxError(message, line=token.line, column=token.column)

    # -- grammar ------------------------------------------------------------------------

    def parse_script(self) -> Script:
        statements: list[Assignment] = []
        while self.current.type is not TokenType.EOF:
            statements.append(self.parse_statement())
        if not statements:
            raise SpinQLSyntaxError("empty SpinQL script")
        return Script(statements=statements)

    def parse_statement(self) -> Assignment:
        name: str | None = None
        if (
            self.current.type is TokenType.IDENT
            and self.tokens[self.position + 1].type is TokenType.EQUALS
        ):
            name = self.advance().value
            self.advance()  # '='
        expression = self.parse_expression()
        self.expect(TokenType.SEMICOLON, "';' at the end of the statement")
        if name is None:
            self._anonymous_counter += 1
            name = f"_result{self._anonymous_counter}"
        return Assignment(name=name, expression=expression)

    def parse_expression(self) -> SpinQLNode:
        token = self.current
        if token.type is TokenType.KEYWORD and token.value in _OPERATOR_KEYWORDS:
            return self.parse_operator_call()
        if token.type is TokenType.IDENT:
            self.advance()
            return Reference(token.value)
        raise self.error("expected an operator call or a relation name")

    def parse_operator_call(self) -> OperatorCall:
        operator = self.advance().value
        assumption: str | None = None
        options: dict[str, object] = {}

        if self.current.type is TokenType.KEYWORD and self.current.value in _ASSUMPTION_KEYWORDS:
            assumption = self.advance().value
        if (
            operator == "traverse"
            and self.current.type is TokenType.KEYWORD
            and self.current.value in ("backward", "forward")
        ):
            options["direction"] = self.advance().value

        arguments: list[SpinQLNode] = []
        if self.current.type is TokenType.LBRACKET:
            self.advance()
            arguments = self.parse_arguments(operator)
            self.expect(TokenType.RBRACKET, "']' closing the argument list")
        elif operator in ("select", "project", "join", "weight", "traverse"):
            raise self.error(f"operator {operator.upper()} requires a '[...]' argument list")

        self.expect(TokenType.LPAREN, "'(' opening the operand list")
        operands = [self.parse_expression()]
        while self.current.type is TokenType.COMMA:
            self.advance()
            operands.append(self.parse_expression())
        self.expect(TokenType.RPAREN, "')' closing the operand list")

        return OperatorCall(
            operator=operator,
            assumption=assumption,
            arguments=arguments,
            operands=operands,
            options=options,
        )

    # -- argument lists -----------------------------------------------------------------------

    def parse_arguments(self, operator: str) -> list[SpinQLNode]:
        if operator == "select":
            return [self.parse_predicate()]
        if operator == "project":
            return self.parse_projection_list()
        if operator == "join":
            return self.parse_join_conditions()
        if operator == "bayes":
            return self.parse_positional_list()
        if operator == "weight":
            token = self.expect(TokenType.NUMBER, "a numeric weight")
            return [LiteralValue(float(token.value))]
        if operator == "traverse":
            token = self.expect(TokenType.STRING, "a property name string")
            return [LiteralValue(token.value)]
        # UNITE / SUBTRACT take no bracketed arguments
        return []

    def parse_projection_list(self) -> list[SpinQLNode]:
        items: list[SpinQLNode] = [self.parse_projection_item()]
        while self.current.type is TokenType.COMMA:
            self.advance()
            items.append(self.parse_projection_item())
        return items

    def parse_projection_item(self) -> ProjectionItem:
        token = self.expect(TokenType.POSITIONAL, "a positional reference like $1")
        alias: str | None = None
        if self.current.type is TokenType.KEYWORD and self.current.value == "as":
            self.advance()
            alias_token = self.current
            if alias_token.type not in (TokenType.IDENT, TokenType.KEYWORD):
                raise self.error("expected an alias name after AS")
            alias = self.advance().value
        return ProjectionItem(position=int(token.value), alias=alias)

    def parse_join_conditions(self) -> list[SpinQLNode]:
        conditions = [self.parse_join_condition()]
        while self.current.type is TokenType.COMMA:
            self.advance()
            conditions.append(self.parse_join_condition())
        return conditions

    def parse_join_condition(self) -> JoinCondition:
        left = self.expect(TokenType.POSITIONAL, "a positional reference like $1")
        self.expect(TokenType.EQUALS, "'=' in a join condition")
        right = self.expect(TokenType.POSITIONAL, "a positional reference like $1")
        return JoinCondition(left_position=int(left.value), right_position=int(right.value))

    def parse_positional_list(self) -> list[SpinQLNode]:
        items: list[SpinQLNode] = []
        if self.current.type is TokenType.POSITIONAL:
            items.append(PositionalColumn(int(self.advance().value)))
            while self.current.type is TokenType.COMMA:
                self.advance()
                items.append(PositionalColumn(int(self.advance().value)))
        return items

    # -- predicates -----------------------------------------------------------------------

    def parse_predicate(self) -> SpinQLNode:
        left = self.parse_comparison()
        while self.current.type is TokenType.KEYWORD and self.current.value in ("and", "or"):
            operator = self.advance().value
            right = self.parse_comparison()
            left = BooleanExpr(operator=operator, left=left, right=right)
        return left

    def parse_comparison(self) -> Comparison:
        left = self.parse_operand()
        token = self.current
        if token.type not in _COMPARISON_TOKENS:
            raise self.error("expected a comparison operator")
        operator = _COMPARISON_TOKENS[self.advance().type]
        right = self.parse_operand()
        return Comparison(operator=operator, left=left, right=right)

    def parse_operand(self) -> SpinQLNode:
        token = self.current
        if token.type is TokenType.POSITIONAL:
            self.advance()
            return PositionalColumn(int(token.value))
        if token.type is TokenType.STRING:
            self.advance()
            return LiteralValue(token.value)
        if token.type is TokenType.NUMBER:
            self.advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return LiteralValue(value)
        raise self.error("expected a positional reference, string or number")


def parse(source: str) -> Script:
    """Parse SpinQL source text into a :class:`~repro.spinql.ast.Script`."""
    return _Parser(tokenize(source)).parse_script()
