"""Translation of PRA plans into SQL text with explicit probability arithmetic.

SpinQL's selling point in the paper is its *"efficient translation to SQL"*:
the probability computations are only made explicit when a plan is lowered to
SQL.  This module reproduces that lowering as a pretty-printer.  Plans of the
common shape ``PROJECT (JOIN (SELECT(scan), SELECT(scan)))`` — the paper's
``docs`` example — are flattened into a single SELECT/FROM/WHERE block with
``t1``, ``t2``, … aliases and a ``t1.p * t2.p AS p`` probability expression,
matching the listing in Section 2.3.  Other plans are rendered as nested
derived tables; the output is meant to be read (and compared against the
paper), not re-executed.
"""

from __future__ import annotations

from repro.errors import PRAError
from repro.pra.assumptions import Assumption
from repro.pra.plan import (
    PraBayes,
    PraJoin,
    PraParam,
    PraPlan,
    PraProject,
    PraScan,
    PraSelect,
    PraSubtract,
    PraTop,
    PraUnite,
    PraValues,
    PraWeight,
)
from repro.relational.expressions import BinaryOp, Expression, Literal
from repro.pra.expressions import PositionalRef

#: default column names assumed for scans of the triples table
_TRIPLE_COLUMNS = ["subject", "property", "object"]


def to_sql(plan: PraPlan, *, view_name: str | None = None) -> str:
    """Render ``plan`` as SQL text; optionally wrap it in a CREATE VIEW statement."""
    body = None
    if isinstance(plan, PraTop):
        # a top-k root over the paper's flat shape renders as ORDER BY/LIMIT;
        # the value columns appear as tie-breakers, matching the evaluator's
        # deterministic ordering
        body = _flatten_paper_shape(plan.child)
        if body is not None:
            order = "p DESC"
            if isinstance(plan.child, PraProject) and plan.child.output_names:
                order += "".join(f", {name}" for name in plan.child.output_names)
            body = f"{body}\nORDER BY {order}\nLIMIT {plan.k}"
    if body is None:
        body = _flatten_paper_shape(plan)
    if body is None:
        body = _render_nested(plan)
    if view_name is not None:
        return f"CREATE VIEW {view_name} AS\n{body};"
    return body


# ---------------------------------------------------------------------------
# Flat rendering for the paper's PROJECT(JOIN(SELECT, SELECT)) shape
# ---------------------------------------------------------------------------


def _flatten_paper_shape(plan: PraPlan) -> str | None:
    if not isinstance(plan, PraProject):
        return None
    join = plan.child
    if not isinstance(join, PraJoin):
        return None
    sides = []
    for side in (join.left, join.right):
        if isinstance(side, PraSelect) and isinstance(side.child, PraScan):
            sides.append((side.child.table, side.predicate))
        elif isinstance(side, PraScan):
            sides.append((side.table, None))
        else:
            return None

    aliases = [f"t{index + 1}" for index in range(len(sides))]
    arities = [len(_TRIPLE_COLUMNS)] * len(sides)

    def column_for(global_position: int) -> str:
        remaining = global_position
        for alias, arity in zip(aliases, arities):
            if remaining <= arity:
                return f"{alias}.{_TRIPLE_COLUMNS[remaining - 1]}"
            remaining -= arity
        raise PRAError(f"positional reference ${global_position} out of range in SQL translation")

    select_items = []
    default_names = ["docID", "data", "value", "extra"]
    names = list(plan.output_names) if plan.output_names is not None else None
    for index, position in enumerate(plan.positions):
        name = (
            names[index]
            if names is not None
            else default_names[index]
            if index < len(default_names)
            else f"col{index + 1}"
        )
        select_items.append(f"{column_for(position)} AS {name}")
    probability = " * ".join(f"{alias}.p" for alias in aliases)
    select_items.append(f"{probability} AS p")

    where_clauses: list[str] = []
    for (table, predicate), alias in zip(sides, aliases):
        if predicate is not None:
            where_clauses.append(_render_predicate(predicate, alias, _TRIPLE_COLUMNS))
    for left_position, right_position in join.conditions:
        where_clauses.append(
            f"{aliases[0]}.{_TRIPLE_COLUMNS[left_position - 1]} = "
            f"{aliases[1]}.{_TRIPLE_COLUMNS[right_position - 1]}"
        )

    from_clause = ", ".join(f"{table} {alias}" for (table, _), alias in zip(sides, aliases))
    lines = [
        "SELECT " + ",\n       ".join(select_items),
        f"FROM {from_clause}",
    ]
    if where_clauses:
        lines.append("WHERE " + "\n  AND ".join(where_clauses))
    return "\n".join(lines)


def _render_predicate(predicate: Expression, alias: str, columns: list[str]) -> str:
    if isinstance(predicate, BinaryOp):
        if predicate.op in ("and", "or"):
            left = _render_predicate(predicate.left, alias, columns)
            right = _render_predicate(predicate.right, alias, columns)
            return f"{left} {predicate.op.upper()} {right}"
        left = _render_operand(predicate.left, alias, columns)
        right = _render_operand(predicate.right, alias, columns)
        return f"{left} {predicate.op} {right}"
    return predicate.to_sql()


def _render_operand(operand: Expression, alias: str, columns: list[str]) -> str:
    if isinstance(operand, PositionalRef):
        if operand.position <= len(columns):
            return f"{alias}.{columns[operand.position - 1]}"
        return f"{alias}.col{operand.position}"
    if isinstance(operand, Literal):
        return operand.to_sql()
    return operand.to_sql()


# ---------------------------------------------------------------------------
# Generic nested rendering
# ---------------------------------------------------------------------------


def _render_nested(plan: PraPlan, depth: int = 0) -> str:
    indent = "  " * depth
    if isinstance(plan, PraScan):
        return f"{indent}SELECT *, p FROM {plan.table}"
    if isinstance(plan, PraValues):
        return f"{indent}SELECT *, p FROM ({plan.label})"
    if isinstance(plan, PraParam):
        return f"{indent}SELECT *, p FROM :{plan.name} -- parameter bound at execution time"
    if isinstance(plan, PraSelect):
        child = _render_nested(plan.child, depth + 1)
        return (
            f"{indent}SELECT *, p FROM (\n{child}\n{indent}) AS t\n"
            f"{indent}WHERE {plan.predicate.to_sql()}"
        )
    if isinstance(plan, PraProject):
        child = _render_nested(plan.child, depth + 1)
        names = plan.output_names or [f"col{position}" for position in plan.positions]
        items = ", ".join(
            f"${position} AS {name}" for position, name in zip(plan.positions, names)
        )
        merge = _merge_comment(plan.assumption)
        return (
            f"{indent}SELECT {items}, p FROM (\n{child}\n{indent}) AS t"
            f"\n{indent}-- duplicates merged assuming {merge}"
        )
    if isinstance(plan, PraJoin):
        left = _render_nested(plan.left, depth + 1)
        right = _render_nested(plan.right, depth + 1)
        conditions = " AND ".join(
            f"l.${left_position} = r.${right_position}"
            for left_position, right_position in plan.conditions
        )
        return (
            f"{indent}SELECT l.*, r.*, l.p * r.p AS p FROM (\n{left}\n{indent}) AS l\n"
            f"{indent}JOIN (\n{right}\n{indent}) AS r ON {conditions}"
        )
    if isinstance(plan, PraUnite):
        left = _render_nested(plan.left, depth + 1)
        right = _render_nested(plan.right, depth + 1)
        merge = _merge_comment(plan.assumption)
        return (
            f"{left}\n{indent}UNION ALL -- probabilities merged assuming {merge}\n{right}"
        )
    if isinstance(plan, PraSubtract):
        left = _render_nested(plan.left, depth + 1)
        right = _render_nested(plan.right, depth + 1)
        return (
            f"{indent}SELECT l.*, l.p * (1 - r.p) AS p FROM (\n{left}\n{indent}) AS l\n"
            f"{indent}LEFT JOIN (\n{right}\n{indent}) AS r ON TRUE"
        )
    if isinstance(plan, PraBayes):
        child = _render_nested(plan.child, depth + 1)
        evidence = ", ".join(f"${position}" for position in plan.evidence_positions) or "()"
        return (
            f"{indent}SELECT *, p / SUM(p) OVER (PARTITION BY {evidence}) AS p FROM (\n"
            f"{child}\n{indent}) AS t"
        )
    if isinstance(plan, PraWeight):
        child = _render_nested(plan.child, depth + 1)
        return f"{indent}SELECT *, p * {plan.factor} AS p FROM (\n{child}\n{indent}) AS t"
    if isinstance(plan, PraTop):
        child = _render_nested(plan.child, depth + 1)
        return (
            f"{indent}SELECT * FROM (\n{child}\n{indent}) AS t\n"
            f"{indent}ORDER BY p DESC LIMIT {plan.k} -- ties break on the value columns"
        )
    raise PRAError(f"cannot translate PRA node {type(plan).__name__} to SQL")


def _merge_comment(assumption: Assumption) -> str:
    return assumption.value.upper()
