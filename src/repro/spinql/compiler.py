"""Compilation of SpinQL ASTs into PRA plans.

Names referenced in a script resolve, in order, to

1. an earlier assignment in the same script,
2. an externally supplied binding (a pre-computed probabilistic relation —
   this is how the strategy layer feeds ranked lists into SpinQL), or
3. a table or view of the database catalog (a :class:`~repro.pra.plan.PraScan`).

The ``TRAVERSE`` convenience operator is lowered into the JOIN/SELECT/PROJECT
combination over the triples table, so the PRA evaluator never needs to know
about graphs.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import SpinQLCompileError
from repro.pra.assumptions import Assumption
from repro.pra.expressions import PositionalRef
from repro.pra.plan import (
    PraBayes,
    PraJoin,
    PraParam,
    PraPlan,
    PraProject,
    PraScan,
    PraSelect,
    PraSubtract,
    PraUnite,
    PraValues,
    PraWeight,
)
from repro.pra.relation import ProbabilisticRelation
from repro.relational.expressions import BinaryOp, Expression, Literal
from repro.spinql.ast import (
    Assignment,
    BooleanExpr,
    Comparison,
    JoinCondition,
    LiteralValue,
    OperatorCall,
    PositionalColumn,
    ProjectionItem,
    Reference,
    Script,
    SpinQLNode,
)
from repro.spinql.parser import parse

#: how many value columns the triples table has (subject, property, object)
_TRIPLE_ARITY = 3


@dataclass
class CompiledScript:
    """The result of compiling a script: one PRA plan per statement."""

    plans: dict[str, PraPlan] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)

    @property
    def final_plan(self) -> PraPlan:
        if not self.order:
            raise SpinQLCompileError("the compiled script is empty")
        return self.plans[self.order[-1]]

    def plan(self, name: str) -> PraPlan:
        try:
            return self.plans[name]
        except KeyError:
            raise SpinQLCompileError(
                f"unknown statement {name!r}; defined: {self.order}"
            ) from None


class SpinQLCompiler:
    """Compiles SpinQL ASTs (or source text) into PRA plans."""

    def __init__(
        self,
        *,
        bindings: dict[str, ProbabilisticRelation] | None = None,
        parameters: Iterable[str] | None = None,
        triples_table: str = "triples",
    ):
        self.bindings = bindings or {}
        self.parameters = frozenset(parameters or ())
        self.triples_table = triples_table

    # -- entry points ------------------------------------------------------------------

    def compile(self, script: Script | str) -> CompiledScript:
        """Compile a script (AST or source text) into PRA plans."""
        if isinstance(script, str):
            script = parse(script)
        compiled = CompiledScript()
        for statement in script.statements:
            plan = self.compile_expression(statement.expression, compiled)
            compiled.plans[statement.name] = plan
            compiled.order.append(statement.name)
        return compiled

    def compile_statement(self, statement: Assignment, compiled: CompiledScript) -> PraPlan:
        return self.compile_expression(statement.expression, compiled)

    # -- expressions ----------------------------------------------------------------------

    def compile_expression(self, node: SpinQLNode, compiled: CompiledScript) -> PraPlan:
        if isinstance(node, Reference):
            return self._resolve_reference(node.name, compiled)
        if isinstance(node, OperatorCall):
            return self._compile_operator(node, compiled)
        raise SpinQLCompileError(f"cannot compile node of type {type(node).__name__}")

    def _resolve_reference(self, name: str, compiled: CompiledScript) -> PraPlan:
        if name in compiled.plans:
            return compiled.plans[name]
        if name in self.parameters:
            # parameters compile to placeholders resolved at evaluation time,
            # so the compiled plan (and its fingerprint) is independent of the
            # bound values — the basis of the engine's plan cache
            return PraParam(name)
        if name in self.bindings:
            return PraValues(self.bindings[name], label=name)
        return PraScan(name)

    # -- operator compilation ------------------------------------------------------------------

    def _compile_operator(self, call: OperatorCall, compiled: CompiledScript) -> PraPlan:
        operator = call.operator
        if operator == "select":
            return self._compile_select(call, compiled)
        if operator == "project":
            return self._compile_project(call, compiled)
        if operator == "join":
            return self._compile_join(call, compiled)
        if operator == "unite":
            return self._compile_unite(call, compiled)
        if operator == "subtract":
            return self._compile_subtract(call, compiled)
        if operator == "bayes":
            return self._compile_bayes(call, compiled)
        if operator == "weight":
            return self._compile_weight(call, compiled)
        if operator == "traverse":
            return self._compile_traverse(call, compiled)
        raise SpinQLCompileError(f"unknown operator {operator!r}")

    def _single_operand(self, call: OperatorCall, compiled: CompiledScript) -> PraPlan:
        if len(call.operands) != 1:
            raise SpinQLCompileError(
                f"{call.operator.upper()} takes exactly one operand, got {len(call.operands)}"
            )
        return self.compile_expression(call.operands[0], compiled)

    def _two_operands(
        self, call: OperatorCall, compiled: CompiledScript
    ) -> tuple[PraPlan, PraPlan]:
        if len(call.operands) != 2:
            raise SpinQLCompileError(
                f"{call.operator.upper()} takes exactly two operands, got {len(call.operands)}"
            )
        return (
            self.compile_expression(call.operands[0], compiled),
            self.compile_expression(call.operands[1], compiled),
        )

    def _assumption(self, call: OperatorCall) -> Assumption:
        if call.assumption is None:
            return Assumption.INDEPENDENT
        return Assumption.parse(call.assumption)

    def _compile_select(self, call: OperatorCall, compiled: CompiledScript) -> PraPlan:
        child = self._single_operand(call, compiled)
        if len(call.arguments) != 1:
            raise SpinQLCompileError("SELECT requires exactly one predicate")
        predicate = self._compile_predicate(call.arguments[0])
        return PraSelect(child, predicate)

    def _compile_project(self, call: OperatorCall, compiled: CompiledScript) -> PraPlan:
        child = self._single_operand(call, compiled)
        positions: list[int] = []
        aliases: list[str | None] = []
        for argument in call.arguments:
            if not isinstance(argument, ProjectionItem):
                raise SpinQLCompileError("PROJECT arguments must be positional references")
            positions.append(argument.position)
            aliases.append(argument.alias)
        output_names = None
        if any(alias is not None for alias in aliases):
            output_names = [
                alias if alias is not None else f"col{position}"
                for alias, position in zip(aliases, positions)
            ]
        return PraProject(child, positions, self._assumption(call), output_names)

    def _compile_join(self, call: OperatorCall, compiled: CompiledScript) -> PraPlan:
        left, right = self._two_operands(call, compiled)
        conditions: list[tuple[int, int]] = []
        for argument in call.arguments:
            if not isinstance(argument, JoinCondition):
                raise SpinQLCompileError("JOIN arguments must be conditions like $1=$1")
            conditions.append((argument.left_position, argument.right_position))
        return PraJoin(left, right, conditions, self._assumption(call))

    def _compile_unite(self, call: OperatorCall, compiled: CompiledScript) -> PraPlan:
        left, right = self._two_operands(call, compiled)
        return PraUnite(left, right, self._assumption(call))

    def _compile_subtract(self, call: OperatorCall, compiled: CompiledScript) -> PraPlan:
        left, right = self._two_operands(call, compiled)
        return PraSubtract(left, right)

    def _compile_bayes(self, call: OperatorCall, compiled: CompiledScript) -> PraPlan:
        child = self._single_operand(call, compiled)
        positions = []
        for argument in call.arguments:
            if not isinstance(argument, PositionalColumn):
                raise SpinQLCompileError("BAYES arguments must be positional references")
            positions.append(argument.position)
        return PraBayes(child, positions)

    def _compile_weight(self, call: OperatorCall, compiled: CompiledScript) -> PraPlan:
        child = self._single_operand(call, compiled)
        if len(call.arguments) != 1 or not isinstance(call.arguments[0], LiteralValue):
            raise SpinQLCompileError("WEIGHT requires a single numeric argument")
        return PraWeight(child, float(call.arguments[0].value))

    def _compile_traverse(self, call: OperatorCall, compiled: CompiledScript) -> PraPlan:
        """Lower ``TRAVERSE ['prop'] (nodes)`` into JOIN + SELECT + PROJECT.

        Forward traversal joins the node column ($1 of the input) with the
        subject of the property's triples and projects the object; backward
        traversal joins with the object and projects the subject.
        """
        child = self._single_operand(call, compiled)
        if len(call.arguments) != 1 or not isinstance(call.arguments[0], LiteralValue):
            raise SpinQLCompileError("TRAVERSE requires a property name argument")
        property_name = str(call.arguments[0].value)
        backward = call.options.get("direction") == "backward"

        edges = PraSelect(
            PraScan(self.triples_table),
            BinaryOp("=", PositionalRef(2), Literal(property_name)),
        )
        if backward:
            join_condition = (1, 3)  # node = object
            projected_position = 1  # subject of the triple
        else:
            join_condition = (1, 1)  # node = subject
            projected_position = 3  # object of the triple
        joined = PraJoin(child, edges, [join_condition], Assumption.INDEPENDENT)
        # the triple columns follow the (single) node column of the input
        output_position = 1 + projected_position
        return PraProject(
            joined, [output_position], self._assumption(call), output_names=["node"]
        )

    # -- predicates ------------------------------------------------------------------------------

    def _compile_predicate(self, node: SpinQLNode) -> Expression:
        if isinstance(node, BooleanExpr):
            left = self._compile_predicate(node.left)
            right = self._compile_predicate(node.right)
            return BinaryOp(node.operator, left, right)
        if isinstance(node, Comparison):
            left = self._compile_operand(node.left)
            right = self._compile_operand(node.right)
            operator = "<>" if node.operator == "!=" else node.operator
            return BinaryOp(operator, left, right)
        raise SpinQLCompileError(f"cannot compile predicate node {type(node).__name__}")

    def _compile_operand(self, node: SpinQLNode) -> Expression:
        if isinstance(node, PositionalColumn):
            return PositionalRef(node.position)
        if isinstance(node, LiteralValue):
            return Literal(node.value)
        raise SpinQLCompileError(f"cannot compile operand node {type(node).__name__}")


def compile_script(
    source: str | Script,
    *,
    bindings: dict[str, ProbabilisticRelation] | None = None,
    parameters: Iterable[str] | None = None,
    triples_table: str = "triples",
) -> CompiledScript:
    """Convenience wrapper: parse (if needed) and compile a SpinQL script."""
    compiler = SpinQLCompiler(
        bindings=bindings, parameters=parameters, triples_table=triples_table
    )
    return compiler.compile(source)
