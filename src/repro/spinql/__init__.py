"""SpinQL: the paper's probabilistic-relational-algebra query language.

Section 2.3 introduces SpinQL, *"a proprietary domain specific language ...
which implements the Probabilistic Relational Algebra with particular focus
on efficient translation to SQL"*.  This package implements the language
surface shown in the paper (and the handful of extra operators the
strategies need):

* :mod:`repro.spinql.lexer` and :mod:`repro.spinql.parser` turn SpinQL text
  into an AST;
* :mod:`repro.spinql.compiler` compiles the AST into PRA plans
  (:mod:`repro.pra.plan`), resolving names to database tables or to earlier
  statements of the same script;
* :mod:`repro.spinql.sql_translator` renders PRA plans as SQL text with
  explicit probability arithmetic — the ``t1.p * t2.p AS p`` of the paper's
  translation example.

The top-level helpers :func:`parse`, :func:`compile_script` and
:func:`evaluate` cover the common cases.
"""

from repro.spinql.ast import (
    Assignment,
    OperatorCall,
    Reference,
    Script,
    SpinQLNode,
)
from repro.spinql.compiler import CompiledScript, SpinQLCompiler, compile_script
from repro.spinql.lexer import Token, TokenType, tokenize
from repro.spinql.parser import parse
from repro.spinql.sql_translator import to_sql

__all__ = [
    "Assignment",
    "CompiledScript",
    "OperatorCall",
    "Reference",
    "Script",
    "SpinQLCompiler",
    "SpinQLNode",
    "Token",
    "TokenType",
    "compile_script",
    "evaluate",
    "parse",
    "to_sql",
    "tokenize",
]


def evaluate(source: str, database, *, bindings=None):
    """Parse, compile and evaluate a SpinQL script against ``database``.

    Returns the probabilistic relation produced by the script's last
    statement.  ``bindings`` optionally maps names to already-computed
    :class:`~repro.pra.relation.ProbabilisticRelation` values (used by the
    strategy layer to feed block inputs into hand-written SpinQL).
    """
    from repro.pra.evaluator import PRAEvaluator

    compiled = compile_script(source, bindings=bindings)
    evaluator = PRAEvaluator(database)
    return evaluator.evaluate(compiled.final_plan)
