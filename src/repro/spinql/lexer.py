"""Tokenizer for SpinQL source text."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SpinQLSyntaxError


class TokenType(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    POSITIONAL = "positional"  # $1, $2, ...
    NUMBER = "number"
    STRING = "string"
    EQUALS = "equals"  # =
    NOT_EQUALS = "not_equals"  # != or <>
    LESS = "less"
    LESS_EQUALS = "less_equals"
    GREATER = "greater"
    GREATER_EQUALS = "greater_equals"
    LBRACKET = "lbracket"
    RBRACKET = "rbracket"
    LPAREN = "lparen"
    RPAREN = "rparen"
    COMMA = "comma"
    SEMICOLON = "semicolon"
    EOF = "eof"


#: keywords recognised case-insensitively (operators, assumptions, connectives)
KEYWORDS = {
    "select",
    "project",
    "join",
    "unite",
    "subtract",
    "bayes",
    "weight",
    "traverse",
    "independent",
    "disjoint",
    "subsumed",
    "and",
    "or",
    "not",
    "as",
    "backward",
    "forward",
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source location (1-based line/column)."""

    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word.lower()


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source`` into a list of tokens ending with an EOF token."""
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def error(message: str) -> SpinQLSyntaxError:
        return SpinQLSyntaxError(message, line=line, column=column)

    while index < length:
        char = source[index]

        # whitespace and newlines
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "\n":
            index += 1
            line += 1
            column = 1
            continue

        # comments: '--' or '#' to end of line
        if char == "#" or source.startswith("--", index):
            while index < length and source[index] != "\n":
                index += 1
            continue

        start_line, start_column = line, column

        # punctuation
        simple = {
            "[": TokenType.LBRACKET,
            "]": TokenType.RBRACKET,
            "(": TokenType.LPAREN,
            ")": TokenType.RPAREN,
            ",": TokenType.COMMA,
            ";": TokenType.SEMICOLON,
        }
        if char in simple:
            tokens.append(Token(simple[char], char, start_line, start_column))
            index += 1
            column += 1
            continue

        # comparison operators
        if char == "=":
            tokens.append(Token(TokenType.EQUALS, "=", start_line, start_column))
            index += 1
            column += 1
            continue
        if char == "!" and index + 1 < length and source[index + 1] == "=":
            tokens.append(Token(TokenType.NOT_EQUALS, "!=", start_line, start_column))
            index += 2
            column += 2
            continue
        if char == "<":
            if index + 1 < length and source[index + 1] == ">":
                tokens.append(Token(TokenType.NOT_EQUALS, "<>", start_line, start_column))
                index += 2
                column += 2
                continue
            if index + 1 < length and source[index + 1] == "=":
                tokens.append(Token(TokenType.LESS_EQUALS, "<=", start_line, start_column))
                index += 2
                column += 2
                continue
            tokens.append(Token(TokenType.LESS, "<", start_line, start_column))
            index += 1
            column += 1
            continue
        if char == ">":
            if index + 1 < length and source[index + 1] == "=":
                tokens.append(Token(TokenType.GREATER_EQUALS, ">=", start_line, start_column))
                index += 2
                column += 2
                continue
            tokens.append(Token(TokenType.GREATER, ">", start_line, start_column))
            index += 1
            column += 1
            continue

        # positional reference $N
        if char == "$":
            index += 1
            column += 1
            digits = ""
            while index < length and source[index].isdigit():
                digits += source[index]
                index += 1
                column += 1
            if not digits:
                raise error("expected a column number after '$'")
            tokens.append(Token(TokenType.POSITIONAL, digits, start_line, start_column))
            continue

        # string literal, single or double quoted
        if char in ("'", '"'):
            quote = char
            index += 1
            column += 1
            value = ""
            closed = False
            while index < length:
                current = source[index]
                if current == quote:
                    # doubled quote escapes itself
                    if index + 1 < length and source[index + 1] == quote:
                        value += quote
                        index += 2
                        column += 2
                        continue
                    closed = True
                    index += 1
                    column += 1
                    break
                if current == "\n":
                    break
                value += current
                index += 1
                column += 1
            if not closed:
                raise error("unterminated string literal")
            tokens.append(Token(TokenType.STRING, value, start_line, start_column))
            continue

        # number
        if char.isdigit() or (char == "." and index + 1 < length and source[index + 1].isdigit()):
            value = ""
            seen_dot = False
            while index < length and (
                source[index].isdigit() or (source[index] == "." and not seen_dot)
            ):
                if source[index] == ".":
                    seen_dot = True
                value += source[index]
                index += 1
                column += 1
            tokens.append(Token(TokenType.NUMBER, value, start_line, start_column))
            continue

        # identifier or keyword
        if char.isalpha() or char == "_":
            value = ""
            while index < length and (source[index].isalnum() or source[index] == "_"):
                value += source[index]
                index += 1
                column += 1
            lowered = value.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, start_line, start_column))
            else:
                tokens.append(Token(TokenType.IDENT, value, start_line, start_column))
            continue

        raise error(f"unexpected character {char!r}")

    tokens.append(Token(TokenType.EOF, "", line, column))
    return tokens
