"""Abstract syntax tree of SpinQL scripts."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any


class SpinQLNode:
    """Base class of every AST node."""


# -- scalar / predicate expressions ------------------------------------------------


@dataclass(frozen=True)
class PositionalColumn(SpinQLNode):
    """A positional column reference ``$N`` (1-based)."""

    position: int


@dataclass(frozen=True)
class LiteralValue(SpinQLNode):
    """A string or numeric literal."""

    value: Any


@dataclass(frozen=True)
class Comparison(SpinQLNode):
    """A comparison between two operands (positional columns or literals)."""

    operator: str  # '=', '!=', '<', '<=', '>', '>='
    left: SpinQLNode
    right: SpinQLNode


@dataclass(frozen=True)
class BooleanExpr(SpinQLNode):
    """A conjunction/disjunction of predicate nodes."""

    operator: str  # 'and' | 'or'
    left: SpinQLNode
    right: SpinQLNode


# -- relational expressions ---------------------------------------------------------


@dataclass(frozen=True)
class Reference(SpinQLNode):
    """A reference to a named relation: a table, view, binding or prior assignment."""

    name: str


@dataclass(frozen=True)
class ProjectionItem(SpinQLNode):
    """One projected column: ``$N`` optionally renamed with ``AS name``."""

    position: int
    alias: str | None = None


@dataclass(frozen=True)
class JoinCondition(SpinQLNode):
    """One positional join condition ``$i = $j`` (left position, right position)."""

    left_position: int
    right_position: int


@dataclass
class OperatorCall(SpinQLNode):
    """An operator application: ``NAME [ASSUMPTION] [args] (operand, ...)``."""

    operator: str
    assumption: str | None
    arguments: list[SpinQLNode] = field(default_factory=list)
    operands: list[SpinQLNode] = field(default_factory=list)
    options: dict[str, Any] = field(default_factory=dict)


# -- statements ------------------------------------------------------------------------


@dataclass
class Assignment(SpinQLNode):
    """``name = expression ;``"""

    name: str
    expression: SpinQLNode


@dataclass
class Script(SpinQLNode):
    """A whole SpinQL script: a sequence of statements.

    A bare expression statement is represented as an :class:`Assignment` with
    an auto-generated name (``_resultN``); the last statement defines the
    script's result.
    """

    statements: list[Assignment] = field(default_factory=list)

    @property
    def result_name(self) -> str:
        if not self.statements:
            raise ValueError("empty script has no result")
        return self.statements[-1].name

    def names(self) -> Sequence[str]:
        return [statement.name for statement in self.statements]
