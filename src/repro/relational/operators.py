"""Physical execution of logical plans.

The :class:`Executor` walks a :class:`~repro.relational.algebra.LogicalPlan`
bottom-up and produces a :class:`~repro.relational.relation.Relation` for
every node.  Execution is column-at-a-time: selection evaluates the
predicate once over the whole input and applies the resulting boolean mask,
the equi-join builds a hash table on the smaller input and probes it with the
larger one, and aggregation groups via a dictionary of key tuples.

This mirrors the execution model of the column store the paper runs on; the
goal is that the *relative* performance behaviour (e.g. materialised
intermediate results vs. recomputation, join-input sizes, query-term count)
matches the shapes the paper reports.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.errors import PlanError
from repro.relational.algebra import (
    Aggregate,
    AggregateSpec,
    Distinct,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Rename,
    Scan,
    Select,
    Sort,
    TableFunctionScan,
    Union,
    Values,
)
from repro.relational.column import Column, DataType
from repro.relational.expressions import Expression
from repro.relational.functions import FunctionRegistry
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema


class Executor:
    """Executes logical plans against a table resolver and a function registry."""

    def __init__(
        self,
        resolve_table: Callable[[str], Relation | LogicalPlan],
        functions: FunctionRegistry,
    ):
        self._resolve_table = resolve_table
        self._functions = functions

    # -- public API ----------------------------------------------------------

    def execute(self, plan: LogicalPlan) -> Relation:
        """Execute ``plan`` and return the resulting relation."""
        if isinstance(plan, Scan):
            return self._execute_scan(plan)
        if isinstance(plan, Values):
            return plan.relation
        if isinstance(plan, Select):
            return self._execute_select(plan)
        if isinstance(plan, Project):
            return self._execute_project(plan)
        if isinstance(plan, Join):
            return self._execute_join(plan)
        if isinstance(plan, Aggregate):
            return self._execute_aggregate(plan)
        if isinstance(plan, Sort):
            return self._execute_sort(plan)
        if isinstance(plan, Limit):
            return self.execute(plan.child).head(plan.count)
        if isinstance(plan, Distinct):
            return self.execute(plan.child).distinct()
        if isinstance(plan, Union):
            return self.execute(plan.left).concat(self.execute(plan.right))
        if isinstance(plan, TableFunctionScan):
            return self._execute_table_function(plan)
        if isinstance(plan, Rename):
            return self.execute(plan.child).rename(dict(plan.mapping))
        raise PlanError(f"unknown plan node {type(plan).__name__}")

    # -- node implementations --------------------------------------------------

    def _execute_scan(self, plan: Scan) -> Relation:
        resolved = self._resolve_table(plan.table)
        if isinstance(resolved, Relation):
            return resolved
        return self.execute(resolved)

    def _execute_select(self, plan: Select) -> Relation:
        child = self.execute(plan.child)
        if child.num_rows == 0:
            return child
        mask_column = plan.predicate.evaluate(child, self._functions)
        if mask_column.dtype is not DataType.BOOL:
            raise PlanError(
                f"selection predicate must be boolean, got {mask_column.dtype.value}"
            )
        return child.filter(mask_column.values)

    def _execute_project(self, plan: Project) -> Relation:
        child = self.execute(plan.child)
        fields = []
        columns = []
        for name, expression in plan.columns:
            column = expression.evaluate(child, self._functions)
            fields.append(Field(name, column.dtype))
            columns.append(column)
        return Relation(Schema(fields), columns)

    def _execute_join(self, plan: Join) -> Relation:
        left = self.execute(plan.left)
        right = self.execute(plan.right)
        left_keys = [pair[0] for pair in plan.conditions]
        right_keys = [pair[1] for pair in plan.conditions]
        left_indices, right_indices = hash_join_indices(
            left, right, left_keys, right_keys, how=plan.how
        )
        joined_left = left.take(left_indices)
        combined_schema = left.schema.concat(right.schema)
        right_rows = right.take(np.where(right_indices >= 0, right_indices, 0))
        columns = list(joined_left.columns().values())
        for position, field in enumerate(right.schema):
            column = right_rows.column_at(position)
            if plan.how == "left":
                column = _null_out(column, right_indices < 0)
            columns.append(column)
        return Relation(combined_schema, columns)

    def _execute_aggregate(self, plan: Aggregate) -> Relation:
        child = self.execute(plan.child)
        return aggregate_relation(child, plan.keys, plan.aggregates)

    def _execute_sort(self, plan: Sort) -> Relation:
        child = self.execute(plan.child)
        return child.sort_by([(key.column, key.ascending) for key in plan.keys])

    def _execute_table_function(self, plan: TableFunctionScan) -> Relation:
        child = self.execute(plan.child)
        function = self._functions.table(plan.function)
        return function.apply(child)


# ---------------------------------------------------------------------------
# Join and aggregation kernels (shared with the PRA evaluator)
# ---------------------------------------------------------------------------


def hash_join_indices(
    left: Relation,
    right: Relation,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    how: str = "inner",
) -> tuple[np.ndarray, np.ndarray]:
    """Compute matching row indices for an equi-join.

    Returns two integer arrays of equal length: positions into ``left`` and
    positions into ``right``.  For a left outer join, unmatched left rows are
    emitted with a right index of ``-1``.
    """
    if len(left_keys) != len(right_keys) or not left_keys:
        raise PlanError("join requires at least one (left, right) key pair")
    right_key_columns = [right.column(name).to_list() for name in right_keys]
    table: dict[tuple[Any, ...], list[int]] = defaultdict(list)
    for row_index in range(right.num_rows):
        key = tuple(column[row_index] for column in right_key_columns)
        table[key].append(row_index)
    left_key_columns = [left.column(name).to_list() for name in left_keys]
    left_out: list[int] = []
    right_out: list[int] = []
    for row_index in range(left.num_rows):
        key = tuple(column[row_index] for column in left_key_columns)
        matches = table.get(key)
        if matches:
            for match in matches:
                left_out.append(row_index)
                right_out.append(match)
        elif how == "left":
            left_out.append(row_index)
            right_out.append(-1)
    return (
        np.asarray(left_out, dtype=np.int64),
        np.asarray(right_out, dtype=np.int64),
    )


def _null_out(column: Column, mask: np.ndarray) -> Column:
    """Replace masked entries with a type-appropriate null surrogate.

    The engine has no true NULL; left-join misses become 0 / 0.0 / "" / False,
    which is sufficient for the plans used in this reproduction.
    """
    values = column.values.copy()
    if column.dtype is DataType.STRING:
        values[mask] = ""
    elif column.dtype is DataType.FLOAT:
        values[mask] = 0.0
    elif column.dtype is DataType.INT:
        values[mask] = 0
    else:
        values[mask] = False
    return Column(values, column.dtype)


_AGGREGATE_OUTPUT_TYPES = {
    "count": DataType.INT,
    "sum": None,  # same as input (INT stays INT, FLOAT stays FLOAT)
    "avg": DataType.FLOAT,
    "min": None,
    "max": None,
}


def aggregate_relation(
    relation: Relation,
    keys: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Relation:
    """Group ``relation`` by ``keys`` and evaluate ``aggregates`` per group."""
    for spec in aggregates:
        if spec.function not in _AGGREGATE_OUTPUT_TYPES:
            raise PlanError(f"unknown aggregate function {spec.function!r}")

    key_columns = [relation.column(name) for name in keys]
    groups: dict[tuple[Any, ...], list[int]] = defaultdict(list)
    if keys:
        key_lists = [column.to_list() for column in key_columns]
        for row_index in range(relation.num_rows):
            group_key = tuple(values[row_index] for values in key_lists)
            groups[group_key].append(row_index)
    else:
        groups[()] = list(range(relation.num_rows))

    ordered_keys = list(groups.keys())

    fields: list[Field] = []
    columns: list[Column] = []
    for position, name in enumerate(keys):
        dtype = relation.schema.dtype_of(name)
        values = [group_key[position] for group_key in ordered_keys]
        fields.append(Field(name, dtype))
        columns.append(Column(values, dtype))

    for spec in aggregates:
        values, dtype = _evaluate_aggregate(relation, spec, ordered_keys, groups)
        fields.append(Field(spec.output_name, dtype))
        columns.append(Column(values, dtype))

    return Relation(Schema(fields), columns)


def _evaluate_aggregate(
    relation: Relation,
    spec: AggregateSpec,
    ordered_keys: list[tuple[Any, ...]],
    groups: dict[tuple[Any, ...], list[int]],
) -> tuple[list[Any], DataType]:
    if spec.function == "count":
        return [len(groups[key]) for key in ordered_keys], DataType.INT

    if spec.input_column is None:
        raise PlanError(f"aggregate {spec.function!r} requires an input column")
    column = relation.column(spec.input_column)
    values_list = column.to_list()

    results: list[Any] = []
    for key in ordered_keys:
        group_values = [values_list[index] for index in groups[key]]
        if not group_values:
            results.append(0)
            continue
        if spec.function == "sum":
            results.append(sum(group_values))
        elif spec.function == "avg":
            results.append(float(sum(group_values)) / len(group_values))
        elif spec.function == "min":
            results.append(min(group_values))
        elif spec.function == "max":
            results.append(max(group_values))

    if spec.function == "avg":
        return results, DataType.FLOAT
    if spec.function == "sum" and column.dtype is DataType.INT:
        return results, DataType.INT
    if spec.function == "sum":
        return results, DataType.FLOAT
    return results, column.dtype
