"""Physical execution of logical plans.

The :class:`Executor` walks a :class:`~repro.relational.algebra.LogicalPlan`
bottom-up and produces a :class:`~repro.relational.relation.Relation` for
every node.  Execution is column-at-a-time over NumPy arrays: selection
evaluates the predicate once over the whole input and applies the resulting
boolean mask; the equi-join dictionary-encodes both key sides into a shared
integer domain, sorts the build side's codes once, and probes with
``np.searchsorted`` range lookups; aggregation factorizes the group keys
into dense codes and evaluates ``count``/``sum``/``avg``/``min``/``max``
with ``np.bincount`` and ``np.ufunc.reduceat`` over the argsorted codes.

Columns cache their dictionary codes (see
:meth:`~repro.relational.column.Column.factorize`), so repeated joins
against the same relation — e.g. the term-lookup join of Figure 1 — pay the
encoding cost only once.  Inputs whose key values are not totally orderable
fall back to the original row-at-a-time hash kernels, which are kept both as
that fallback and as the reference implementation for equivalence tests.

This mirrors the execution model of the column store the paper runs on; the
goal is that the *relative* performance behaviour (e.g. materialised
intermediate results vs. recomputation, join-input sizes, query-term count)
matches the shapes the paper reports.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.errors import PlanError
from repro.relational.algebra import (
    Aggregate,
    AggregateSpec,
    Distinct,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Rename,
    Scan,
    Select,
    Sort,
    TableFunctionScan,
    Union,
    Values,
)
from repro.relational.column import Column, DataType, combine_codes
from repro.relational.functions import FunctionRegistry
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema


class Executor:
    """Executes logical plans against a table resolver and a function registry."""

    def __init__(
        self,
        resolve_table: Callable[[str], Relation | LogicalPlan],
        functions: FunctionRegistry,
    ):
        self._resolve_table = resolve_table
        self._functions = functions

    # -- public API ----------------------------------------------------------

    def execute(self, plan: LogicalPlan) -> Relation:
        """Execute ``plan`` and return the resulting relation."""
        if isinstance(plan, Scan):
            return self._execute_scan(plan)
        if isinstance(plan, Values):
            return plan.relation
        if isinstance(plan, Select):
            return self._execute_select(plan)
        if isinstance(plan, Project):
            return self._execute_project(plan)
        if isinstance(plan, Join):
            return self._execute_join(plan)
        if isinstance(plan, Aggregate):
            return self._execute_aggregate(plan)
        if isinstance(plan, Sort):
            return self._execute_sort(plan)
        if isinstance(plan, Limit):
            return self.execute(plan.child).head(plan.count)
        if isinstance(plan, Distinct):
            return self.execute(plan.child).distinct()
        if isinstance(plan, Union):
            return self.execute(plan.left).concat(self.execute(plan.right))
        if isinstance(plan, TableFunctionScan):
            return self._execute_table_function(plan)
        if isinstance(plan, Rename):
            return self.execute(plan.child).rename(dict(plan.mapping))
        raise PlanError(f"unknown plan node {type(plan).__name__}")

    # -- node implementations --------------------------------------------------

    def _execute_scan(self, plan: Scan) -> Relation:
        resolved = self._resolve_table(plan.table)
        if isinstance(resolved, Relation):
            return resolved
        return self.execute(resolved)

    def _execute_select(self, plan: Select) -> Relation:
        child = self.execute(plan.child)
        if child.num_rows == 0:
            return child
        mask_column = plan.predicate.evaluate(child, self._functions)
        if mask_column.dtype is not DataType.BOOL:
            raise PlanError(
                f"selection predicate must be boolean, got {mask_column.dtype.value}"
            )
        return child.filter(mask_column.values)

    def _execute_project(self, plan: Project) -> Relation:
        child = self.execute(plan.child)
        fields = []
        columns = []
        for name, expression in plan.columns:
            column = expression.evaluate(child, self._functions)
            fields.append(Field(name, column.dtype))
            columns.append(column)
        return Relation(Schema(fields), columns)

    def _execute_join(self, plan: Join) -> Relation:
        left = self.execute(plan.left)
        right = self.execute(plan.right)
        left_keys = [pair[0] for pair in plan.conditions]
        right_keys = [pair[1] for pair in plan.conditions]
        left_indices, right_indices = hash_join_indices(
            left, right, left_keys, right_keys, how=plan.how
        )
        joined_left = left.take(left_indices)
        combined_schema = left.schema.concat(right.schema)
        right_rows = right.take(np.where(right_indices >= 0, right_indices, 0))
        columns = list(joined_left.columns().values())
        for position, field in enumerate(right.schema):
            column = right_rows.column_at(position)
            if plan.how == "left":
                column = _null_out(column, right_indices < 0)
            columns.append(column)
        return Relation(combined_schema, columns)

    def _execute_aggregate(self, plan: Aggregate) -> Relation:
        child = self.execute(plan.child)
        return aggregate_relation(child, plan.keys, plan.aggregates)

    def _execute_sort(self, plan: Sort) -> Relation:
        child = self.execute(plan.child)
        return child.sort_by([(key.column, key.ascending) for key in plan.keys])

    def _execute_table_function(self, plan: TableFunctionScan) -> Relation:
        child = self.execute(plan.child)
        function = self._functions.table(plan.function)
        return function.apply(child)


# ---------------------------------------------------------------------------
# Join and aggregation kernels (shared with the PRA evaluator)
# ---------------------------------------------------------------------------


def hash_join_indices(
    left: Relation,
    right: Relation,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    how: str = "inner",
) -> tuple[np.ndarray, np.ndarray]:
    """Compute matching row indices for an equi-join.

    Returns two integer arrays of equal length: positions into ``left`` and
    positions into ``right``.  For a left outer join, unmatched left rows are
    emitted with a right index of ``-1``.  Output pairs are ordered by left
    row, then by right row within each left row.
    """
    if len(left_keys) != len(right_keys) or not left_keys:
        raise PlanError("join requires at least one (left, right) key pair")
    try:
        return _join_indices_vectorized(left, right, left_keys, right_keys, how)
    except TypeError:
        return _join_indices_rows(left, right, left_keys, right_keys, how)


def _joint_key_codes(
    left: Relation,
    right: Relation,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
) -> tuple[np.ndarray, np.ndarray]:
    """Encode both sides' join keys into one shared integer code space.

    Per key pair, the two columns' (cached) dictionaries are merged into a
    common sorted domain and each side's codes are remapped into it; multiple
    key pairs combine by mixed radix with re-densification.  Rows compare
    equal across sides iff their codes are equal.
    """
    left_codes: np.ndarray | None = None
    right_codes: np.ndarray | None = None
    for left_name, right_name in zip(left_keys, right_keys):
        lcodes, ldict = left.column(left_name).factorize()
        rcodes, rdict = right.column(right_name).factorize()
        domain = np.unique(np.concatenate([ldict, rdict]))
        lcol = np.searchsorted(domain, ldict)[lcodes] if len(ldict) else lcodes
        rcol = np.searchsorted(domain, rdict)[rcodes] if len(rdict) else rcodes
        if left_codes is None:
            left_codes, right_codes = lcol, rcol
        else:
            left_codes = left_codes * len(domain) + lcol
            right_codes = right_codes * len(domain) + rcol
            stacked = np.concatenate([left_codes, right_codes])
            _, stacked = np.unique(stacked, return_inverse=True)
            stacked = stacked.astype(np.int64, copy=False).reshape(-1)
            left_codes = stacked[: len(left_codes)]
            right_codes = stacked[len(left_codes) :]
    return left_codes, right_codes


def _join_indices_vectorized(
    left: Relation,
    right: Relation,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    how: str,
) -> tuple[np.ndarray, np.ndarray]:
    left_codes, right_codes = _joint_key_codes(left, right, left_keys, right_keys)
    order = np.argsort(right_codes, kind="stable")
    sorted_codes = right_codes[order]
    starts = np.searchsorted(sorted_codes, left_codes, side="left")
    ends = np.searchsorted(sorted_codes, left_codes, side="right")
    counts = ends - starts
    if how == "left":
        # unmatched left rows point one past the sorted build side, where a
        # sentinel -1 is appended, and emit exactly one output row
        unmatched = counts == 0
        starts = np.where(unmatched, len(order), starts)
        counts = np.where(unmatched, 1, counts)
        order = np.concatenate([order, np.asarray([-1], dtype=np.int64)])
    total = int(counts.sum())
    left_out = np.repeat(np.arange(left.num_rows, dtype=np.int64), counts)
    if total == 0:
        return left_out, np.empty(0, dtype=np.int64)
    output_starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    offsets = np.arange(total, dtype=np.int64) - np.repeat(output_starts, counts)
    right_out = order[np.repeat(starts, counts) + offsets]
    return left_out, right_out.astype(np.int64, copy=False)


def _join_indices_rows(
    left: Relation,
    right: Relation,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    how: str = "inner",
) -> tuple[np.ndarray, np.ndarray]:
    """Row-at-a-time reference join: fallback for non-orderable key values."""
    right_key_columns = [right.column(name).to_list() for name in right_keys]
    table: dict[tuple[Any, ...], list[int]] = defaultdict(list)
    for row_index in range(right.num_rows):
        key = tuple(column[row_index] for column in right_key_columns)
        table[key].append(row_index)
    left_key_columns = [left.column(name).to_list() for name in left_keys]
    left_out: list[int] = []
    right_out: list[int] = []
    for row_index in range(left.num_rows):
        key = tuple(column[row_index] for column in left_key_columns)
        matches = table.get(key)
        if matches:
            for match in matches:
                left_out.append(row_index)
                right_out.append(match)
        elif how == "left":
            left_out.append(row_index)
            right_out.append(-1)
    return (
        np.asarray(left_out, dtype=np.int64),
        np.asarray(right_out, dtype=np.int64),
    )


def _null_out(column: Column, mask: np.ndarray) -> Column:
    """Replace masked entries with a type-appropriate null surrogate.

    The engine has no true NULL; left-join misses become 0 / 0.0 / "" / False,
    which is sufficient for the plans used in this reproduction.
    """
    values = column.values.copy()
    if column.dtype is DataType.STRING:
        values[mask] = ""
    elif column.dtype is DataType.FLOAT:
        values[mask] = 0.0
    elif column.dtype is DataType.INT:
        values[mask] = 0
    else:
        values[mask] = False
    return Column(values, column.dtype)


_AGGREGATE_OUTPUT_TYPES = {
    "count": DataType.INT,
    "sum": None,  # same as input (INT stays INT, FLOAT stays FLOAT)
    "avg": DataType.FLOAT,
    "min": None,
    "max": None,
}


def group_codes(relation: Relation, keys: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
    """Assign each row of ``relation`` a dense group id in first-seen order.

    Returns ``(codes, representatives)``: ``codes[i]`` is the group of row
    ``i`` (``0 .. G-1``, numbered in order of each group's first occurrence)
    and ``representatives[g]`` is the row index of group ``g``'s first row.
    With empty ``keys`` every row belongs to one global group.

    Raises :class:`TypeError` when a key column cannot be factorized; callers
    fall back to dictionary grouping in that case.
    """
    num_rows = relation.num_rows
    if not keys:
        return np.zeros(num_rows, dtype=np.int64), np.zeros(min(num_rows, 1), dtype=np.int64)
    raw = combine_codes([relation.column(name) for name in keys], num_rows)
    uniques, first_seen, inverse = np.unique(raw, return_index=True, return_inverse=True)
    inverse = inverse.reshape(-1)
    by_first_seen = np.argsort(first_seen, kind="stable")
    rank = np.empty(len(uniques), dtype=np.int64)
    rank[by_first_seen] = np.arange(len(uniques), dtype=np.int64)
    return rank[inverse], first_seen[by_first_seen]


def group_segments(codes: np.ndarray, num_groups: int) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(order, segment_starts)`` for segmented reductions over groups.

    ``order`` stably sorts rows by group code (preserving row order within
    each group) and ``segment_starts[g]`` is the offset of group ``g``'s
    first row in the sorted view — the index array ``np.ufunc.reduceat``
    expects.  Requires every group ``0 .. num_groups-1`` to be non-empty.
    """
    order = np.argsort(codes, kind="stable")
    segment_starts = np.searchsorted(codes[order], np.arange(num_groups))
    return order, segment_starts


def aggregate_relation(
    relation: Relation,
    keys: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Relation:
    """Group ``relation`` by ``keys`` and evaluate ``aggregates`` per group.

    Output groups appear in order of first occurrence of their key values.
    """
    for spec in aggregates:
        if spec.function not in _AGGREGATE_OUTPUT_TYPES:
            raise PlanError(f"unknown aggregate function {spec.function!r}")
    try:
        return _aggregate_relation_vectorized(relation, keys, aggregates)
    except TypeError:
        return _aggregate_relation_rows(relation, keys, aggregates)


def _aggregate_relation_vectorized(
    relation: Relation,
    keys: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Relation:
    codes, representatives = group_codes(relation, keys)
    num_groups = len(representatives) if keys else 1

    # one stable sort by group code shared by every reduceat-based aggregate
    order: np.ndarray | None = None
    segment_starts: np.ndarray | None = None
    if relation.num_rows and any(spec.function != "count" for spec in aggregates):
        order, segment_starts = group_segments(codes, num_groups)

    fields: list[Field] = []
    columns: list[Column] = []
    for name in keys:
        fields.append(Field(name, relation.schema.dtype_of(name)))
        columns.append(relation.column(name).take(representatives))

    for spec in aggregates:
        values, dtype = _evaluate_aggregate_vectorized(
            relation, spec, codes, num_groups, order, segment_starts
        )
        fields.append(Field(spec.output_name, dtype))
        columns.append(Column(values, dtype))

    return Relation(Schema(fields), columns)


def _evaluate_aggregate_vectorized(
    relation: Relation,
    spec: AggregateSpec,
    codes: np.ndarray,
    num_groups: int,
    order: np.ndarray | None,
    segment_starts: np.ndarray | None,
) -> tuple[np.ndarray | list[Any], DataType]:
    if spec.function == "count":
        counts = np.bincount(codes, minlength=num_groups).astype(np.int64)
        return counts, DataType.INT

    if spec.input_column is None:
        raise PlanError(f"aggregate {spec.function!r} requires an input column")
    column = relation.column(spec.input_column)

    if spec.function == "avg":
        output_dtype = DataType.FLOAT
    elif spec.function == "sum":
        output_dtype = DataType.INT if column.dtype is DataType.INT else DataType.FLOAT
    else:
        output_dtype = column.dtype

    if relation.num_rows == 0:
        # the global group over an empty input aggregates to the 0 surrogate
        return [0] * num_groups, output_dtype

    values = column.values
    if spec.function in ("sum", "avg"):
        if column.dtype is DataType.STRING:
            raise TypeError(f"cannot {spec.function} a string column")
        if column.dtype is DataType.BOOL:
            values = values.astype(np.int64)
        sums = np.add.reduceat(values[order], segment_starts)
        if spec.function == "sum":
            return sums, output_dtype
        counts = np.bincount(codes, minlength=num_groups)
        return sums.astype(np.float64) / counts, output_dtype
    reducer = np.minimum if spec.function == "min" else np.maximum
    return reducer.reduceat(values[order], segment_starts), output_dtype


def _aggregate_relation_rows(
    relation: Relation,
    keys: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Relation:
    """Row-at-a-time reference aggregation: fallback for non-orderable keys."""
    key_columns = [relation.column(name) for name in keys]
    groups: dict[tuple[Any, ...], list[int]] = defaultdict(list)
    if keys:
        key_lists = [column.to_list() for column in key_columns]
        for row_index in range(relation.num_rows):
            group_key = tuple(values[row_index] for values in key_lists)
            groups[group_key].append(row_index)
    else:
        groups[()] = list(range(relation.num_rows))

    ordered_keys = list(groups.keys())

    fields: list[Field] = []
    columns: list[Column] = []
    for position, name in enumerate(keys):
        dtype = relation.schema.dtype_of(name)
        values = [group_key[position] for group_key in ordered_keys]
        fields.append(Field(name, dtype))
        columns.append(Column(values, dtype))

    for spec in aggregates:
        values, dtype = _evaluate_aggregate(relation, spec, ordered_keys, groups)
        fields.append(Field(spec.output_name, dtype))
        columns.append(Column(values, dtype))

    return Relation(Schema(fields), columns)


def _evaluate_aggregate(
    relation: Relation,
    spec: AggregateSpec,
    ordered_keys: list[tuple[Any, ...]],
    groups: dict[tuple[Any, ...], list[int]],
) -> tuple[list[Any], DataType]:
    if spec.function == "count":
        return [len(groups[key]) for key in ordered_keys], DataType.INT

    if spec.input_column is None:
        raise PlanError(f"aggregate {spec.function!r} requires an input column")
    column = relation.column(spec.input_column)
    values_list = column.to_list()

    results: list[Any] = []
    for key in ordered_keys:
        group_values = [values_list[index] for index in groups[key]]
        if not group_values:
            results.append(0)
            continue
        if spec.function == "sum":
            results.append(sum(group_values))
        elif spec.function == "avg":
            results.append(float(sum(group_values)) / len(group_values))
        elif spec.function == "min":
            results.append(min(group_values))
        elif spec.function == "max":
            results.append(max(group_values))

    if spec.function == "avg":
        return results, DataType.FLOAT
    if spec.function == "sum" and column.dtype is DataType.INT:
        return results, DataType.INT
    if spec.function == "sum":
        return results, DataType.FLOAT
    return results, column.dtype
