"""Scalar expression trees evaluated column-at-a-time.

Expressions describe computed columns and predicates inside logical plans:
column references, literals, arithmetic, comparisons, boolean connectives
and calls to registered scalar user-defined functions (the paper's
``lcase``, ``stem`` and ``log`` additions to MonetDB).

Expression evaluation is vectorised: :meth:`Expression.evaluate` receives a
:class:`~repro.relational.relation.Relation` and returns a
:class:`~repro.relational.column.Column` of the same length.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import ExpressionError, TypeMismatchError
from repro.relational.column import Column, DataType
from repro.relational.relation import Relation
from repro.relational.schema import Schema

if TYPE_CHECKING:  # pragma: no cover
    from repro.relational.functions import FunctionRegistry


class Expression:
    """Base class for scalar expressions."""

    def evaluate(self, relation: Relation, functions: "FunctionRegistry") -> Column:
        """Evaluate the expression against every row of ``relation``."""
        raise NotImplementedError

    def output_type(self, schema: Schema, functions: "FunctionRegistry") -> DataType:
        """Return the data type the expression produces for ``schema``."""
        raise NotImplementedError

    def references(self) -> set[str]:
        """Return the set of column names the expression reads."""
        return set()

    def to_sql(self) -> str:
        """Render the expression as SQL text (used by :mod:`repro.relational.sqlgen`)."""
        raise NotImplementedError

    # -- operator sugar ------------------------------------------------------

    def _binary(self, op: str, other: Any) -> "BinaryOp":
        return BinaryOp(op, self, _wrap(other))

    def __add__(self, other: Any) -> "BinaryOp":
        return self._binary("+", other)

    def __sub__(self, other: Any) -> "BinaryOp":
        return self._binary("-", other)

    def __mul__(self, other: Any) -> "BinaryOp":
        return self._binary("*", other)

    def __truediv__(self, other: Any) -> "BinaryOp":
        return self._binary("/", other)

    def eq(self, other: Any) -> "BinaryOp":
        """Equality comparison (named method to avoid clashing with ``__eq__``)."""
        return self._binary("=", other)

    def ne(self, other: Any) -> "BinaryOp":
        return self._binary("<>", other)

    def lt(self, other: Any) -> "BinaryOp":
        return self._binary("<", other)

    def le(self, other: Any) -> "BinaryOp":
        return self._binary("<=", other)

    def gt(self, other: Any) -> "BinaryOp":
        return self._binary(">", other)

    def ge(self, other: Any) -> "BinaryOp":
        return self._binary(">=", other)

    def and_(self, other: Any) -> "BinaryOp":
        return self._binary("and", other)

    def or_(self, other: Any) -> "BinaryOp":
        return self._binary("or", other)

    def isin(self, values: Sequence[Any]) -> "InList":
        return InList(self, list(values))


def _wrap(value: Any) -> Expression:
    """Lift plain Python values into :class:`Literal` expressions."""
    if isinstance(value, Expression):
        return value
    return Literal(value)


def col(name: str) -> "ColumnRef":
    """Shorthand constructor for a column reference."""
    return ColumnRef(name)


def lit(value: Any) -> "Literal":
    """Shorthand constructor for a literal."""
    return Literal(value)


class ColumnRef(Expression):
    """A reference to a column of the input relation by name."""

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, relation: Relation, functions: "FunctionRegistry") -> Column:
        return relation.column(self.name)

    def output_type(self, schema: Schema, functions: "FunctionRegistry") -> DataType:
        return schema.dtype_of(self.name)

    def references(self) -> set[str]:
        return {self.name}

    def to_sql(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"col({self.name!r})"


class Literal(Expression):
    """A constant value."""

    def __init__(self, value: Any):
        self.value = value
        self.dtype = DataType.of_value(value)

    def evaluate(self, relation: Relation, functions: "FunctionRegistry") -> Column:
        return Column.constant(self.value, relation.num_rows, self.dtype)

    def output_type(self, schema: Schema, functions: "FunctionRegistry") -> DataType:
        return self.dtype

    def to_sql(self) -> str:
        if self.dtype is DataType.STRING:
            escaped = str(self.value).replace("'", "''")
            return f"'{escaped}'"
        if self.dtype is DataType.BOOL:
            return "TRUE" if self.value else "FALSE"
        return repr(self.value)

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


_COMPARISONS = {"=", "<>", "<", "<=", ">", ">="}
_ARITHMETIC = {"+", "-", "*", "/"}
_BOOLEAN = {"and", "or"}


class BinaryOp(Expression):
    """A binary arithmetic, comparison or boolean expression."""

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _COMPARISONS | _ARITHMETIC | _BOOLEAN:
            raise ExpressionError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, relation: Relation, functions: "FunctionRegistry") -> Column:
        left = self.left.evaluate(relation, functions)
        right = self.right.evaluate(relation, functions)
        if self.op in _ARITHMETIC:
            return self._evaluate_arithmetic(left, right)
        if self.op in _COMPARISONS:
            return self._evaluate_comparison(left, right)
        return self._evaluate_boolean(left, right)

    def _evaluate_arithmetic(self, left: Column, right: Column) -> Column:
        if not left.dtype.is_numeric() or not right.dtype.is_numeric():
            raise TypeMismatchError(
                f"arithmetic operator {self.op!r} requires numeric operands, "
                f"got {left.dtype.value} and {right.dtype.value}"
            )
        result_type = DataType.common(left.dtype, right.dtype)
        left_values = left.values
        right_values = right.values
        if self.op == "+":
            values = left_values + right_values
        elif self.op == "-":
            values = left_values - right_values
        elif self.op == "*":
            values = left_values * right_values
        else:
            values = left_values / np.asarray(right_values, dtype=np.float64)
            result_type = DataType.FLOAT
        return Column(values, result_type)

    def _evaluate_comparison(self, left: Column, right: Column) -> Column:
        if left.dtype is DataType.STRING or right.dtype is DataType.STRING:
            if left.dtype is not right.dtype:
                raise TypeMismatchError(
                    f"cannot compare {left.dtype.value} with {right.dtype.value}"
                )
            left_values = np.asarray(left.to_list(), dtype=object)
            right_values = np.asarray(right.to_list(), dtype=object)
        else:
            left_values = left.values
            right_values = right.values
        if self.op == "=":
            values = left_values == right_values
        elif self.op == "<>":
            values = left_values != right_values
        elif self.op == "<":
            values = left_values < right_values
        elif self.op == "<=":
            values = left_values <= right_values
        elif self.op == ">":
            values = left_values > right_values
        else:
            values = left_values >= right_values
        return Column(np.asarray(values, dtype=bool), DataType.BOOL)

    def _evaluate_boolean(self, left: Column, right: Column) -> Column:
        if left.dtype is not DataType.BOOL or right.dtype is not DataType.BOOL:
            raise TypeMismatchError(
                f"boolean operator {self.op!r} requires boolean operands, "
                f"got {left.dtype.value} and {right.dtype.value}"
            )
        if self.op == "and":
            values = left.values & right.values
        else:
            values = left.values | right.values
        return Column(values, DataType.BOOL)

    def output_type(self, schema: Schema, functions: "FunctionRegistry") -> DataType:
        if self.op in _COMPARISONS or self.op in _BOOLEAN:
            return DataType.BOOL
        if self.op == "/":
            return DataType.FLOAT
        left = self.left.output_type(schema, functions)
        right = self.right.output_type(schema, functions)
        return DataType.common(left, right)

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def to_sql(self) -> str:
        op = self.op.upper() if self.op in _BOOLEAN else self.op
        return f"({self.left.to_sql()} {op} {self.right.to_sql()})"

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class UnaryOp(Expression):
    """A unary expression: ``not`` or numeric negation."""

    def __init__(self, op: str, operand: Expression):
        if op not in ("not", "-"):
            raise ExpressionError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand

    def evaluate(self, relation: Relation, functions: "FunctionRegistry") -> Column:
        operand = self.operand.evaluate(relation, functions)
        if self.op == "not":
            if operand.dtype is not DataType.BOOL:
                raise TypeMismatchError("NOT requires a boolean operand")
            return Column(~operand.values, DataType.BOOL)
        if not operand.dtype.is_numeric():
            raise TypeMismatchError("negation requires a numeric operand")
        return Column(-operand.values, operand.dtype)

    def output_type(self, schema: Schema, functions: "FunctionRegistry") -> DataType:
        if self.op == "not":
            return DataType.BOOL
        return self.operand.output_type(schema, functions)

    def references(self) -> set[str]:
        return self.operand.references()

    def to_sql(self) -> str:
        if self.op == "not":
            return f"(NOT {self.operand.to_sql()})"
        return f"(-{self.operand.to_sql()})"

    def __repr__(self) -> str:
        return f"({self.op} {self.operand!r})"


class InList(Expression):
    """Membership test against a constant list of values (SQL ``IN``)."""

    def __init__(self, operand: Expression, values: list[Any]):
        if not values:
            raise ExpressionError("IN list must not be empty")
        self.operand = operand
        self.values = values

    def evaluate(self, relation: Relation, functions: "FunctionRegistry") -> Column:
        operand = self.operand.evaluate(relation, functions)
        allowed = set(self.values)
        mask = np.fromiter(
            (value in allowed for value in operand.to_list()), dtype=bool, count=len(operand)
        )
        return Column(mask, DataType.BOOL)

    def output_type(self, schema: Schema, functions: "FunctionRegistry") -> DataType:
        return DataType.BOOL

    def references(self) -> set[str]:
        return self.operand.references()

    def to_sql(self) -> str:
        rendered = ", ".join(Literal(value).to_sql() for value in self.values)
        return f"({self.operand.to_sql()} IN ({rendered}))"

    def __repr__(self) -> str:
        return f"({self.operand!r} IN {self.values!r})"


class FunctionCall(Expression):
    """A call to a registered scalar user-defined function."""

    def __init__(self, name: str, args: Sequence[Expression | Any]):
        self.name = name
        self.args = [_wrap(arg) for arg in args]

    def evaluate(self, relation: Relation, functions: "FunctionRegistry") -> Column:
        function = functions.scalar(self.name)
        arg_columns = [arg.evaluate(relation, functions) for arg in self.args]
        return function.apply(arg_columns, relation.num_rows)

    def output_type(self, schema: Schema, functions: "FunctionRegistry") -> DataType:
        return functions.scalar(self.name).output_type

    def references(self) -> set[str]:
        refs: set[str] = set()
        for arg in self.args:
            refs |= arg.references()
        return refs

    def to_sql(self) -> str:
        rendered = ", ".join(arg.to_sql() for arg in self.args)
        return f"{self.name}({rendered})"

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(repr(arg) for arg in self.args)})"


def func(name: str, *args: Expression | Any) -> FunctionCall:
    """Shorthand constructor for a scalar function call."""
    return FunctionCall(name, list(args))
