"""Relations: named, typed, columnar tables.

A :class:`Relation` is an immutable collection of equally long
:class:`~repro.relational.column.Column` objects described by a
:class:`~repro.relational.schema.Schema`.  It offers the vectorised
primitives (mask filtering, index gathering, column projection,
concatenation) on which the physical operators are built, plus convenient
row-oriented constructors and accessors used by tests and examples.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import Any

import numpy as np

from repro.errors import ColumnError, SchemaError
from repro.relational.column import Column, DataType, combine_codes
from repro.relational.schema import Field, Schema


class Relation:
    """An immutable columnar table."""

    __slots__ = ("_schema", "_columns", "_num_rows", "_fingerprint")

    def __init__(self, schema: Schema, columns: Sequence[Column]):
        self._fingerprint: int | None = None
        if len(schema) != len(columns):
            raise SchemaError(
                f"schema has {len(schema)} fields but {len(columns)} columns were given"
            )
        lengths = {len(column) for column in columns}
        if len(lengths) > 1:
            raise SchemaError(f"columns have inconsistent lengths: {sorted(lengths)}")
        for field, column in zip(schema, columns):
            if field.dtype is not column.dtype:
                raise SchemaError(
                    f"column {field.name!r} declared as {field.dtype.value} "
                    f"but holds {column.dtype.value} values"
                )
        self._schema = schema
        self._columns = tuple(columns)
        self._num_rows = len(columns[0]) if columns else 0

    # -- construction -----------------------------------------------------

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence[Any]]) -> "Relation":
        """Build a relation from an iterable of row tuples."""
        rows = list(rows)
        columns = []
        for position, field in enumerate(schema):
            values = [row[position] for row in rows]
            columns.append(Column(values, field.dtype))
        return cls(schema, columns)

    @classmethod
    def from_dicts(cls, schema: Schema, rows: Iterable[Mapping[str, Any]]) -> "Relation":
        """Build a relation from an iterable of ``{column: value}`` mappings."""
        rows = list(rows)
        columns = []
        for field in schema:
            values = [row[field.name] for row in rows]
            columns.append(Column(values, field.dtype))
        return cls(schema, columns)

    @classmethod
    def from_columns(cls, columns: Mapping[str, Column]) -> "Relation":
        """Build a relation from a mapping of column name to :class:`Column`."""
        schema = Schema([Field(name, column.dtype) for name, column in columns.items()])
        return cls(schema, list(columns.values()))

    @classmethod
    def empty(cls, schema: Schema) -> "Relation":
        """Return a zero-row relation with the given schema."""
        return cls(schema, [Column.empty(field.dtype) for field in schema])

    # -- accessors ---------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    def __len__(self) -> int:
        return self._num_rows

    def column(self, name: str) -> Column:
        """Return the column called ``name``."""
        return self._columns[self._schema.position(name)]

    def column_at(self, position: int) -> Column:
        """Return the column at ordinal ``position`` (0-based)."""
        try:
            return self._columns[position]
        except IndexError:
            raise ColumnError(
                f"column position {position} out of range for {self.num_columns} columns"
            ) from None

    def columns(self) -> dict[str, Column]:
        """Return all columns as an ordered mapping of name to column."""
        return {field.name: column for field, column in zip(self._schema, self._columns)}

    def row(self, index: int) -> tuple[Any, ...]:
        """Return row ``index`` as a tuple of Python values."""
        return tuple(column[index] for column in self._columns)

    def rows(self) -> Iterator[tuple[Any, ...]]:
        """Iterate over all rows as tuples (row-at-a-time; for small outputs)."""
        for index in range(self._num_rows):
            yield self.row(index)

    def to_dicts(self) -> list[dict[str, Any]]:
        """Return the relation as a list of ``{column: value}`` dictionaries."""
        names = self._schema.names
        return [dict(zip(names, row)) for row in self.rows()]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._schema == other._schema and list(self.rows()) == list(other.rows())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self._schema!r}, rows={self._num_rows})"

    def content_fingerprint(self) -> int:
        """A process-stable hash of the schema and data, computed once.

        Relations are immutable, so the result is cached; plan fingerprinting
        (e.g. :class:`~repro.relational.algebra.Values` nodes embedding large
        constant relations) relies on this to stay O(1) after the first call.
        """
        if self._fingerprint is None:
            parts: list[int] = [hash(tuple(self._schema.names))]
            for column in self._columns:
                values = column.values
                if values.dtype == object:
                    parts.append(hash(tuple(values.tolist())))
                else:
                    parts.append(hash((str(values.dtype), values.tobytes())))
            self._fingerprint = hash(tuple(parts))
        return self._fingerprint

    # -- vectorised manipulation -------------------------------------------

    def filter(self, mask: np.ndarray) -> "Relation":
        """Keep only rows where ``mask`` is True."""
        return Relation(self._schema, [column.filter(mask) for column in self._columns])

    def take(self, indices: np.ndarray) -> "Relation":
        """Gather the rows at ``indices`` (with repetition allowed)."""
        return Relation(self._schema, [column.take(indices) for column in self._columns])

    def slice(self, start: int, stop: int) -> "Relation":
        """Return the rows in ``[start, stop)``."""
        return Relation(self._schema, [column.slice(start, stop) for column in self._columns])

    def head(self, count: int) -> "Relation":
        """Return the first ``count`` rows."""
        return self.slice(0, min(count, self._num_rows))

    def select_columns(self, names: Sequence[str]) -> "Relation":
        """Project onto ``names`` in the given order."""
        schema = self._schema.select(names)
        columns = [self.column(name) for name in names]
        return Relation(schema, columns)

    def rename(self, mapping: dict[str, str]) -> "Relation":
        """Rename columns according to ``mapping`` (old name -> new name)."""
        return Relation(self._schema.rename(mapping), list(self._columns))

    def with_column(self, name: str, column: Column) -> "Relation":
        """Return a copy with ``column`` appended (or replaced if the name exists)."""
        if len(column) != self._num_rows and self._num_rows != 0:
            raise SchemaError(
                f"new column {name!r} has {len(column)} rows, relation has {self._num_rows}"
            )
        if name in self._schema:
            columns = list(self._columns)
            columns[self._schema.position(name)] = column
            schema_fields = [
                Field(field.name, column.dtype) if field.name == name else field
                for field in self._schema
            ]
            return Relation(Schema(schema_fields), columns)
        schema = Schema(list(self._schema.fields) + [Field(name, column.dtype)])
        return Relation(schema, list(self._columns) + [column])

    def without_column(self, name: str) -> "Relation":
        """Return a copy with the column called ``name`` removed."""
        names = [field.name for field in self._schema if field.name != name]
        if len(names) == len(self._schema):
            raise ColumnError(f"unknown column {name!r}")
        return self.select_columns(names)

    def concat(self, other: "Relation") -> "Relation":
        """Append the rows of ``other`` (schemas must be type-compatible)."""
        if not self._schema.compatible_with(other.schema):
            raise SchemaError(
                f"cannot concatenate relations with schemas {self._schema} and {other.schema}"
            )
        columns = [
            column.concat(other_column)
            for column, other_column in zip(self._columns, other._columns)
        ]
        return Relation(self._schema, columns)

    def sort_by(self, keys: Sequence[tuple[str, bool]]) -> "Relation":
        """Sort by ``keys``: a list of (column name, ascending) pairs.

        The sort is stable; later keys are applied first so that earlier keys
        take precedence, following the usual lexicographic semantics.
        """
        if self._num_rows == 0:
            return self
        order = np.arange(self._num_rows)
        for name, ascending in reversed(list(keys)):
            column = self.column(name)
            values = column.values[order]
            if column.dtype is DataType.STRING:
                values = np.asarray(values, dtype=str)
            if ascending:
                positions = np.argsort(values, kind="stable")
            else:
                # reversing an ascending argsort would also reverse equal-key
                # runs and break stability; sorting on negated ranks keeps
                # ties in their prior order for any orderable dtype
                _, codes = np.unique(values, return_inverse=True)
                positions = np.argsort(-codes, kind="stable")
            order = order[positions]
        return self.take(order)

    def distinct(self) -> "Relation":
        """Remove duplicate rows, keeping the first occurrence of each."""
        if self._num_rows == 0:
            return self
        try:
            codes = combine_codes(self._columns, self._num_rows)
        except TypeError:
            return self._distinct_rows()
        keep = np.zeros(self._num_rows, dtype=bool)
        keep[np.unique(codes, return_index=True)[1]] = True
        return self.filter(keep)

    def _distinct_rows(self) -> "Relation":
        """Row-at-a-time fallback for rows whose values cannot be factorized."""
        seen: set[tuple[Any, ...]] = set()
        keep = np.zeros(self._num_rows, dtype=bool)
        for index, row in enumerate(self.rows()):
            if row not in seen:
                seen.add(row)
                keep[index] = True
        return self.filter(keep)

    # -- display ------------------------------------------------------------

    def to_text(self, max_rows: int = 20) -> str:
        """Render the relation as an aligned text table (for examples/tests)."""
        names = self._schema.names
        shown = list(self.head(max_rows).rows())
        cells = [[str(value) for value in row] for row in shown]
        widths = [len(name) for name in names]
        for row in cells:
            for position, cell in enumerate(row):
                widths[position] = max(widths[position], len(cell))
        lines = [
            " | ".join(name.ljust(width) for name, width in zip(names, widths)),
            "-+-".join("-" * width for width in widths),
        ]
        for row in cells:
            lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if self._num_rows > max_rows:
            lines.append(f"... ({self._num_rows - max_rows} more rows)")
        return "\n".join(lines)
