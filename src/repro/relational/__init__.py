"""Columnar relational engine substrate.

This package is the reproduction's stand-in for MonetDB/SQL: an in-memory,
column-at-a-time relational engine.  It provides

* typed columns backed by NumPy arrays (:mod:`repro.relational.column`),
* relations (tables) and schemas (:mod:`repro.relational.relation`,
  :mod:`repro.relational.schema`),
* scalar expressions and predicates (:mod:`repro.relational.expressions`),
* a logical algebra with an executor and a rule-based optimizer
  (:mod:`repro.relational.algebra`, :mod:`repro.relational.operators`,
  :mod:`repro.relational.optimizer`),
* views, a catalog and an on-demand materialization cache
  (:mod:`repro.relational.views`, :mod:`repro.relational.catalog`,
  :mod:`repro.relational.cache`),
* a user-defined-function registry with the text UDFs the paper adds to
  MonetDB (:mod:`repro.relational.functions`),
* a SQL pretty-printer so every logical plan can be compared with the SQL
  listings of the paper (:mod:`repro.relational.sqlgen`), and
* a small :class:`~repro.relational.database.Database` facade tying it all
  together.
"""

from repro.relational.column import Column, DataType
from repro.relational.schema import Field, Schema
from repro.relational.relation import Relation
from repro.relational.expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
    UnaryOp,
    col,
    lit,
)
from repro.relational.algebra import (
    Aggregate,
    AggregateSpec,
    Distinct,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Select,
    Sort,
    SortKey,
    TableFunctionScan,
    Union,
    Values,
)
from repro.relational.catalog import Catalog
from repro.relational.cache import MaterializationCache
from repro.relational.database import Database
from repro.relational.functions import FunctionRegistry, default_registry
from repro.relational.sqlgen import to_sql

__all__ = [
    "Aggregate",
    "AggregateSpec",
    "BinaryOp",
    "Catalog",
    "Column",
    "ColumnRef",
    "DataType",
    "Database",
    "Distinct",
    "Expression",
    "Field",
    "FunctionCall",
    "FunctionRegistry",
    "Join",
    "Limit",
    "Literal",
    "LogicalPlan",
    "MaterializationCache",
    "Project",
    "Relation",
    "Scan",
    "Schema",
    "Select",
    "Sort",
    "SortKey",
    "TableFunctionScan",
    "UnaryOp",
    "Union",
    "Values",
    "col",
    "default_registry",
    "lit",
    "to_sql",
]
