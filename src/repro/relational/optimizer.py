"""A small rule-based plan optimizer.

The engine does not attempt cost-based optimisation; the paper's point is
that the *relational formulation* of IR tasks lets the database engine apply
whatever optimisations it has "for free".  We implement the rewrites that
matter for the plans used in this reproduction:

* **predicate pushdown**: a selection over a join is pushed to the join input
  whose columns it references (the triple-store self-joins of Section 2.2
  benefit directly);
* **selection fusion**: adjacent selections are combined into one conjunctive
  predicate, so the mask is computed in a single pass;
* **limit pushdown over sort**: ``Limit`` directly above ``Sort`` is preserved
  as-is (top-k), but a limit above a projection is pushed below it.
"""

from __future__ import annotations

from repro.relational.algebra import (
    Join,
    Limit,
    LogicalPlan,
    Project,
    Select,
)
from repro.relational.expressions import BinaryOp, Expression


def optimize(plan: LogicalPlan) -> LogicalPlan:
    """Apply all rewrite rules bottom-up until the plan stops changing."""
    previous_fingerprint = None
    current = plan
    while current.fingerprint() != previous_fingerprint:
        previous_fingerprint = current.fingerprint()
        current = _rewrite(current)
    return current


def _rewrite(plan: LogicalPlan) -> LogicalPlan:
    children = [_rewrite(child) for child in plan.children()]
    if children:
        plan = plan.with_children(children)
    plan = _fuse_selections(plan)
    plan = _push_selection_into_join(plan)
    plan = _push_limit_below_project(plan)
    return plan


def _fuse_selections(plan: LogicalPlan) -> LogicalPlan:
    """Combine ``Select(Select(x, p1), p2)`` into ``Select(x, p1 AND p2)``."""
    if isinstance(plan, Select) and isinstance(plan.child, Select):
        inner = plan.child
        combined: Expression = BinaryOp("and", inner.predicate, plan.predicate)
        return Select(inner.child, combined)
    return plan


def _push_selection_into_join(plan: LogicalPlan) -> LogicalPlan:
    """Push a selection over a join into the side that provides its columns."""
    if not (isinstance(plan, Select) and isinstance(plan.child, Join)):
        return plan
    join = plan.child
    predicate = plan.predicate
    referenced = predicate.references()
    left_columns = _available_columns(join.left)
    right_columns = _available_columns(join.right)
    if left_columns is not None and referenced <= left_columns:
        return Join(Select(join.left, predicate), join.right, join.conditions, join.how)
    if right_columns is not None and referenced <= right_columns:
        return Join(join.left, Select(join.right, predicate), join.conditions, join.how)
    return plan


def _push_limit_below_project(plan: LogicalPlan) -> LogicalPlan:
    """Rewrite ``Limit(Project(x))`` into ``Project(Limit(x))``.

    Projection is row-wise, so limiting first strictly reduces work.
    """
    if isinstance(plan, Limit) and isinstance(plan.child, Project):
        project = plan.child
        return Project(Limit(project.child, plan.count), project.columns)
    return plan


def _available_columns(plan: LogicalPlan) -> set[str] | None:
    """Best-effort set of output column names of ``plan``.

    Returns ``None`` when the columns cannot be determined statically (e.g.
    scans, whose schema lives in the catalog); pushdown is then skipped for
    that side, which is always safe.
    """
    if isinstance(plan, Project):
        return {name for name, _ in plan.columns}
    if isinstance(plan, Select):
        return _available_columns(plan.child)
    if isinstance(plan, Limit):
        return _available_columns(plan.child)
    if isinstance(plan, Join):
        left = _available_columns(plan.left)
        right = _available_columns(plan.right)
        if left is None or right is None:
            return None
        return left | right
    return None
