"""Typed columns backed by NumPy arrays.

The engine executes column-at-a-time, mirroring the BAT algebra of MonetDB
that the paper uses as its substrate.  A :class:`Column` couples a NumPy
array with a :class:`DataType`; all physical operators consume and produce
columns rather than rows.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

from repro.errors import ColumnError, TypeMismatchError


class DataType(enum.Enum):
    """Physical data types supported by the engine.

    The paper's triple store partitions literals by physical type rather
    than serialising everything to strings (Section 2.2); these are the
    types that partitioning distinguishes.
    """

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"

    @property
    def numpy_dtype(self) -> Any:
        """Return the NumPy dtype used to store values of this type."""
        return _NUMPY_DTYPES[self]

    def is_numeric(self) -> bool:
        """Return ``True`` for INT and FLOAT."""
        return self in (DataType.INT, DataType.FLOAT)

    @classmethod
    def of_value(cls, value: Any) -> "DataType":
        """Infer the :class:`DataType` of a single Python value."""
        if isinstance(value, bool) or isinstance(value, np.bool_):
            return cls.BOOL
        if isinstance(value, (int, np.integer)):
            return cls.INT
        if isinstance(value, (float, np.floating)):
            return cls.FLOAT
        if isinstance(value, (str, np.str_)):
            return cls.STRING
        raise TypeMismatchError(f"unsupported value type: {type(value).__name__}")

    @classmethod
    def common(cls, left: "DataType", right: "DataType") -> "DataType":
        """Return the type that results from combining two numeric types.

        INT combined with FLOAT widens to FLOAT.  Identical types are
        returned unchanged.  Any other combination raises
        :class:`TypeMismatchError`.
        """
        if left is right:
            return left
        if {left, right} == {cls.INT, cls.FLOAT}:
            return cls.FLOAT
        raise TypeMismatchError(f"no common type for {left.value} and {right.value}")


_NUMPY_DTYPES = {
    DataType.INT: np.int64,
    DataType.FLOAT: np.float64,
    DataType.STRING: object,
    DataType.BOOL: np.bool_,
}


def _coerce_array(values: Any, dtype: DataType) -> np.ndarray:
    """Convert ``values`` into a NumPy array of the physical dtype."""
    if isinstance(values, np.ndarray):
        if dtype is DataType.STRING:
            if values.dtype == object:
                return values
            return values.astype(object)
        return values.astype(dtype.numpy_dtype, copy=False)
    values = list(values)
    if dtype is DataType.STRING:
        array = np.empty(len(values), dtype=object)
        for index, value in enumerate(values):
            array[index] = value
        return array
    return np.asarray(values, dtype=dtype.numpy_dtype)


class Column:
    """An immutable, typed, one-dimensional sequence of values.

    Columns are the unit of data flow in the engine.  They are cheap to
    slice and to select from via boolean masks or index arrays, which is how
    the physical operators implement selection and joins.

    Columns also support dictionary encoding via :meth:`factorize`: the
    dense integer codes are computed once, cached, and propagated through
    :meth:`take`/:meth:`filter`/:meth:`slice`, so repeated joins and
    aggregations over the same (or derived) columns skip the encoding step.
    """

    __slots__ = ("_dtype", "_values", "_codes", "_dictionary")

    def __init__(self, values: Iterable[Any] | np.ndarray, dtype: DataType):
        self._dtype = dtype
        self._values = _coerce_array(values, dtype)
        self._codes: np.ndarray | None = None
        self._dictionary: np.ndarray | None = None

    # -- construction ----------------------------------------------------

    @classmethod
    def from_values(cls, values: Sequence[Any], dtype: DataType | None = None) -> "Column":
        """Build a column from Python values, inferring the type if needed."""
        if dtype is None:
            if len(values) == 0:
                raise ColumnError("cannot infer the type of an empty column")
            dtype = DataType.of_value(values[0])
        return cls(values, dtype)

    @classmethod
    def empty(cls, dtype: DataType) -> "Column":
        """Return a zero-length column of the given type."""
        return cls(np.empty(0, dtype=dtype.numpy_dtype), dtype)

    @classmethod
    def from_dictionary(cls, codes: np.ndarray, dictionary: np.ndarray) -> "Column":
        """Build a string column from dictionary codes, seeding the factorize cache.

        ``dictionary`` must hold the distinct values in sorted order and
        ``codes`` must index into it (the :meth:`factorize` contract) — this
        is how snapshot-backed columns come back from disk without paying the
        ``np.unique`` pass again.  ``codes`` may be a read-only memmap.
        """
        values = dictionary[codes] if len(codes) else np.empty(0, dtype=object)
        column = cls(values, DataType.STRING)
        column._codes = codes
        column._dictionary = dictionary
        return column

    @classmethod
    def constant(cls, value: Any, length: int, dtype: DataType | None = None) -> "Column":
        """Return a column repeating ``value`` ``length`` times."""
        if dtype is None:
            dtype = DataType.of_value(value)
        if dtype is DataType.STRING:
            array = np.empty(length, dtype=object)
            array[:] = value
            return cls(array, dtype)
        return cls(np.full(length, value, dtype=dtype.numpy_dtype), dtype)

    # -- basic accessors -------------------------------------------------

    @property
    def dtype(self) -> DataType:
        """The logical data type of the column."""
        return self._dtype

    @property
    def values(self) -> np.ndarray:
        """The underlying NumPy array (treat as read-only)."""
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        return iter(self.to_list())

    def __getitem__(self, index: int) -> Any:
        value = self._values[index]
        return self._to_python(value)

    def _to_python(self, value: Any) -> Any:
        if self._dtype is DataType.INT:
            return int(value)
        if self._dtype is DataType.FLOAT:
            return float(value)
        if self._dtype is DataType.BOOL:
            return bool(value)
        return value

    def to_list(self) -> list[Any]:
        """Return the column contents as a list of plain Python values."""
        return [self._to_python(value) for value in self._values]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if self._dtype is not other._dtype or len(self) != len(other):
            return False
        return self.to_list() == other.to_list()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(repr(value) for value in self.to_list()[:6])
        suffix = ", ..." if len(self) > 6 else ""
        return f"Column<{self._dtype.value}>[{preview}{suffix}]"

    # -- dictionary encoding ----------------------------------------------

    def factorize(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(codes, dictionary)`` such that ``dictionary[codes] == values``.

        ``codes`` is an ``int64`` array of dense non-negative integers and
        ``dictionary`` holds the encoded values in sorted order.  The result
        is cached on the column (columns are immutable) and propagated by
        :meth:`take`/:meth:`filter`/:meth:`slice`, in which case the
        dictionary may contain values no longer present in the column; codes
        remain valid indices into it.

        Raises :class:`TypeError` when the values are not totally orderable
        (e.g. an object column mixing strings and numbers) or when a float
        column contains NaN — ``np.unique`` collapses NaNs while the
        row-at-a-time kernels follow Python's ``NaN != NaN``; callers fall
        back to row-at-a-time hashing in both cases.
        """
        if self._codes is None:
            if self._dtype is DataType.FLOAT and np.isnan(self._values).any():
                raise TypeError("cannot factorize a float column containing NaN")
            dictionary, codes = np.unique(self._values, return_inverse=True)
            self._codes = codes.astype(np.int64, copy=False).reshape(-1)
            self._dictionary = dictionary
        return self._codes, self._dictionary

    def _derive(self, values: np.ndarray, selector: Any) -> "Column":
        """Build a derived column, carrying the factorization cache along."""
        column = Column(values, self._dtype)
        if self._codes is not None:
            column._codes = self._codes[selector]
            column._dictionary = self._dictionary
        return column

    # -- vectorised manipulation ------------------------------------------

    def take(self, indices: np.ndarray) -> "Column":
        """Return a new column containing the rows at ``indices``."""
        return self._derive(self._values[indices], indices)

    def filter(self, mask: np.ndarray) -> "Column":
        """Return a new column keeping only rows where ``mask`` is True."""
        if len(mask) != len(self._values):
            raise ColumnError(
                f"mask length {len(mask)} does not match column length {len(self._values)}"
            )
        return self._derive(self._values[mask], mask)

    def slice(self, start: int, stop: int) -> "Column":
        """Return the rows in ``[start, stop)`` as a new column."""
        return self._derive(self._values[start:stop], slice(start, stop))

    def concat(self, other: "Column") -> "Column":
        """Concatenate two columns of the same type."""
        if other.dtype is not self._dtype:
            raise TypeMismatchError(
                f"cannot concatenate {self._dtype.value} column with {other.dtype.value} column"
            )
        return Column(np.concatenate([self._values, other._values]), self._dtype)

    def cast(self, dtype: DataType) -> "Column":
        """Return a copy of the column converted to ``dtype``."""
        if dtype is self._dtype:
            return self
        if dtype is DataType.STRING:
            return Column([str(value) for value in self.to_list()], dtype)
        if self._dtype is DataType.STRING:
            converters = {DataType.INT: int, DataType.FLOAT: float, DataType.BOOL: _parse_bool}
            converter = converters[dtype]
            return Column([converter(value) for value in self._values], dtype)
        return Column(self._values.astype(dtype.numpy_dtype), dtype)

    # -- statistics helpers ------------------------------------------------

    def unique(self) -> "Column":
        """Return the distinct values of the column (sorted)."""
        if self._dtype is DataType.STRING:
            distinct = sorted({value for value in self._values})
            return Column(distinct, self._dtype)
        return Column(np.unique(self._values), self._dtype)

    def is_sorted(self) -> bool:
        """Return True if the column values are non-decreasing."""
        values = self.to_list()
        return all(a <= b for a, b in zip(values, values[1:]))


def combine_codes(columns: Sequence["Column"], num_rows: int) -> np.ndarray:
    """Combine the factorization codes of ``columns`` into one code per row.

    Rows receive equal codes iff they agree on every column.  The codes are
    built by mixed-radix combination of the per-column dictionary codes,
    re-densified after every step so the intermediate values stay far from
    ``int64`` overflow.  Codes are *not* guaranteed dense or ordered; use
    ``np.unique`` on the result for group identification.

    Raises :class:`TypeError` when any column cannot be factorized.
    """
    codes: np.ndarray | None = None
    for column in columns:
        column_codes, dictionary = column.factorize()
        if codes is None:
            codes = column_codes
            continue
        codes = codes * max(len(dictionary), 1) + column_codes
        _, codes = np.unique(codes, return_inverse=True)
        codes = codes.astype(np.int64, copy=False).reshape(-1)
    if codes is None:
        return np.zeros(num_rows, dtype=np.int64)
    return codes


def _parse_bool(text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in ("true", "t", "1", "yes"):
        return True
    if lowered in ("false", "f", "0", "no"):
        return False
    raise TypeMismatchError(f"cannot parse {text!r} as a boolean")
