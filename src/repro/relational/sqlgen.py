"""Render logical plans as SQL text.

The paper expresses every IR task as SQL over MonetDB; the reproduction's
native representation is a logical plan.  This module pretty-prints any plan
back to SQL so that the plans built by the IR layer, the SpinQL compiler and
the strategy compiler can be compared one-to-one against the listings in the
paper (Sections 2.1–2.3).  The generated SQL is standard enough to be read
as documentation; it is not re-parsed by the engine.
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.relational.algebra import (
    Aggregate,
    Distinct,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Rename,
    Scan,
    Select,
    Sort,
    TableFunctionScan,
    Union,
    Values,
)


def to_sql(plan: LogicalPlan, *, pretty: bool = True) -> str:
    """Render ``plan`` as a SQL query string."""
    text = _render(plan)
    if pretty:
        return text
    return " ".join(text.split())


def view_definition(name: str, plan: LogicalPlan) -> str:
    """Render ``CREATE VIEW name AS <plan SQL>``, as in the paper's listings."""
    return f"CREATE VIEW {name} AS\n{to_sql(plan)};"


def _render(plan: LogicalPlan) -> str:
    if isinstance(plan, Scan):
        return f"SELECT * FROM {plan.table}"
    if isinstance(plan, Values):
        return _render_values(plan)
    if isinstance(plan, Select):
        return (
            f"SELECT * FROM (\n{_indent(_render(plan.child))}\n) "
            f"AS t WHERE {plan.predicate.to_sql()}"
        )
    if isinstance(plan, Project):
        columns = ", ".join(f"{expr.to_sql()} AS {name}" for name, expr in plan.columns)
        return f"SELECT {columns} FROM (\n{_indent(_render(plan.child))}\n) AS t"
    if isinstance(plan, Join):
        return _render_join(plan)
    if isinstance(plan, Aggregate):
        return _render_aggregate(plan)
    if isinstance(plan, Sort):
        keys = ", ".join(
            f"{key.column} {'ASC' if key.ascending else 'DESC'}" for key in plan.keys
        )
        return f"SELECT * FROM (\n{_indent(_render(plan.child))}\n) AS t ORDER BY {keys}"
    if isinstance(plan, Limit):
        return f"SELECT * FROM (\n{_indent(_render(plan.child))}\n) AS t LIMIT {plan.count}"
    if isinstance(plan, Distinct):
        return f"SELECT DISTINCT * FROM (\n{_indent(_render(plan.child))}\n) AS t"
    if isinstance(plan, Union):
        return f"{_render(plan.left)}\nUNION ALL\n{_render(plan.right)}"
    if isinstance(plan, TableFunctionScan):
        return f"SELECT * FROM {plan.function}((\n{_indent(_render(plan.child))}\n))"
    if isinstance(plan, Rename):
        mapping = dict(plan.mapping)
        return (
            "SELECT "
            + ", ".join(f"{old} AS {new}" for old, new in mapping.items())
            + f" FROM (\n{_indent(_render(plan.child))}\n) AS t"
        )
    raise PlanError(f"cannot render plan node {type(plan).__name__} to SQL")


def _render_values(plan: Values) -> str:
    names = plan.relation.schema.names
    rows = []
    for row in plan.relation.rows():
        rendered = ", ".join(_render_literal(value) for value in row)
        rows.append(f"({rendered})")
    if not rows:
        rows.append("()")
    column_list = ", ".join(names)
    return f"SELECT * FROM (VALUES {', '.join(rows)}) AS {plan.label}({column_list})"


def _render_literal(value: object) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    return repr(value)


def _render_join(plan: Join) -> str:
    conditions = " AND ".join(f"l.{left} = r.{right}" for left, right in plan.conditions)
    join_kind = "JOIN" if plan.how == "inner" else "LEFT JOIN"
    return (
        f"SELECT * FROM (\n{_indent(_render(plan.left))}\n) AS l\n"
        f"{join_kind} (\n{_indent(_render(plan.right))}\n) AS r\n"
        f"ON {conditions}"
    )


def _render_aggregate(plan: Aggregate) -> str:
    pieces = list(plan.keys)
    for spec in plan.aggregates:
        argument = spec.input_column if spec.input_column is not None else "*"
        pieces.append(f"{spec.function}({argument}) AS {spec.output_name}")
    select_list = ", ".join(pieces)
    sql = f"SELECT {select_list} FROM (\n{_indent(_render(plan.child))}\n) AS t"
    if plan.keys:
        sql += " GROUP BY " + ", ".join(plan.keys)
    return sql


def _indent(text: str, amount: int = 2) -> str:
    prefix = " " * amount
    return "\n".join(prefix + line for line in text.splitlines())
