"""CSV import and export for relations.

The paper's platform ingests customer data "with almost no pre-processing";
this module provides the equivalent plain bulk loader for the reproduction:
CSV files (or any iterable of delimited lines) become relations, and
relations can be written back out for inspection.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Iterable
from pathlib import Path

from repro.errors import SchemaError
from repro.relational.column import Column, DataType
from repro.relational.relation import Relation
from repro.relational.schema import Schema


def read_csv(
    source: str | Path | io.TextIOBase,
    schema: Schema,
    *,
    delimiter: str = ",",
    has_header: bool = True,
) -> Relation:
    """Read a CSV file (or open text stream) into a relation with ``schema``."""
    if isinstance(source, (str, Path)):
        with open(source, newline="", encoding="utf-8") as handle:
            return _read_rows(csv.reader(handle, delimiter=delimiter), schema, has_header)
    return _read_rows(csv.reader(source, delimiter=delimiter), schema, has_header)


def _read_rows(reader: Iterable[list[str]], schema: Schema, has_header: bool) -> Relation:
    rows = list(reader)
    if has_header and rows:
        header = rows[0]
        if len(header) != len(schema):
            raise SchemaError(
                f"CSV header has {len(header)} columns, schema expects {len(schema)}"
            )
        rows = rows[1:]
    columns = []
    for position, field in enumerate(schema):
        raw_values = [row[position] for row in rows]
        columns.append(_parse_column(raw_values, field.dtype))
    return Relation(schema, columns)


def _parse_column(raw_values: list[str], dtype: DataType) -> Column:
    if dtype is DataType.STRING:
        return Column(raw_values, dtype)
    if dtype is DataType.INT:
        return Column([int(value) for value in raw_values], dtype)
    if dtype is DataType.FLOAT:
        return Column([float(value) for value in raw_values], dtype)
    return Column(
        [value.strip().lower() in ("true", "t", "1", "yes") for value in raw_values], dtype
    )


def write_csv(
    relation: Relation,
    destination: str | Path | io.TextIOBase,
    *,
    delimiter: str = ",",
    write_header: bool = True,
) -> None:
    """Write ``relation`` to a CSV file (or open text stream)."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="", encoding="utf-8") as handle:
            _write_rows(relation, handle, delimiter, write_header)
        return
    _write_rows(relation, destination, delimiter, write_header)


def _write_rows(
    relation: Relation, handle: io.TextIOBase, delimiter: str, write_header: bool
) -> None:
    writer = csv.writer(handle, delimiter=delimiter)
    if write_header:
        writer.writerow(relation.schema.names)
    for row in relation.rows():
        writer.writerow(row)
