"""Hash-range partitioning of relations over factorized key codes.

The partitioned snapshot layout (see :mod:`repro.storage.shards`) splits
every base table into ``N`` shard fragments.  Rows are assigned to shards by
a *stable* hash of their shard-key value: the 64-bit hash space is divided
into ``N`` equal ranges and a row lands in the range its key hashes into.
Hashing goes through :meth:`~repro.relational.column.Column.factorize`, so
the per-value hash is computed once per *distinct* key and mapped through
the dictionary codes — O(distinct) hashing for O(rows) assignment.

Two properties matter for the scatter-gather executors:

* **Stability** — the hash is FNV-1a over the key's UTF-8 text, never
  Python's randomized ``hash()``, so the same data partitions identically
  in every process (router and workers must agree on row placement).
* **Order preservation** — fragment index arrays are ascending, so each
  fragment preserves the original relative row order and the gather step
  can reconstruct the exact unsharded row order from the per-shard
  original-row-index arrays (bit-identical merges depend on this).
"""

from __future__ import annotations

import numpy as np

from repro.errors import StorageError
from repro.relational.relation import Relation

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK_64 = 0xFFFFFFFFFFFFFFFF


def fnv1a_64(text: str) -> int:
    """Finalized FNV-1a hash of ``text`` (UTF-8), as an unsigned 64-bit integer.

    Plain FNV-1a avalanches its *low* bits well but leaves the high bits
    poorly mixed for short keys — fatal for range partitioning, which splits
    on the high bits.  A splitmix64-style finalizer spreads the entropy over
    the whole word, so hash ranges receive balanced row counts.
    """
    value = _FNV_OFFSET
    for byte in text.encode("utf-8"):
        value = ((value ^ byte) * _FNV_PRIME) & _MASK_64
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & _MASK_64
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & _MASK_64
    value ^= value >> 31
    return value


class HashRangePartitioner:
    """Assigns rows to ``num_shards`` hash ranges by a shard-key column."""

    name = "hash-range"

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise StorageError(f"shard count must be >= 1, got {num_shards}")
        self.num_shards = int(num_shards)

    def describe(self) -> dict[str, int | str]:
        return {"name": self.name, "shards": self.num_shards}

    def assign(self, relation: Relation, key_column: str) -> np.ndarray:
        """The shard id of every row, by hash range of its ``key_column`` value."""
        column = relation.column(key_column)
        if relation.num_rows == 0:
            return np.empty(0, dtype=np.int64)
        try:
            codes, dictionary = column.factorize()
        except TypeError:
            hashes = np.asarray(
                [fnv1a_64(str(value)) for value in column.to_list()], dtype=np.uint64
            )
        else:
            per_value = np.asarray(
                [fnv1a_64(str(value)) for value in dictionary], dtype=np.uint64
            )
            hashes = per_value[np.asarray(codes)]
        return self.shard_of_hashes(hashes)

    def shard_of_hashes(self, hashes: np.ndarray) -> np.ndarray:
        """Map 64-bit hashes into shard ids by equal hash ranges."""
        range_width = np.uint64(2**64 // self.num_shards) if self.num_shards > 1 else None
        if range_width is None:
            return np.zeros(len(hashes), dtype=np.int64)
        shards = (hashes // range_width).astype(np.int64)
        # 2**64 is not an exact multiple of num_shards: clamp the sliver at the top
        return np.minimum(shards, self.num_shards - 1)

    def partition_indices(self, relation: Relation, key_column: str) -> list[np.ndarray]:
        """Ascending original-row-index arrays, one per shard.

        The concatenation of the fragments taken at these indices, re-sorted
        by original index, reproduces ``relation`` exactly — row order
        included — which is the invariant the gather kernels rely on.
        """
        assignment = self.assign(relation, key_column)
        return self.partition_by_assignment(assignment)

    def partition_by_assignment(self, assignment: np.ndarray) -> list[np.ndarray]:
        """Split ``assignment`` (shard id per row) into per-shard index arrays."""
        rows = np.arange(len(assignment), dtype=np.int64)
        return [rows[assignment == shard] for shard in range(self.num_shards)]
