"""On-demand materialization cache.

Section 2.2 of the paper describes an *"adaptive, query-driven set of 'cache'
tables, each corresponding to a specific sub-query on the original data.
When the same computation is requested several times, its full result is
already materialized."*  This module implements exactly that mechanism for
the reproduction's engine: logical plans are fingerprinted, and the
materialised result of a fingerprint is stored and reused.

The same cache also implements the paper's observation in Section 2.1 that
*"most of the SQL queries above are independent of query-terms, which allows
to materialize intermediate results for reuse in different search scenarios
on the same data"* — the IR layer funnels its collection-statistics plans
through this cache, so the first query of a session is "cold" and subsequent
queries are "hot".
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.relational.algebra import LogicalPlan
from repro.relational.relation import Relation


@dataclass
class CacheStatistics:
    """Counters describing cache effectiveness (reported by the benchmarks)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    entries: int = 0
    cached_rows: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


@dataclass
class _CacheEntry:
    relation: Relation
    fingerprint: str
    uses: int = 0
    dependencies: frozenset[str] = field(default_factory=frozenset)


class MaterializationCache:
    """Query-driven cache of materialised plan results.

    Entries are keyed by plan fingerprint.  Each entry records the set of
    base-table names the plan depends on so that updating a base table
    invalidates exactly the affected entries.  An optional ``max_entries``
    bound evicts the least-recently-used entry when exceeded.

    All operations are lock-guarded, matching the plan cache's thread-safety
    contract, so concurrent query evaluation can share one cache.
    """

    def __init__(self, max_entries: int | None = None):
        self._entries: dict[str, _CacheEntry] = {}
        self._order: list[str] = []
        self._max_entries = max_entries
        self._lock = threading.RLock()
        self.statistics = CacheStatistics()

    # -- lookup / insert ----------------------------------------------------------

    def get(self, plan: LogicalPlan) -> Relation | None:
        """Return the cached result for ``plan`` or ``None`` on a miss."""
        fingerprint = plan.fingerprint()
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.statistics.misses += 1
                return None
            self.statistics.hits += 1
            entry.uses += 1
            self._touch(fingerprint)
            return entry.relation

    def put(
        self,
        plan: LogicalPlan,
        relation: Relation,
        dependencies: frozenset[str] | None = None,
    ) -> None:
        """Store the materialised ``relation`` for ``plan``.

        ``dependencies`` overrides the default dependency set (the base
        tables scanned directly by the plan); the database passes the
        transitive closure through views so that updating a base table also
        invalidates results cached for views defined over it.
        """
        fingerprint = plan.fingerprint()
        if dependencies is None:
            dependencies = frozenset(_scan_dependencies(plan))
        with self._lock:
            if fingerprint not in self._entries:
                self._order.append(fingerprint)
            self._entries[fingerprint] = _CacheEntry(
                relation=relation, fingerprint=fingerprint, dependencies=dependencies
            )
            self._refresh_size_counters()
            self._evict_if_needed()

    def contains(self, plan: LogicalPlan) -> bool:
        """Return True if a result for ``plan`` is materialised (no statistics update)."""
        with self._lock:
            return plan.fingerprint() in self._entries

    # -- invalidation --------------------------------------------------------------

    def invalidate_table(self, table_name: str) -> int:
        """Drop every cached entry that depends on ``table_name``.

        Returns the number of entries removed.
        """
        with self._lock:
            stale = [
                fingerprint
                for fingerprint, entry in self._entries.items()
                if table_name in entry.dependencies
            ]
            for fingerprint in stale:
                del self._entries[fingerprint]
                self._order.remove(fingerprint)
            self.statistics.invalidations += len(stale)
            self._refresh_size_counters()
            return len(stale)

    def clear(self) -> None:
        """Drop every cached entry."""
        with self._lock:
            self.statistics.invalidations += len(self._entries)
            self._entries.clear()
            self._order.clear()
            self._refresh_size_counters()

    # -- introspection ---------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def fingerprints(self) -> list[str]:
        with self._lock:
            return list(self._order)

    # -- internals --------------------------------------------------------------------

    def _touch(self, fingerprint: str) -> None:
        self._order.remove(fingerprint)
        self._order.append(fingerprint)

    def _evict_if_needed(self) -> None:
        if self._max_entries is None:
            return
        while len(self._entries) > self._max_entries:
            oldest = self._order.pop(0)
            # only reachable from put()/clear(), which hold self._lock
            del self._entries[oldest]  # repro-lint: disable=RL003
        self._refresh_size_counters()

    def _refresh_size_counters(self) -> None:
        self.statistics.entries = len(self._entries)
        self.statistics.cached_rows = sum(
            entry.relation.num_rows for entry in self._entries.values()
        )


def _scan_dependencies(plan: LogicalPlan) -> set[str]:
    """Collect the names of all base tables/views scanned by ``plan``."""
    from repro.relational.algebra import Scan

    names: set[str] = set()
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, Scan):
            names.add(node.table)
        stack.extend(node.children())
    return names
